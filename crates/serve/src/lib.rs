//! # fair-serve — the concurrent fairness-audit service
//!
//! The serving layer of the reproduction: a long-lived process that owns a
//! **catalog** of cohort stores (on-disk `fair-store` files and in-memory
//! synthetic cohorts) and answers concurrent audit traffic over a small
//! HTTP/1.1 + JSON wire protocol — all std-only, hand-rolled on
//! [`std::net::TcpListener`] and a worker thread pool sized by
//! [`fair_core::max_workers`] (the `FAIR_THREADS` knob).
//!
//! Two classes of work, split the way production analytics engines split
//! them:
//!
//! * **synchronous endpoints** for cheap queries — catalog listing, schema,
//!   whole-cohort stats, and the sharded fairness metrics
//!   (disparity / nDCG / log-discounted / FPR / disparate impact at `k`),
//!   each a few milliseconds through [`fair_core::metrics::sharded`];
//! * **background jobs** for expensive work — Full/Core DCA descents run by
//!   the [`jobs::JobManager`] on their own threads, wired to the engine
//!   through [`fair_core::dca::RunControl`] for live progress reporting and
//!   cooperative cancellation (`DELETE /jobs/{id}`).
//!
//! A third layer, [`fleet`], turns several of these servers into one logical
//! engine: a [`FleetCoordinator`] owns a shard-range [`PlacementMap`], fans
//! partial-reduce requests (`POST /stores/{name}/partials`) out to its
//! workers, and combines the per-shard partials in shard order — with
//! deadlines, jittered-backoff retries, consecutive-failure ejection, and
//! re-dispatch of a dead worker's range to a survivor. The whole failure
//! envelope is testable on one machine through the `FAIR_FAULT` injection
//! harness ([`fair_core::fault`]).
//!
//! The whole stack is observable through [`fair_core::obs`]: every layer
//! records into the process-wide metrics registry (per-route counters and
//! latency histograms, job lifecycle and per-step durations, shard-cache
//! hit rates, fleet retries/ejections), exposed as Prometheus text at
//! `GET /metrics`; `FAIR_LOG=text|json` turns on span/event logging with
//! per-request trace ids that propagate coordinator→worker via the
//! `x-fair-trace` header.
//!
//! Everything the server computes is **bit-identical to the library path**:
//! the sharded kernels are the same code, and the wire format round-trips
//! `f64` bits exactly ([`json`]). An uncancelled job with seed `s` produces
//! precisely the `run_full_dca_sharded` / `run_core_dca_sharded` trajectory
//! for seed `s`.
//!
//! ```no_run
//! use fair_serve::{serve, AuditService, Client, MetricsRequest};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = AuditService::new();
//! let server = serve(service, "127.0.0.1:0", 4)?; // ephemeral port
//! let client = Client::new(server.addr());
//! client.register_disk_store("cohort", "cohort.fss")?;
//! let audit = client.metrics("cohort", &MetricsRequest::baseline(0.05))?;
//! println!("disparity@5% = {:?}", audit.disparity);
//! server.shutdown(); // drains workers, cancels + joins jobs
//! # Ok(()) }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod backoff;
pub mod catalog;
pub mod client;
pub mod error;
pub(crate) mod fault;
pub mod fleet;
pub mod http;
pub mod jobs;
pub mod json;
pub mod server;

pub use backoff::Backoff;
pub use catalog::{Catalog, CohortStore, PlacementMap, StoreEntry};
pub use client::{
    Client, JobRequest, JobResult, JobView, MetricsRequest, MetricsResult, SampleRows, StoreInfo,
};
pub use error::{ApiError, Result, ServeError};
pub use fleet::{FleetConfig, FleetCoordinator, FleetReport, WorkerStatus};
pub use jobs::{Job, JobKind, JobManager, JobOutcome, JobPhase, JobSpec};
pub use json::{Json, JsonError};
pub use server::{serve, AuditService, ServerHandle, DRAIN_DEADLINE};
