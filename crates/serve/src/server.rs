//! The audit server: a worker-pool HTTP front end over the catalog and the
//! job manager.
//!
//! One accept thread feeds connections to a fixed pool of request workers
//! (pool size defaults to [`fair_core::max_workers`], so `FAIR_THREADS`
//! pins the service's CPU use just like the evaluation engine's). Cheap
//! queries (catalog, schema, stats, metrics) are answered synchronously on
//! the worker; expensive work (DCA) is delegated to the
//! [`JobManager`] and observed through the job endpoints.
//!
//! | Method & path | Action |
//! |---|---|
//! | `GET /health` | liveness + counters + uptime |
//! | `GET /metrics` | the process-wide [`fair_core::obs`] registry in Prometheus text format |
//! | `GET /stores` | list registered stores |
//! | `POST /stores` | register a disk store (`path`) or generate a synthetic one (`generate`) |
//! | `DELETE /stores/{name}` | deregister (in-flight work keeps its handle) |
//! | `GET /stores/{name}/schema` | feature + fairness attribute names |
//! | `GET /stores/{name}/stats` | rows, layout, centroid, group frequencies, cache counters |
//! | `POST /stores/{name}/metrics` | disparity / nDCG / log-discounted / FPR / DI at `k` |
//! | `POST /stores/{name}/partials` | partial-reduce for distributed evaluation (fleet workers) |
//! | `POST /jobs` | launch a background DCA run |
//! | `GET /jobs`, `GET /jobs/{id}` | job status + progress + result |
//! | `DELETE /jobs/{id}` | cooperative cancellation |
//!
//! Shutdown is graceful by construction: [`ServerHandle::shutdown`] stops
//! the accept loop, gives in-flight request handlers a bounded drain window
//! ([`DRAIN_DEADLINE`]), severs any connection still alive past it, joins
//! every worker, then cancels and joins every job thread.
//!
//! The request path carries one fault-injection checkpoint (`FAIR_FAULT`
//! point `"serve"`, context = request path): an activated mode delays,
//! drops, truncates, garbles, or 500s the response — see
//! [`fair_core::fault`] and [`crate::fault`].
//!
//! Every dispatched request is counted and timed into the process-wide
//! [`fair_core::obs`] registry under its route *template* (`POST
//! /stores/{name}/metrics`, never the literal path — label cardinality
//! stays bounded by the route table), and wrapped in one `serve.request`
//! span whose trace id comes from the `x-fair-trace` request header when
//! the caller supplies one (the fleet coordinator does, so worker spans
//! line up with the coordinator round that provoked them) or is minted at
//! the accept path otherwise.

use crate::catalog::{Catalog, StoreEntry};
use crate::error::ApiError;
use crate::http::{read_request, write_response, write_text_response, Request};
use crate::jobs::{Job, JobKind, JobManager, JobSpec};
use crate::json::Json;
use fair_core::dca::partial::disparity_partials;
use fair_core::metrics::sharded as shmetrics;
use fair_core::metrics::LogDiscountConfig;
use fair_core::obs;
use fair_core::ranking::WeightedSumRanker;
use fair_core::{
    default_shard_size, for_each_shard_run, sample_indices_range_into, DcaConfig, FaultMode,
    ShardSource,
};
use fair_data::{CompasConfig, CompasGenerator, SchoolConfig, SchoolGenerator};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection socket timeout: a stalled peer releases its worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// How long [`ServerHandle::shutdown`] waits for in-flight handlers to
/// finish before severing their sockets (override with `FAIR_DRAIN_MS`).
pub const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// The effective drain window: `FAIR_DRAIN_MS` milliseconds when set and
/// parseable, [`DRAIN_DEADLINE`] otherwise.
fn drain_deadline() -> Duration {
    std::env::var("FAIR_DRAIN_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(DRAIN_DEADLINE, Duration::from_millis)
}

/// How many `core_sample` gathers a worker keeps around. A fleet descent
/// issues one request per `(seed, step)` per shard range, so a re-run of the
/// same descent (a retried coordinator, a timing loop, a repeated audit)
/// replays recent keys; a handful of entries is enough to absorb that
/// without holding more than a few sample-sized row blocks.
const SAMPLE_CACHE_CAPACITY: usize = 32;

/// Identity of one `core_sample` gather: the addressed store plus the
/// request parameters that determine the sampled rows. Catalog mutations
/// (register/deregister) clear the whole cache, so a re-registered name can
/// never serve the previous cohort's rows; the row count guards the
/// remaining case of a store growing underneath its name.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SampleKey {
    /// Catalog name the request addressed.
    store: String,
    /// Store length at gather time — an appended store misses.
    rows: usize,
    lo: usize,
    hi: usize,
    seed: u64,
    sample_size: usize,
}

/// A tiny worker-side LRU over rendered `core_sample` row blocks. The gather
/// is a pure function of the key, so a hit returns byte-identical columns —
/// exactly what a coordinator retry or a repeated descent would recompute.
#[derive(Debug, Default)]
struct SampleCache {
    /// Most-recently-used last.
    entries: Vec<(SampleKey, Json)>,
}

impl SampleCache {
    fn get(&mut self, key: &SampleKey) -> Option<Json> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let hit = self.entries.remove(pos);
        let value = hit.1.clone();
        self.entries.push(hit);
        Some(value)
    }

    fn put(&mut self, key: SampleKey, value: Json) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == &key) {
            self.entries.remove(pos);
        } else if self.entries.len() >= SAMPLE_CACHE_CAPACITY {
            self.entries.remove(0);
        }
        self.entries.push((key, value));
    }
}

/// Registry handles the request path touches, resolved once per service so
/// dispatch never takes the registry's name-lookup lock for a known route.
#[derive(Debug)]
struct ServeObs {
    /// Service construction time — the `/health` uptime origin.
    started: Instant,
    /// Every dispatched request, regardless of route or outcome.
    requests_total: Arc<obs::Counter>,
    /// Connections currently inside a request handler.
    in_flight: Arc<obs::Gauge>,
    /// Per-`(route template, status class)` counter and per-template
    /// latency histogram, created on each template's first hit.
    #[allow(clippy::type_complexity)]
    routes: Mutex<HashMap<(&'static str, &'static str), (Arc<obs::Counter>, Arc<obs::Histogram>)>>,
}

impl Default for ServeObs {
    fn default() -> Self {
        Self {
            started: Instant::now(),
            requests_total: obs::counter("fair_serve_requests_total", &[]),
            in_flight: obs::gauge("fair_serve_in_flight", &[]),
            routes: Mutex::new(HashMap::new()),
        }
    }
}

/// The route *template* a request resolves to — the bounded label set the
/// per-route metrics are keyed by (`{name}`/`{id}` instead of user input).
fn route_template(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["health"]) => "GET /health",
        ("GET", ["metrics"]) => "GET /metrics",
        ("GET", ["stores"]) => "GET /stores",
        ("POST", ["stores"]) => "POST /stores",
        ("DELETE", ["stores", _]) => "DELETE /stores/{name}",
        ("GET", ["stores", _, "schema"]) => "GET /stores/{name}/schema",
        ("GET", ["stores", _, "stats"]) => "GET /stores/{name}/stats",
        ("POST", ["stores", _, "metrics"]) => "POST /stores/{name}/metrics",
        ("POST", ["stores", _, "partials"]) => "POST /stores/{name}/partials",
        ("POST", ["jobs"]) => "POST /jobs",
        ("GET", ["jobs"]) => "GET /jobs",
        ("GET", ["jobs", _, "profile"]) => "GET /jobs/{id}/profile",
        ("GET", ["jobs", _]) => "GET /jobs/{id}",
        ("DELETE", ["jobs", _]) => "DELETE /jobs/{id}",
        _ => "other",
    }
}

/// Decrements the in-flight gauge however the handler exits (early returns
/// on dropped connections included).
struct InFlightGuard(Arc<obs::Gauge>);

impl InFlightGuard {
    fn enter(gauge: &Arc<obs::Gauge>) -> Self {
        gauge.add(1);
        Self(gauge.clone())
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// The service state shared by every request worker: the store catalog and
/// the background-job manager.
#[derive(Debug)]
pub struct AuditService {
    /// Named stores.
    pub catalog: Catalog,
    /// Background DCA jobs.
    pub jobs: JobManager,
    /// Recently served `core_sample` gathers (see [`SampleCache`]).
    sample_cache: Mutex<SampleCache>,
    /// `core_sample` partial requests answered from the cache. Reported by
    /// `GET /health` and echoed per response as the `cached` flag.
    pub partials_cache_hits: AtomicU64,
    /// Request-path registry handles (see [`ServeObs`]).
    obs: ServeObs,
    /// How long a rendered `/metrics` body stays servable (milliseconds).
    /// `0` (the default) renders fresh per scrape; `FAIR_SCRAPE_CACHE_MS`
    /// sets it at construction for deployments where several scrapers (or a
    /// tight-interval one) would otherwise pay the full render each time.
    scrape_cache_ms: u64,
    /// The last rendered exposition body and when it was rendered.
    scrape_cache: Mutex<Option<(Instant, String)>>,
}

impl Default for AuditService {
    fn default() -> Self {
        Self {
            catalog: Catalog::default(),
            jobs: JobManager::default(),
            sample_cache: Mutex::new(SampleCache::default()),
            partials_cache_hits: AtomicU64::new(0),
            obs: ServeObs::default(),
            scrape_cache_ms: std::env::var("FAIR_SCRAPE_CACHE_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(0),
            scrape_cache: Mutex::new(None),
        }
    }
}

impl AuditService {
    /// An empty service.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// An empty service whose `/metrics` body is cached for `ms`
    /// milliseconds per render, regardless of `FAIR_SCRAPE_CACHE_MS` —
    /// deterministic for tests and embedders.
    #[must_use]
    pub fn with_scrape_cache_ms(ms: u64) -> Arc<Self> {
        Arc::new(Self {
            scrape_cache_ms: ms,
            ..Self::default()
        })
    }

    /// Dispatch one parsed request. Public so tests (and the in-process
    /// perf harness) can exercise routing without sockets. In-process calls
    /// land in the same per-route counters and latency histograms as
    /// socket-served traffic.
    #[must_use]
    pub fn route(&self, req: &Request) -> (u16, Json) {
        let start = Instant::now();
        let (status, body) = match self.dispatch(req) {
            Ok((status, body)) => (status, body),
            Err(e) => (e.status, Json::obj(vec![("error", Json::Str(e.message))])),
        };
        self.observe_route(route_template(&req.method, &req.segments()), status, start);
        (status, body)
    }

    /// The process-wide [`fair_core::obs`] registry rendered in Prometheus
    /// text exposition format, always freshly rendered.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        obs::render_prometheus()
    }

    /// The body `GET /metrics` serves: a fresh render, unless a previous
    /// render is younger than the configured snapshot window
    /// (`FAIR_SCRAPE_CACHE_MS` / [`with_scrape_cache_ms`](Self::with_scrape_cache_ms)),
    /// in which case the cached body is returned byte-identically. A window
    /// of `0` (the default) bypasses the cache entirely.
    #[must_use]
    pub fn metrics_text_cached(&self) -> String {
        if self.scrape_cache_ms == 0 {
            return self.metrics_text();
        }
        let window = Duration::from_millis(self.scrape_cache_ms);
        let mut cache = self.scrape_cache.lock().expect("scrape cache poisoned");
        if let Some((rendered_at, body)) = cache.as_ref() {
            if rendered_at.elapsed() < window {
                return body.clone();
            }
        }
        let body = self.metrics_text();
        *cache = Some((Instant::now(), body.clone()));
        body
    }

    /// Count and time one dispatched request under its route template.
    fn observe_route(&self, route: &'static str, status: u16, start: Instant) {
        self.obs.requests_total.inc();
        let class = match status {
            s if s < 400 => "2xx",
            s if s < 500 => "4xx",
            _ => "5xx",
        };
        let (count, duration) = {
            let mut routes = self.obs.routes.lock().expect("route obs poisoned");
            routes
                .entry((route, class))
                .or_insert_with(|| {
                    (
                        obs::counter(
                            "fair_serve_route_requests_total",
                            &[("route", route), ("class", class)],
                        ),
                        obs::histogram("fair_serve_request_duration_us", &[("route", route)]),
                    )
                })
                .clone()
        };
        count.inc();
        duration.record(
            u64::try_from(start.elapsed().as_micros().min(u128::from(u64::MAX)))
                .unwrap_or(u64::MAX),
        );
    }

    fn dispatch(&self, req: &Request) -> Result<(u16, Json), ApiError> {
        let segments = req.segments();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["health"]) => Ok((
                200,
                Json::obj(vec![
                    ("status", Json::str("ok")),
                    ("stores", Json::num(self.catalog.len() as f64)),
                    ("jobs", Json::num(self.jobs.len() as f64)),
                    (
                        "partials_cache_hits",
                        Json::num(self.partials_cache_hits.load(Ordering::Relaxed) as f64),
                    ),
                    (
                        "uptime_ms",
                        Json::num(self.obs.started.elapsed().as_millis() as f64),
                    ),
                    (
                        "requests_total",
                        Json::num(self.obs.requests_total.get() as f64),
                    ),
                ]),
            )),
            ("GET", ["stores"]) => Ok((
                200,
                Json::obj(vec![(
                    "stores",
                    Json::Arr(self.catalog.list().iter().map(|e| store_info(e)).collect()),
                )]),
            )),
            ("POST", ["stores"]) => {
                let response = self.register_store(req)?;
                self.clear_sample_cache();
                Ok(response)
            }
            ("DELETE", ["stores", name]) => {
                self.catalog.remove(name)?;
                self.clear_sample_cache();
                Ok((200, Json::obj(vec![("removed", Json::str(*name))])))
            }
            ("GET", ["stores", name, "schema"]) => {
                let entry = self.catalog.get(name)?;
                let schema = entry.store.schema();
                Ok((
                    200,
                    Json::obj(vec![
                        ("features", Json::str_arr(schema.features())),
                        ("fairness", Json::str_arr(&schema.fairness_names())),
                    ]),
                ))
            }
            ("GET", ["stores", name, "stats"]) => self.store_stats(name),
            ("POST", ["stores", name, "metrics"]) => self.metrics(name, req),
            ("POST", ["stores", name, "partials"]) => self.partials(name, req),
            ("POST", ["jobs"]) => self.submit_job(req),
            ("GET", ["jobs"]) => Ok((
                200,
                Json::obj(vec![(
                    "jobs",
                    Json::Arr(self.jobs.list().iter().map(|j| job_view(j)).collect()),
                )]),
            )),
            ("GET", ["jobs", id, "profile"]) => {
                let job = self.jobs.get(id)?;
                Ok((200, profile_view(&job)))
            }
            ("GET", ["jobs", id]) => {
                let job = self.jobs.get(id)?;
                Ok((200, job_view(&job)))
            }
            ("DELETE", ["jobs", id]) => {
                let job = self.jobs.cancel(id)?;
                Ok((200, job_view(&job)))
            }
            (_, _) => Err(ApiError {
                status: if matches!(req.method.as_str(), "GET" | "POST" | "DELETE") {
                    404
                } else {
                    405
                },
                message: format!("no route for {} {}", req.method, req.path),
            }),
        }
    }

    /// Drop every cached `core_sample` gather — called on catalog mutations,
    /// whose rarity (control-plane registrations) makes a full clear cheaper
    /// than tracking per-name dependencies.
    fn clear_sample_cache(&self) {
        self.sample_cache
            .lock()
            .expect("sample cache poisoned")
            .entries
            .clear();
    }

    fn register_store(&self, req: &Request) -> Result<(u16, Json), ApiError> {
        let body = parse_body(req)?;
        let name = require_str(&body, "name")?;
        let entry = if let Some(path) = body.get("path") {
            let path = path
                .as_str()
                .ok_or_else(|| ApiError::bad_request("`path` must be a string"))?;
            self.catalog.register_disk(name, path)?
        } else if let Some(generate) = body.get("generate") {
            let kind = require_str(generate, "kind")?;
            let rows = generate
                .get("rows")
                .and_then(Json::as_usize)
                .ok_or_else(|| ApiError::bad_request("`generate.rows` must be a count"))?;
            if rows == 0 || rows > 50_000_000 {
                return Err(ApiError::bad_request("`generate.rows` must be in [1, 5e7]"));
            }
            let seed = match generate.get("seed") {
                None => 42,
                Some(v) => parse_seed(v).ok_or_else(|| {
                    ApiError::bad_request(
                        "`generate.seed` must be a non-negative integer \
                         (pass seeds above 2^53 as a decimal string)",
                    )
                })?,
            };
            let shard_size = generate
                .get("shard_size")
                .and_then(Json::as_usize)
                .unwrap_or_else(default_shard_size);
            let data = match kind {
                "school" => SchoolGenerator::new(SchoolConfig::small(rows, seed))
                    .generate_sharded(shard_size)
                    .map_err(|e| ApiError::bad_request(format!("generate failed: {e}")))?
                    .into_dataset(),
                "compas" => CompasGenerator::new(CompasConfig::small(rows, seed))
                    .generate_sharded(shard_size)
                    .map_err(|e| ApiError::bad_request(format!("generate failed: {e}")))?,
                other => {
                    return Err(ApiError::bad_request(format!(
                        "`generate.kind` must be `school` or `compas`, got `{other}`"
                    )))
                }
            };
            self.catalog.register_memory(name, data)?
        } else {
            return Err(ApiError::bad_request(
                "registration needs `path` (disk store) or `generate` (synthetic cohort)",
            ));
        };
        Ok((201, Json::obj(vec![("store", store_info(&entry))])))
    }

    fn store_stats(&self, name: &str) -> Result<(u16, Json), ApiError> {
        let entry = self.catalog.get(name)?;
        let store = &entry.store;
        let dims = store.schema().num_fairness();
        let mut pairs = vec![
            ("name", Json::str(name)),
            ("kind", Json::str(store.kind())),
            ("rows", Json::num(store.len() as f64)),
            ("shards", Json::num(store.num_shards() as f64)),
            ("shard_size", Json::num(store.shard_size() as f64)),
            ("fully_labelled", Json::Bool(store.fully_labelled())),
        ];
        if store.is_empty() {
            pairs.push(("fairness_centroid", Json::Null));
            pairs.push(("group_frequencies", Json::Null));
        } else {
            // One shard pass for centroid sums *and* per-dimension group
            // counts: the trait helpers would each rescan (and, for a paged
            // store, re-page) the whole cohort. Per-shard partials combine
            // in shard order, so the centroid is bit-identical to
            // `ShardSource::fairness_centroid`.
            let (sums, counts) = store.reduce_shards(
                (vec![0.0_f64; dims], vec![0_usize; dims]),
                |shard| {
                    let d = shard.data();
                    let mut sums = vec![0.0_f64; dims];
                    let mut counts = vec![0_usize; dims];
                    for i in 0..d.len() {
                        for ((s, c), v) in sums.iter_mut().zip(&mut counts).zip(d.fairness_row(i)) {
                            *s += v;
                            if *v >= 0.5 {
                                *c += 1;
                            }
                        }
                    }
                    (sums, counts)
                },
                |(mut sums, mut counts), (ps, pc)| {
                    for (s, p) in sums.iter_mut().zip(&ps) {
                        *s += p;
                    }
                    for (c, p) in counts.iter_mut().zip(&pc) {
                        *c += p;
                    }
                    (sums, counts)
                },
            );
            let n = store.len() as f64;
            let centroid: Vec<f64> = sums.into_iter().map(|s| s / n).collect();
            pairs.push(("fairness_centroid", Json::num_arr(&centroid)));
            let freqs: Vec<f64> = counts.into_iter().map(|c| c as f64 / n).collect();
            pairs.push(("group_frequencies", Json::num_arr(&freqs)));
        }
        if let Some(cache) = store.cache_stats() {
            pairs.push((
                "cache",
                Json::obj(vec![
                    ("hits", Json::num(cache.hits as f64)),
                    ("misses", Json::num(cache.misses as f64)),
                    ("evictions", Json::num(cache.evictions as f64)),
                    ("resident_bytes", Json::num(cache.resident_bytes as f64)),
                    ("peak_bytes", Json::num(cache.peak_bytes as f64)),
                    ("budget_bytes", Json::num(cache.budget_bytes as f64)),
                    ("prefetch_hits", Json::num(cache.prefetch_hits as f64)),
                    ("prefetch_wasted", Json::num(cache.prefetch_wasted as f64)),
                ]),
            ));
        }
        Ok((
            200,
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
        ))
    }

    fn metrics(&self, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
        let entry = self.catalog.get(name)?;
        let store = &entry.store;
        let body = parse_body(req)?;
        let dims = store.schema().num_fairness();
        let num_features = store.schema().num_features();

        let k = body
            .get("k")
            .and_then(Json::as_f64)
            .ok_or_else(|| ApiError::bad_request("`k` (selection fraction) is required"))?;
        let bonus = match body.get("bonus") {
            None => vec![0.0; dims],
            Some(v) => v
                .as_f64_vec()
                .ok_or_else(|| ApiError::bad_request("`bonus` must be a number array"))?,
        };
        if bonus.len() != dims {
            return Err(ApiError::bad_request(format!(
                "{} bonus values for a {dims}-attribute schema",
                bonus.len()
            )));
        }
        let weights = match body.get("weights") {
            None => vec![1.0; num_features],
            Some(v) => v
                .as_f64_vec()
                .ok_or_else(|| ApiError::bad_request("`weights` must be a number array"))?,
        };
        // The scoring kernel zips features with weights and would silently
        // truncate a short vector — a wrong-length request must be a 400,
        // not a 200 with wrong numbers.
        if weights.len() != num_features {
            return Err(ApiError::bad_request(format!(
                "{} ranker weights for a {num_features}-feature schema",
                weights.len()
            )));
        }
        let ranker = WeightedSumRanker::new(weights)
            .map_err(|e| ApiError::bad_request(format!("invalid ranker weights: {e}")))?;
        let requested = match body.get("metrics") {
            None => vec!["disparity".to_string(), "ndcg".to_string()],
            Some(v) => v
                .as_str_vec()
                .ok_or_else(|| ApiError::bad_request("`metrics` must be a string array"))?,
        };
        let kinds: Vec<shmetrics::MetricKind> = requested
            .iter()
            .map(|metric| {
                shmetrics::MetricKind::parse(metric).ok_or_else(|| {
                    ApiError::bad_request(format!(
                        "unknown metric `{metric}` (expected disparity, ndcg, log_discounted, \
                         fpr_difference, disparate_impact)"
                    ))
                })
            })
            .collect::<Result<_, _>>()?;

        // One plan, one sweep: every requested metric is computed from a
        // single pass over the store's shards. The plan deduplicates
        // repeated names, keeping first-occurrence response order.
        let plan =
            shmetrics::MetricPlan::new(&kinds, k).with_log_config(LogDiscountConfig::default());
        let report = plan
            .evaluate(store, &ranker, &bonus)
            .map_err(|e| ApiError::unprocessable(e.to_string()))?;

        let mut pairs = vec![
            ("store", Json::str(name)),
            ("rows", Json::num(store.len() as f64)),
            ("k", Json::num(k)),
        ];
        for (kind, value) in report.into_values() {
            let json = match value {
                shmetrics::MetricValue::Scalar(v) => Json::num(v),
                shmetrics::MetricValue::Vector(v) => Json::num_arr(&v),
            };
            pairs.push((kind.name(), json));
        }
        Ok((
            200,
            Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
        ))
    }

    /// Partial-reduce endpoint for fleet workers: compute this node's
    /// contribution to a distributed evaluation over the contiguous shard
    /// range `[lo, hi)`, leaving the final combine to the coordinator.
    ///
    /// Both kinds are pure functions of the request — a retried request
    /// returns byte-identical partials, which is what makes coordinator
    /// retries safe.
    ///
    /// - `disparity`: per-shard fairness sums plus range-pruned top-`count`
    ///   candidates (see [`fair_core::dca::partial`]); combined in shard
    ///   order the result is bit-identical to a local evaluation.
    /// - `core_sample`: the deterministic `(seed, sample_size)` Bernoulli
    ///   sample rows restricted to the range — the Core-DCA gather columns.
    fn partials(&self, name: &str, req: &Request) -> Result<(u16, Json), ApiError> {
        let entry = self.catalog.get(name)?;
        let store = &entry.store;
        let body = parse_body(req)?;
        let kind = require_str(&body, "kind")?;
        let pair = body
            .get("shards")
            .and_then(Json::as_arr)
            .filter(|r| r.len() == 2)
            .ok_or_else(|| ApiError::bad_request("`shards` must be a `[lo, hi]` pair"))?;
        let (lo, hi) = match (pair[0].as_usize(), pair[1].as_usize()) {
            (Some(lo), Some(hi)) if lo <= hi && hi <= store.num_shards() => (lo, hi),
            _ => {
                return Err(ApiError::bad_request(format!(
                    "`shards` must satisfy 0 <= lo <= hi <= {}",
                    store.num_shards()
                )))
            }
        };
        let dims = store.schema().num_fairness();
        let num_features = store.schema().num_features();
        match kind {
            "disparity" => {
                let bonus = match body.get("bonus") {
                    None => vec![0.0; dims],
                    Some(v) => v
                        .as_f64_vec()
                        .ok_or_else(|| ApiError::bad_request("`bonus` must be a number array"))?,
                };
                if bonus.len() != dims {
                    return Err(ApiError::bad_request(format!(
                        "{} bonus values for a {dims}-attribute schema",
                        bonus.len()
                    )));
                }
                let weights = match body.get("weights") {
                    None => vec![1.0; num_features],
                    Some(v) => v
                        .as_f64_vec()
                        .ok_or_else(|| ApiError::bad_request("`weights` must be a number array"))?,
                };
                if weights.len() != num_features {
                    return Err(ApiError::bad_request(format!(
                        "{} ranker weights for a {num_features}-feature schema",
                        weights.len()
                    )));
                }
                let ranker = WeightedSumRanker::new(weights)
                    .map_err(|e| ApiError::bad_request(format!("invalid ranker weights: {e}")))?;
                let count = body.get("count").and_then(Json::as_usize).ok_or_else(|| {
                    ApiError::bad_request("`count` (global selection size) is required")
                })?;
                let parts = disparity_partials(store, &ranker, &bonus, count, lo..hi)
                    .map_err(|e| ApiError::unprocessable(e.to_string()))?;
                let shards = Json::Arr(
                    parts
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("shard", Json::num(p.shard as f64)),
                                ("rows", Json::num(p.rows as f64)),
                                ("fair_sums", Json::num_arr(&p.fair_sums)),
                                ("scores", Json::num_arr(&p.scores)),
                                (
                                    "positions",
                                    Json::Arr(
                                        p.positions.iter().map(|&x| Json::u64(x as u64)).collect(),
                                    ),
                                ),
                                ("fairness", Json::num_arr(&p.fairness)),
                            ])
                        })
                        .collect(),
                );
                Ok((
                    200,
                    Json::obj(vec![("store", Json::str(name)), ("shards", shards)]),
                ))
            }
            "core_sample" => {
                let seed = body.get("seed").and_then(parse_seed).ok_or_else(|| {
                    ApiError::bad_request(
                        "`seed` must be a non-negative integer \
                         (pass seeds above 2^53 as a decimal string)",
                    )
                })?;
                let sample_size = body
                    .get("sample_size")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ApiError::bad_request("`sample_size` must be a count"))?;
                // The gather is a pure function of the key, so an identical
                // request body (a repeated descent, a coordinator retry)
                // can be answered from the worker-side LRU without paging
                // the sampled shards again.
                let key = SampleKey {
                    store: name.to_string(),
                    rows: store.len(),
                    lo,
                    hi,
                    seed,
                    sample_size,
                };
                let cached = {
                    let mut cache = self.sample_cache.lock().expect("sample cache poisoned");
                    cache.get(&key)
                };
                if let Some(rows) = cached {
                    self.partials_cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((
                        200,
                        Json::obj(vec![
                            ("store", Json::str(name)),
                            ("cached", Json::Bool(true)),
                            ("rows", rows),
                        ]),
                    ));
                }
                let mut indices = Vec::new();
                sample_indices_range_into(store, seed, sample_size, lo..hi, &mut indices)
                    .map_err(|e| ApiError::unprocessable(e.to_string()))?;
                let shard_size = store.shard_size();
                let mut ids = Vec::with_capacity(indices.len());
                let mut features = Vec::with_capacity(indices.len() * num_features);
                let mut fairness = Vec::with_capacity(indices.len() * dims);
                let mut labels = Vec::with_capacity(indices.len());
                for_each_shard_run(
                    store,
                    &indices,
                    |&g| g / shard_size,
                    |view, run| {
                        let d = view.data();
                        for &g in run {
                            let i = g - view.offset();
                            ids.push(Json::u64(d.ids()[i].0));
                            features.extend_from_slice(d.feature_row(i));
                            fairness.extend_from_slice(d.fairness_row(i));
                            // Labels ride as a tiny enum: 0 = unlabelled,
                            // 1 = false, 2 = true.
                            labels.push(Json::num(match d.labels()[i] {
                                None => 0.0,
                                Some(false) => 1.0,
                                Some(true) => 2.0,
                            }));
                        }
                    },
                );
                let rows = Json::obj(vec![
                    ("ids", Json::Arr(ids)),
                    ("features", Json::num_arr(&features)),
                    ("fairness", Json::num_arr(&fairness)),
                    ("labels", Json::Arr(labels)),
                ]);
                self.sample_cache
                    .lock()
                    .expect("sample cache poisoned")
                    .put(key, rows.clone());
                Ok((
                    200,
                    Json::obj(vec![
                        ("store", Json::str(name)),
                        ("cached", Json::Bool(false)),
                        ("rows", rows),
                    ]),
                ))
            }
            other => Err(ApiError::bad_request(format!(
                "`kind` must be `disparity` or `core_sample`, got `{other}`"
            ))),
        }
    }

    fn submit_job(&self, req: &Request) -> Result<(u16, Json), ApiError> {
        let body = parse_body(req)?;
        let store_name = require_str(&body, "store")?;
        let entry = self.catalog.get(store_name)?;
        let kind = JobKind::parse(require_str(&body, "kind")?)?;
        let k = body
            .get("k")
            .and_then(Json::as_f64)
            .ok_or_else(|| ApiError::bad_request("`k` (selection fraction) is required"))?;
        let weights = match body.get("weights") {
            None => None,
            Some(v) => Some(
                v.as_f64_vec()
                    .ok_or_else(|| ApiError::bad_request("`weights` must be a number array"))?,
            ),
        };
        let config = job_config(body.get("config"))?;
        let workers = match body.get("workers") {
            None => None,
            Some(v) => {
                let addrs = v
                    .as_str_vec()
                    .ok_or_else(|| ApiError::bad_request("`workers` must be a string array"))?;
                if addrs.is_empty() {
                    return Err(ApiError::bad_request("`workers` must not be empty"));
                }
                Some(
                    addrs
                        .iter()
                        .map(|a| {
                            a.parse::<SocketAddr>().map_err(|_| {
                                ApiError::bad_request(format!(
                                    "`workers` entry `{a}` is not a socket address"
                                ))
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
        };
        // The submitting request's trace id (minted at the accept path when
        // the caller supplies none) becomes the job's: every event and
        // fan-out round of the descent correlates with this submission.
        let job = self.jobs.submit(
            entry,
            JobSpec {
                kind,
                k,
                weights,
                config,
                workers,
            },
            req.trace.clone(),
        )?;
        Ok((202, job_view(&job)))
    }
}

/// Build a [`DcaConfig`] from the optional wire `config` object. Refinement
/// is always disabled: jobs run the core/full descent the endpoints expose.
fn job_config(body: Option<&Json>) -> Result<DcaConfig, ApiError> {
    let mut config = DcaConfig {
        refinement_iterations: 0,
        ..DcaConfig::default()
    };
    let Some(body) = body else {
        return Ok(config);
    };
    if let Some(v) = body.get("seed") {
        config.seed = parse_seed(v).ok_or_else(|| {
            ApiError::bad_request(
                "`config.seed` must be a non-negative integer \
                 (pass seeds above 2^53 as a decimal string)",
            )
        })?;
    }
    if let Some(v) = body.get("sample_size") {
        config.sample_size = v
            .as_usize()
            .ok_or_else(|| ApiError::bad_request("`config.sample_size` must be a count"))?;
    }
    if let Some(v) = body.get("iterations_per_rate") {
        config.iterations_per_rate = v
            .as_usize()
            .ok_or_else(|| ApiError::bad_request("`config.iterations_per_rate` must be a count"))?;
    }
    if let Some(v) = body.get("learning_rates") {
        config.learning_rates = v
            .as_f64_vec()
            .ok_or_else(|| ApiError::bad_request("`config.learning_rates` must be numbers"))?;
    }
    Ok(config)
}

/// Parse a `u64` seed off the wire: a JSON number when it is unambiguously
/// representable as one (integral, **strictly below** 2^53 — 2^53 itself is
/// the rounded image of 2^53+1, so a number token that large may already
/// have been silently altered by `f64` parsing), or a decimal string for
/// the full range. The [`crate::Client`] picks the encoding automatically.
fn parse_seed(v: &Json) -> Option<u64> {
    match v {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
            Some(*n as u64)
        }
        Json::Str(s) => s.parse::<u64>().ok(),
        _ => None,
    }
}

/// The wire representation of a catalog entry.
fn store_info(entry: &StoreEntry) -> Json {
    let mut pairs = vec![
        ("name", Json::str(entry.name.clone())),
        ("kind", Json::str(entry.store.kind())),
        ("rows", Json::num(entry.store.len() as f64)),
        ("shards", Json::num(entry.store.num_shards() as f64)),
        ("shard_size", Json::num(entry.store.shard_size() as f64)),
    ];
    if let Some(path) = &entry.path {
        pairs.push(("path", Json::str(path.display().to_string())));
    }
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// The wire representation of a job.
fn job_view(job: &Job) -> Json {
    // One consistent read: phase/result/error must agree (a `completed`
    // state with a `null` result would break clients waiting on the job).
    let (phase, result, error) = job.snapshot();
    let (queued_ms, running_ms) = job.timings();
    let result = match result {
        None => Json::Null,
        Some(r) => Json::obj(vec![
            ("bonus", Json::num_arr(&r.bonus)),
            ("steps", Json::num(r.steps as f64)),
            ("objects_scored", Json::num(r.objects_scored as f64)),
        ]),
    };
    Json::obj(vec![
        ("id", Json::str(job.id.clone())),
        ("store", Json::str(job.store.clone())),
        ("trace", Json::str(job.trace.clone())),
        ("kind", Json::str(job.spec.kind.as_str())),
        ("state", Json::str(phase.as_str())),
        ("step", Json::num(job.step() as f64)),
        ("total_steps", Json::num(job.total_steps() as f64)),
        ("queued_ms", Json::num(queued_ms as f64)),
        ("running_ms", Json::num(running_ms as f64)),
        ("result", result),
        ("error", error.map_or(Json::Null, Json::Str)),
    ])
}

/// The wire representation of a job's phase profile (`GET
/// /jobs/{id}/profile`): per-phase totals plus the per-step breakdown ring
/// of the last [`fair_core::obs::PROFILE_RING`] steps. Readable while the
/// job runs (a live snapshot) and stable once it is terminal.
fn profile_view(job: &Job) -> Json {
    let (_, running_ms) = job.timings();
    let profile = job.profile();
    let phases = Json::Obj(
        profile
            .stats()
            .iter()
            .map(|s| {
                (
                    s.phase.name().to_string(),
                    Json::obj(vec![
                        ("total_us", Json::u64(s.total_us)),
                        ("count", Json::u64(s.count)),
                        ("max_us", Json::u64(s.max_us)),
                    ]),
                )
            })
            .collect(),
    );
    let steps = Json::Arr(
        profile
            .steps()
            .iter()
            .map(|b| {
                Json::obj(vec![
                    ("step", Json::num(b.step as f64)),
                    (
                        "phase_us",
                        Json::Obj(
                            fair_core::obs::Phase::ALL
                                .iter()
                                .zip(&b.phase_us)
                                .filter(|(_, &us)| us > 0)
                                .map(|(p, &us)| (p.name().to_string(), Json::u64(us)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("id", Json::str(job.id.clone())),
        ("trace", Json::str(job.trace.clone())),
        ("state", Json::str(job.phase().as_str())),
        ("running_ms", Json::num(running_ms as f64)),
        ("phases", phases),
        ("steps", steps),
    ])
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    if req.body.is_empty() {
        return Ok(Json::Obj(Vec::new()));
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    Json::parse(text).map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))
}

fn require_str<'a>(body: &'a Json, key: &str) -> Result<&'a str, ApiError> {
    body.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("`{key}` (string) is required")))
}

/// A running server: its bound address plus everything needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Workers still running (each decrements on exit) — the drain condition.
    live: Arc<AtomicUsize>,
    /// Connections currently inside a handler, severable after the drain
    /// deadline.
    active: Arc<Mutex<HashMap<u64, TcpStream>>>,
    service: Arc<AuditService>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

impl ServerHandle {
    /// The address the listener is bound to (resolves the ephemeral port of
    /// a `127.0.0.1:0` bind).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (register fixtures in-process, inspect
    /// jobs).
    #[must_use]
    pub fn service(&self) -> &Arc<AuditService> {
        &self.service
    }

    /// Stop accepting, give in-flight handlers up to [`DRAIN_DEADLINE`] to
    /// finish, sever any connection still open past it, join every worker,
    /// then cancel and join every background job. When this returns, no
    /// server thread is alive.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the accept thread exits (for the binary's foreground
    /// mode; an external `shutdown` is not possible afterwards, so this is
    /// effectively run-forever).
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.jobs.shutdown();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // The accept thread owned the queue sender, so workers now drain
        // what was already queued and exit. Give in-flight handlers a
        // bounded window before cutting their sockets out from under them —
        // a severed socket fails the handler's next read/write and the
        // worker comes home.
        let deadline = Instant::now() + drain_deadline();
        while self.live.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        if self.live.load(Ordering::Acquire) > 0 {
            for conn in self
                .active
                .lock()
                .expect("active registry poisoned")
                .values()
            {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.service.jobs.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Bind `addr` (use port `0` for an ephemeral port) and serve `service` on a
/// pool of `workers` request threads until [`ServerHandle::shutdown`].
///
/// # Errors
/// Returns the bind error, if any; everything after the bind runs on the
/// server's own threads.
pub fn serve(
    service: Arc<AuditService>,
    addr: impl ToSocketAddrs,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let workers = workers.max(1);

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let live = Arc::new(AtomicUsize::new(workers));
    let active: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let next_conn = Arc::new(AtomicU64::new(0));

    let mut pool = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = rx.clone();
        let service = service.clone();
        let stop = stop.clone();
        let live = live.clone();
        let active = active.clone();
        let next_conn = next_conn.clone();
        pool.push(
            std::thread::Builder::new()
                .name(format!("fair-serve-worker-{i}"))
                .spawn(move || {
                    loop {
                        // Hold the lock only for the blocking receive;
                        // release before handling so another worker can
                        // wait for the next connection.
                        let conn = { rx.lock().expect("worker queue poisoned").recv() };
                        match conn {
                            Ok(conn) => {
                                // Register the connection so a blown drain
                                // deadline can sever it mid-handler.
                                let id = next_conn.fetch_add(1, Ordering::Relaxed);
                                if let Ok(clone) = conn.try_clone() {
                                    active
                                        .lock()
                                        .expect("active registry poisoned")
                                        .insert(id, clone);
                                }
                                handle_connection(&service, &conn, &stop);
                                active.lock().expect("active registry poisoned").remove(&id);
                            }
                            Err(_) => break, // channel closed: shutdown
                        }
                    }
                    live.fetch_sub(1, Ordering::Release);
                })?,
        );
    }

    let accept_stop = stop.clone();
    let accept_thread = std::thread::Builder::new()
        .name("fair-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(conn) = conn {
                    // A send can only fail after every worker exited.
                    if tx.send(conn).is_err() {
                        break;
                    }
                }
            }
            // Dropping `tx` here lets workers drain the queue and exit.
        })?;

    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        workers: pool,
        live,
        active,
        service,
    })
}

/// Serve one connection: parse, route, respond. Peer-side protocol
/// violations get a 400 (best effort — the socket may already be gone).
/// Handler panics — e.g. a disk store whose backing file was truncated
/// after open, which the infallible `with_shard` engine path surfaces as a
/// panic — are caught and answered with a 500, so a failing store can never
/// kill request workers and starve the pool.
///
/// The parsed request passes the `"serve"` fault-injection checkpoint
/// (context = request path): an armed mode delays the handler (stop-aware,
/// so shutdown still drains), drops the connection without a response,
/// panics inside the catch (exercising the 500 path), substitutes a 500,
/// garbles the body under a truthful `Content-Length`, or closes mid-body.
fn handle_connection(service: &AuditService, conn: &TcpStream, stop: &AtomicBool) {
    let _ = conn.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = conn.set_write_timeout(Some(SOCKET_TIMEOUT));
    let _ = conn.set_nodelay(true);
    match read_request(conn) {
        Ok(mut req) => {
            let _in_flight = InFlightGuard::enter(&service.obs.in_flight);
            // A caller-supplied trace id (the fleet coordinator's, a traced
            // client's) wins, so a retried round's worker spans line up
            // under one id; a bare request gets a fresh id minted here at
            // the accept path. Either way the resolved id is written back
            // onto the request, so downstream consumers (job submission)
            // adopt the same id this connection's span carries.
            let trace = req.trace.clone().unwrap_or_else(obs::next_trace_id);
            req.trace = Some(trace.clone());
            let req = req;
            let span = obs::Span::new("serve.request")
                .trace(&trace)
                .field("method", &req.method)
                .field("path", &req.path);
            let fault = fair_core::fault::check("serve", &req.path);
            match fault {
                Some(FaultMode::Drop) => {
                    span.field("dropped", true).close();
                    return;
                }
                Some(FaultMode::Delay(d)) => crate::fault::stop_aware_sleep(d, stop),
                _ => {}
            }
            // The exposition endpoint bypasses the JSON route table: it
            // answers plain text and must never deadlock on itself, so it
            // renders the registry directly on the worker.
            if req.method == "GET" && req.path == "/metrics" {
                // Rendered before the route observation lands, so a scrape
                // reports every *previous* scrape but not itself — the price
                // of an honest render-cost histogram. (Cache hits land in
                // the same histogram: the observed latency distribution is
                // what scrapers actually experienced.)
                let start = Instant::now();
                let text = service.metrics_text_cached();
                service.observe_route("GET /metrics", 200, start);
                span.field("status", 200_u16).close();
                let _ = write_text_response(conn, 200, &text);
                return;
            }
            let inject_panic = matches!(fault, Some(FaultMode::Panic));
            let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected fault: panic");
                }
                service.route(&req)
            }));
            let (status, body) = match routed {
                Ok(response) => response,
                Err(panic) => (
                    500,
                    Json::obj(vec![(
                        "error",
                        Json::str(format!(
                            "internal error: {}",
                            crate::jobs::panic_message(&*panic)
                        )),
                    )]),
                ),
            };
            span.field("status", status).close();
            let rendered = body.render();
            match fault {
                Some(FaultMode::Status500) => {
                    let message =
                        Json::obj(vec![("error", Json::str("injected fault: 500"))]).render();
                    let _ = write_response(conn, 500, &message);
                }
                Some(FaultMode::Corrupt) => {
                    crate::fault::write_raw_body(
                        conn,
                        status,
                        &crate::fault::corrupt_rendered(&rendered),
                    );
                }
                Some(FaultMode::CloseMidBody) => {
                    crate::fault::write_close_mid_body(conn, status, &rendered);
                }
                _ => {
                    let _ = write_response(conn, status, &rendered);
                }
            }
        }
        Err(e) => {
            let body = Json::obj(vec![("error", Json::str(e.to_string()))]).render();
            let _ = write_response(conn, 400, &body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request::new(method, path, body.as_bytes().to_vec())
    }

    fn service_with_store(rows: usize) -> Arc<AuditService> {
        let service = AuditService::new();
        let (status, body) = service.route(&request(
            "POST",
            "/stores",
            &format!(
                r#"{{"name":"cohort","generate":{{"kind":"school","rows":{rows},"seed":7,"shard_size":64}}}}"#
            ),
        ));
        assert_eq!(status, 201, "{}", body.render());
        service
    }

    #[test]
    fn health_and_listing_routes_answer() {
        let service = service_with_store(200);
        let (status, body) = service.route(&request("GET", "/health", ""));
        assert_eq!(status, 200);
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(body.get("stores").unwrap().as_usize(), Some(1));

        let (status, body) = service.route(&request("GET", "/stores", ""));
        assert_eq!(status, 200);
        let stores = body.get("stores").unwrap().as_arr().unwrap();
        assert_eq!(stores.len(), 1);
        assert_eq!(stores[0].get("name").unwrap().as_str(), Some("cohort"));
        assert_eq!(stores[0].get("kind").unwrap().as_str(), Some("memory"));
        assert_eq!(stores[0].get("rows").unwrap().as_usize(), Some(200));

        let (status, body) = service.route(&request("GET", "/stores/cohort/schema", ""));
        assert_eq!(status, 200);
        let features = body.get("features").unwrap().as_str_vec().unwrap();
        let fairness = body.get("fairness").unwrap().as_str_vec().unwrap();
        assert!(!features.is_empty());
        assert!(!fairness.is_empty());

        let (status, body) = service.route(&request("GET", "/stores/cohort/stats", ""));
        assert_eq!(status, 200, "{}", body.render());
        assert_eq!(
            body.get("fairness_centroid")
                .unwrap()
                .as_f64_vec()
                .unwrap()
                .len(),
            fairness.len()
        );
    }

    #[test]
    fn health_reports_uptime_and_a_monotone_request_count() {
        let service = service_with_store(100);
        let (status, first) = service.route(&request("GET", "/health", ""));
        assert_eq!(status, 200);
        assert!(first.get("uptime_ms").unwrap().as_f64().unwrap() >= 0.0);
        let count = |body: &Json| body.get("requests_total").unwrap().as_usize().unwrap();
        let (_, second) = service.route(&request("GET", "/health", ""));
        assert!(
            count(&second) > count(&first),
            "{} then {}",
            count(&first),
            count(&second)
        );
    }

    #[test]
    fn routed_traffic_lands_in_the_route_metrics() {
        let service = service_with_store(100);
        let _ = service.route(&request("GET", "/health", ""));
        let _ = service.route(&request("GET", "/nope", ""));
        let text = service.metrics_text();
        assert!(
            text.contains(r#"fair_serve_route_requests_total{class="2xx",route="GET /health"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#"fair_serve_route_requests_total{class="4xx",route="other"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#"fair_serve_request_duration_us_count{route="GET /health"}"#),
            "{text}"
        );
    }

    #[test]
    fn scrape_cache_serves_one_render_per_window() {
        // A wide window: the second scrape must be the byte-identical cached
        // body even though fresh traffic landed in the registry in between.
        let service = AuditService::with_scrape_cache_ms(600_000);
        let first = service.metrics_text_cached();
        let _ = service.route(&request("GET", "/health", ""));
        let second = service.metrics_text_cached();
        assert_eq!(first, second, "within the window the cached body serves");
        // A fresh render does see the new traffic.
        assert_ne!(
            service.metrics_text(),
            second,
            "an uncached render reflects the /health hit the cache hides"
        );
        // Window 0 (the default) bypasses the cache entirely.
        let live = AuditService::new();
        let a = live.metrics_text_cached();
        let _ = live.route(&request("GET", "/health", ""));
        assert_ne!(a, live.metrics_text_cached(), "0 disables the cache");
    }

    #[test]
    fn job_profile_route_answers_with_phase_totals_and_the_job_trace() {
        let service = service_with_store(400);
        let mut submit = request(
            "POST",
            "/jobs",
            r#"{"store":"cohort","kind":"full","k":0.2,"config":{"seed":5,"iterations_per_rate":4,"learning_rates":[4.0,1.0]}}"#,
        );
        submit.trace = Some("trace-profile-unit".into());
        let (status, body) = service.route(&submit);
        assert_eq!(status, 202, "{}", body.render());
        assert_eq!(
            body.get("trace").unwrap().as_str(),
            Some("trace-profile-unit"),
            "the job adopts the submitting request's trace id"
        );
        let id = body.get("id").unwrap().as_str().unwrap().to_string();
        for _ in 0..2000 {
            let (_, view) = service.route(&request("GET", &format!("/jobs/{id}"), ""));
            if view.get("state").unwrap().as_str() == Some("completed") {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let (status, profile) = service.route(&request("GET", &format!("/jobs/{id}/profile"), ""));
        assert_eq!(status, 200, "{}", profile.render());
        assert_eq!(
            profile.get("trace").unwrap().as_str(),
            Some("trace-profile-unit")
        );
        let phases = profile.get("phases").unwrap();
        let score = phases.get("score").unwrap();
        assert!(
            score.get("count").unwrap().as_u64().unwrap() > 0,
            "a completed full descent scored every step: {}",
            profile.render()
        );
        assert!(!profile.get("steps").unwrap().as_arr().unwrap().is_empty());
        assert_eq!(
            service
                .route(&request("GET", "/jobs/job-999/profile", ""))
                .0,
            404
        );
        service.jobs.shutdown();
    }

    #[test]
    fn metrics_route_computes_requested_metrics() {
        let service = service_with_store(300);
        let (status, body) = service.route(&request(
            "POST",
            "/stores/cohort/metrics",
            r#"{"k":0.1,"metrics":["disparity","ndcg","disparate_impact"]}"#,
        ));
        assert_eq!(status, 200, "{}", body.render());
        assert!(body.get("disparity").unwrap().as_f64_vec().is_some());
        assert!(body.get("ndcg").unwrap().as_f64().is_some());
        assert!(body.get("disparate_impact").unwrap().as_f64_vec().is_some());
        assert!(body.get("log_discounted").is_none(), "not requested");
    }

    #[test]
    fn metrics_route_deduplicates_repeated_names_keeping_first_occurrence_order() {
        let service = service_with_store(300);
        let (status, body) = service.route(&request(
            "POST",
            "/stores/cohort/metrics",
            r#"{"k":0.1,"metrics":["ndcg","disparity","ndcg","log_discounted","disparity"]}"#,
        ));
        assert_eq!(status, 200, "{}", body.render());
        let Json::Obj(pairs) = &body else {
            panic!("object response expected");
        };
        let metric_keys: Vec<&str> = pairs
            .iter()
            .map(|(k, _)| k.as_str())
            .filter(|k| !matches!(*k, "store" | "rows" | "k"))
            .collect();
        assert_eq!(
            metric_keys,
            ["ndcg", "disparity", "log_discounted"],
            "each metric once, in first-occurrence order"
        );
        // The deduplicated multi-metric answer matches the single-metric one.
        let (status, single) = service.route(&request(
            "POST",
            "/stores/cohort/metrics",
            r#"{"k":0.1,"metrics":["disparity"]}"#,
        ));
        assert_eq!(status, 200);
        assert_eq!(
            body.get("disparity").unwrap().as_f64_vec().unwrap(),
            single.get("disparity").unwrap().as_f64_vec().unwrap()
        );
    }

    #[test]
    fn routing_errors_are_structured() {
        let service = service_with_store(100);
        for (method, path, body, expected) in [
            ("GET", "/nope", "", 404),
            ("PUT", "/stores", "", 405),
            ("GET", "/stores/ghost/schema", "", 404),
            ("POST", "/stores/cohort/metrics", "not json", 400),
            (
                "POST",
                "/stores/cohort/metrics",
                r#"{"k":0.1,"metrics":["nope"]}"#,
                400,
            ),
            ("POST", "/stores/cohort/metrics", r#"{}"#, 400),
            (
                "POST",
                "/stores/cohort/metrics",
                r#"{"k":0.1,"bonus":[1,2,3,4,5,6,7]}"#,
                400,
            ),
            (
                "POST",
                "/stores",
                r#"{"name":"cohort","generate":{"kind":"school","rows":10}}"#,
                409,
            ),
            ("POST", "/stores", r#"{"name":"x"}"#, 400),
            (
                "POST",
                "/stores",
                r#"{"name":"x","generate":{"kind":"martian","rows":10}}"#,
                400,
            ),
            (
                "POST",
                "/jobs",
                r#"{"store":"ghost","kind":"full","k":0.1}"#,
                404,
            ),
            (
                "POST",
                "/jobs",
                r#"{"store":"cohort","kind":"walk","k":0.1}"#,
                400,
            ),
            ("GET", "/jobs/job-9", "", 404),
            ("DELETE", "/stores/ghost", "", 404),
        ] {
            let (status, resp) = service.route(&request(method, path, body));
            assert_eq!(
                status,
                expected,
                "{method} {path} {body} -> {}",
                resp.render()
            );
            assert!(resp.get("error").is_some(), "{method} {path}");
        }
    }

    #[test]
    fn ambiguous_numeric_seeds_are_rejected_strings_accepted() {
        let service = service_with_store(100);
        // 2^53+1 as a number token: f64 parsing already rounded it to 2^53,
        // so the server must refuse rather than run a silently-altered seed.
        let (status, body) = service.route(&request(
            "POST",
            "/jobs",
            r#"{"store":"cohort","kind":"core","k":0.2,
                "config":{"seed":9007199254740993,"sample_size":30,
                          "learning_rates":[1.0],"iterations_per_rate":1}}"#,
        ));
        assert_eq!(status, 400, "{}", body.render());
        assert!(
            body.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("seed"),
            "{}",
            body.render()
        );
        // The same seed as a decimal string is exact and accepted.
        let (status, body) = service.route(&request(
            "POST",
            "/jobs",
            r#"{"store":"cohort","kind":"core","k":0.2,
                "config":{"seed":"9007199254740993","sample_size":30,
                          "learning_rates":[1.0],"iterations_per_rate":1}}"#,
        ));
        assert_eq!(status, 202, "{}", body.render());
        service.jobs.shutdown();
    }

    #[test]
    fn fpr_on_unlabelled_school_store_is_unprocessable() {
        // The school generator emits unlabelled rows; FPR requires labels.
        let service = service_with_store(100);
        let (status, body) = service.route(&request(
            "POST",
            "/stores/cohort/metrics",
            r#"{"k":0.2,"metrics":["fpr_difference"]}"#,
        ));
        assert_eq!(status, 422, "{}", body.render());
    }

    #[test]
    fn compas_generation_and_labelled_metrics_work() {
        let service = AuditService::new();
        let (status, _) = service.route(&request(
            "POST",
            "/stores",
            r#"{"name":"defendants","generate":{"kind":"compas","rows":200,"seed":3,"shard_size":32}}"#,
        ));
        assert_eq!(status, 201);
        let (status, body) = service.route(&request(
            "POST",
            "/stores/defendants/metrics",
            r#"{"k":0.3,"metrics":["fpr_difference","log_discounted"]}"#,
        ));
        assert_eq!(status, 200, "{}", body.render());
        assert!(body.get("fpr_difference").unwrap().as_f64_vec().is_some());
    }

    #[test]
    fn store_removal_keeps_running_jobs_alive() {
        let service = service_with_store(400);
        let (status, job) = service.route(&request(
            "POST",
            "/jobs",
            r#"{"store":"cohort","kind":"core","k":0.2,
                "config":{"seed":9,"sample_size":60,"learning_rates":[4.0,1.0],"iterations_per_rate":10}}"#,
        ));
        assert_eq!(status, 202, "{}", job.render());
        let id = job.get("id").unwrap().as_str().unwrap().to_string();
        let (status, _) = service.route(&request("DELETE", "/stores/cohort", ""));
        assert_eq!(status, 200);
        // The job still finishes against its pinned Arc.
        for _ in 0..2000 {
            let (_, view) = service.route(&request("GET", &format!("/jobs/{id}"), ""));
            let state = view.get("state").unwrap().as_str().unwrap().to_string();
            if state == "completed" {
                assert!(view.get("result").unwrap().get("bonus").is_some());
                service.jobs.shutdown();
                return;
            }
            assert!(state == "queued" || state == "running", "{state}");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("job never completed");
    }

    #[test]
    fn partials_route_validates_kind_range_and_count() {
        let service = service_with_store(200); // 4 shards of 64
        for (body, needle) in [
            (r#"{"kind":"nope","shards":[0,4]}"#, "`kind` must be"),
            (
                r#"{"kind":"disparity","shards":[2,9],"count":10}"#,
                "`shards`",
            ),
            (
                r#"{"kind":"disparity","shards":[3,1],"count":10}"#,
                "`shards`",
            ),
            (r#"{"kind":"disparity","shards":[0,4]}"#, "`count`"),
            (
                r#"{"kind":"core_sample","shards":[0,4],"seed":7}"#,
                "`sample_size`",
            ),
        ] {
            let (status, resp) = service.route(&request("POST", "/stores/cohort/partials", body));
            assert_eq!(status, 400, "{body} → {}", resp.render());
            let message = resp.get("error").unwrap().as_str().unwrap();
            assert!(message.contains(needle), "{body} → {message}");
        }
        let (status, _) = service.route(&request(
            "POST",
            "/stores/ghost/partials",
            r#"{"kind":"disparity","shards":[0,1],"count":5}"#,
        ));
        assert_eq!(status, 404);
    }

    #[test]
    fn disparity_partials_route_matches_the_local_kernel_bitwise() {
        let service = service_with_store(200);
        let entry = service.catalog.get("cohort").unwrap();
        let dims = entry.store.schema().num_fairness();
        let (status, resp) = service.route(&request(
            "POST",
            "/stores/cohort/partials",
            r#"{"kind":"disparity","shards":[1,3],"count":20}"#,
        ));
        assert_eq!(status, 200, "{}", resp.render());
        let shards = resp.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards.len(), 2);

        let weights = vec![1.0; entry.store.schema().num_features()];
        let ranker = WeightedSumRanker::new(weights).unwrap();
        let local =
            fair_core::dca::disparity_partials(&entry.store, &ranker, &vec![0.0; dims], 20, 1..3)
                .unwrap();
        for (wire, local) in shards.iter().zip(&local) {
            assert_eq!(wire.get("shard").unwrap().as_usize().unwrap(), local.shard);
            assert_eq!(wire.get("rows").unwrap().as_usize().unwrap(), local.rows);
            let sums = wire.get("fair_sums").unwrap().as_f64_vec().unwrap();
            let a: Vec<u64> = sums.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = local.fair_sums.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "fair_sums round-trip bit-exactly");
            let scores = wire.get("scores").unwrap().as_f64_vec().unwrap();
            let a: Vec<u64> = scores.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = local.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "scores round-trip bit-exactly");
        }
    }

    #[test]
    fn core_sample_route_returns_the_deterministic_range_sample() {
        let service = service_with_store(300); // 5 shards of 64
        let entry = service.catalog.get("cohort").unwrap();
        let (status, resp) = service.route(&request(
            "POST",
            "/stores/cohort/partials",
            r#"{"kind":"core_sample","shards":[1,4],"seed":77,"sample_size":120}"#,
        ));
        assert_eq!(status, 200, "{}", resp.render());
        let rows = resp.get("rows").unwrap();
        let ids = rows.get("ids").unwrap().as_arr().unwrap();
        let mut indices = Vec::new();
        fair_core::sample_indices_range_into(&entry.store, 77, 120, 1..4, &mut indices).unwrap();
        assert_eq!(ids.len(), indices.len());
        let nf = entry.store.schema().num_features();
        let features = rows.get("features").unwrap().as_f64_vec().unwrap();
        assert_eq!(features.len(), indices.len() * nf);
        // Identical request → identical row bytes (purity is what makes
        // coordinator retries safe); the repeat is answered from the
        // worker-side LRU and says so.
        assert_eq!(resp.get("cached"), Some(&Json::Bool(false)));
        let (_, again) = service.route(&request(
            "POST",
            "/stores/cohort/partials",
            r#"{"kind":"core_sample","shards":[1,4],"seed":77,"sample_size":120}"#,
        ));
        assert_eq!(again.get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            resp.get("rows").unwrap().render(),
            again.get("rows").unwrap().render()
        );
        assert_eq!(service.partials_cache_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn core_sample_cache_keys_on_parameters_and_registration() {
        let service = service_with_store(300);
        let body = r#"{"kind":"core_sample","shards":[0,3],"seed":5,"sample_size":60}"#;
        let (_, first) = service.route(&request("POST", "/stores/cohort/partials", body));
        assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
        // A different seed, range, or sample size is a different gather.
        for other in [
            r#"{"kind":"core_sample","shards":[0,3],"seed":6,"sample_size":60}"#,
            r#"{"kind":"core_sample","shards":[0,2],"seed":5,"sample_size":60}"#,
            r#"{"kind":"core_sample","shards":[0,3],"seed":5,"sample_size":61}"#,
        ] {
            let (status, resp) = service.route(&request("POST", "/stores/cohort/partials", other));
            assert_eq!(status, 200, "{}", resp.render());
            assert_eq!(resp.get("cached"), Some(&Json::Bool(false)), "{other}");
        }
        // The original key is still resident and hits.
        let (_, hit) = service.route(&request("POST", "/stores/cohort/partials", body));
        assert_eq!(hit.get("cached"), Some(&Json::Bool(true)));
        // Deregistering clears the cache: after a re-registration the same
        // request misses rather than serving the old cohort's rows.
        let (status, _) = service.route(&request("DELETE", "/stores/cohort", ""));
        assert_eq!(status, 200);
        let (status, _) = service.route(&request(
            "POST",
            "/stores",
            r#"{"name":"cohort","generate":{"kind":"school","rows":300,"seed":8,"shard_size":64}}"#,
        ));
        assert_eq!(status, 201);
        let (_, fresh) = service.route(&request("POST", "/stores/cohort/partials", body));
        assert_eq!(fresh.get("cached"), Some(&Json::Bool(false)));
        assert_ne!(
            fresh.get("rows").unwrap().render(),
            first.get("rows").unwrap().render(),
            "a different cohort samples different rows"
        );
        assert_eq!(service.partials_cache_hits.load(Ordering::Relaxed), 1);
    }

    /// The fault plan is process-global: tests that install one must not
    /// interleave, or one test's `install` wipes another's pending spec.
    static FAULT_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn shutdown_drains_a_slow_handler_without_waiting_out_the_delay() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let service = AuditService::new();
        let server = serve(service, "127.0.0.1:0", 2).unwrap();
        let addr = server.addr();
        fair_core::fault::install(
            fair_core::FaultPlan::parse("serve@/health:delay:5000:1").unwrap(),
        );
        let slow = std::thread::spawn(move || {
            let _ = crate::client::Client::new(addr).health();
        });
        // Let the request reach the handler's injected delay.
        std::thread::sleep(Duration::from_millis(150));
        let start = Instant::now();
        server.shutdown();
        let elapsed = start.elapsed();
        fair_core::fault::install(fair_core::FaultPlan::none());
        let _ = slow.join();
        assert!(
            elapsed < Duration::from_secs(3),
            "shutdown waited out the injected delay: {elapsed:?}"
        );
    }

    #[test]
    fn shutdown_severs_a_stuck_connection_after_the_drain_deadline() {
        std::env::set_var("FAIR_DRAIN_MS", "200");
        let service = AuditService::new();
        let server = serve(service, "127.0.0.1:0", 1).unwrap();
        // Open a connection and send nothing: the lone worker blocks in
        // read_request far past the drain window.
        let idle = TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let start = Instant::now();
        server.shutdown();
        let elapsed = start.elapsed();
        std::env::remove_var("FAIR_DRAIN_MS");
        drop(idle);
        assert!(
            elapsed < Duration::from_secs(5),
            "shutdown hung on an idle connection: {elapsed:?}"
        );
    }

    #[test]
    fn serve_fault_modes_fail_observably_then_clear() {
        let _guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let service = service_with_store(100);
        let server = serve(service, "127.0.0.1:0", 2).unwrap();
        let client = crate::client::Client::new(server.addr());

        fair_core::fault::install(fair_core::FaultPlan::parse("serve@/health:corrupt:1").unwrap());
        assert!(
            matches!(client.health(), Err(crate::error::ServeError::Protocol(_))),
            "corrupted body must fail the client's JSON parse"
        );

        fair_core::fault::install(fair_core::FaultPlan::parse("serve@/health:500:1").unwrap());
        assert!(matches!(
            client.health(),
            Err(crate::error::ServeError::Api { status: 500, .. })
        ));

        fair_core::fault::install(fair_core::FaultPlan::parse("serve@/health:panic:1").unwrap());
        match client.health() {
            Err(crate::error::ServeError::Api { status, message }) => {
                assert_eq!(status, 500);
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected a 500 from the injected panic, got {other:?}"),
        }

        fair_core::fault::install(fair_core::FaultPlan::parse("serve@/health:drop:1").unwrap());
        assert!(client.health().is_err(), "dropped connection must error");

        fair_core::fault::install(
            fair_core::FaultPlan::parse("serve@/health:close-mid-body:1").unwrap(),
        );
        assert!(client.health().is_err(), "mid-body close must error");

        fair_core::fault::install(fair_core::FaultPlan::none());
        client
            .health()
            .expect("faults cleared, server healthy again");
        server.shutdown();
    }
}
