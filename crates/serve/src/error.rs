//! Error types shared by the server and the client.

use crate::json::JsonError;
use std::fmt;
use std::io;

/// Errors produced by the audit service and its client.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying socket/file I/O failure.
    Io(io::Error),
    /// The peer violated the wire protocol (malformed HTTP or JSON).
    Protocol(String),
    /// The server answered with an error status; `status` is the HTTP code
    /// and `message` the server's structured `error` field.
    Api {
        /// HTTP status code of the response.
        status: u16,
        /// The server's explanation.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "audit-service I/O error: {e}"),
            Self::Protocol(m) => write!(f, "wire-protocol violation: {m}"),
            Self::Api { status, message } => {
                write!(f, "audit service returned {status}: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<JsonError> for ServeError {
    fn from(e: JsonError) -> Self {
        Self::Protocol(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

/// A server-side request failure: an HTTP status plus a message, rendered as
/// `{"error": message}`. Handlers return this; the router turns it into the
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable explanation (the response body's `error` field).
    pub message: String,
}

impl ApiError {
    /// 400 Bad Request.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// 404 Not Found.
    #[must_use]
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    /// 409 Conflict.
    #[must_use]
    pub fn conflict(message: impl Into<String>) -> Self {
        Self {
            status: 409,
            message: message.into(),
        }
    }

    /// 422 Unprocessable (a well-formed request the engine rejected).
    #[must_use]
    pub fn unprocessable(message: impl Into<String>) -> Self {
        Self {
            status: 422,
            message: message.into(),
        }
    }

    /// 429 Too Many Requests (the running-job ceiling).
    #[must_use]
    pub fn too_many_jobs(message: impl Into<String>) -> Self {
        Self {
            status: 429,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ServeError::Api {
            status: 404,
            message: "no such store".into(),
        };
        assert!(e.to_string().contains("404"));
        assert!(e.to_string().contains("no such store"));
        assert!(ServeError::Protocol("bad header".into())
            .to_string()
            .contains("bad header"));
        let io = ServeError::from(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        assert!(io.to_string().contains("refused"));
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn api_error_constructors_carry_their_status() {
        assert_eq!(ApiError::bad_request("x").status, 400);
        assert_eq!(ApiError::not_found("x").status, 404);
        assert_eq!(ApiError::conflict("x").status, 409);
        assert_eq!(ApiError::unprocessable("x").status, 422);
    }
}
