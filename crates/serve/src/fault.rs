//! Applying [`fair_core::fault`] modes to live connections — the serve half
//! of the fault-injection harness.
//!
//! The request path consults the process-global plan at the `"serve"` fault
//! point with the request path as context (see
//! [`crate::server::AuditService`]); the helpers here turn an activated mode
//! into an observable network failure: a stalled response, a dropped
//! connection, a garbled or truncated body, an injected 500, or a handler
//! panic. Every mode maps to a failure a real fleet produces — which is what
//! makes the coordinator's retry/re-dispatch logic testable on one machine.

use crate::http::render_head;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Sleep for `total`, waking early if `stop` is set — so an injected delay
/// cannot hold a graceful shutdown hostage for longer than one slice.
pub(crate) fn stop_aware_sleep(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
    }
}

/// Corrupt a rendered body, returning the garbled bytes to write. Length is
/// preserved — the advertised `Content-Length` stays truthful — but the
/// leading bytes become `#`, which can never begin valid JSON, so the peer's
/// parse is guaranteed to fail.
#[must_use]
pub(crate) fn corrupt_rendered(body: &str) -> Vec<u8> {
    let mut bytes = body.as_bytes().to_vec();
    for b in bytes.iter_mut().take(16) {
        *b = b'#';
    }
    bytes
}

/// Write a truthful head claiming the full body, send only the first half,
/// and return — the worker then drops the connection, so the peer sees a
/// mid-body close.
pub(crate) fn write_close_mid_body(conn: &TcpStream, status: u16, body: &str) {
    let mut w = conn;
    let _ = w.write_all(render_head(status, body.len()).as_bytes());
    let _ = w.write_all(&body.as_bytes()[..body.len() / 2]);
    let _ = w.flush();
}

/// Write a pre-rendered (possibly corrupted) byte body under the given
/// status.
pub(crate) fn write_raw_body(conn: &TcpStream, status: u16, body: &[u8]) {
    let mut w = conn;
    let _ = w.write_all(render_head(status, body.len()).as_bytes());
    let _ = w.write_all(body);
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_preserves_length_and_breaks_json() {
        let body = r#"{"store":"x","shards":[]}"#;
        let garbled = corrupt_rendered(body);
        assert_eq!(garbled.len(), body.len());
        let text = std::str::from_utf8(&garbled).unwrap();
        assert!(crate::json::Json::parse(text).is_err());
    }

    #[test]
    fn stop_flag_cuts_an_injected_delay_short() {
        let stop = AtomicBool::new(true);
        let start = Instant::now();
        stop_aware_sleep(Duration::from_secs(5), &stop);
        assert!(start.elapsed() < Duration::from_millis(500));
    }
}
