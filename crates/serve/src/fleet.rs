//! The fleet coordinator: several audit servers acting as one DCA engine.
//!
//! A [`FleetCoordinator`] owns a [`PlacementMap`] assigning each worker a
//! contiguous shard range of one cohort, fans partial-reduce requests
//! (`POST /stores/{name}/partials`) out to the fleet, and combines the
//! per-shard partials in ascending shard order through
//! [`fair_core::dca::partial::combine_disparity_partials`] — so a fleet
//! descent is **bit-identical** to the local
//! [`run_full_dca_sharded`](fair_core::dca::run_full_dca_sharded) /
//! [`run_core_dca_sharded`](fair_core::dca::run_core_dca_sharded)
//! trajectory for the same seed, worker count and failures included.
//!
//! Robustness model, in order of escalation:
//!
//! 1. **Retry with jittered exponential backoff** ([`crate::backoff`]) up to
//!    [`FleetConfig::max_attempts`] per worker. Retrying is safe because
//!    both partial kinds are pure functions of the request — a duplicate
//!    execution returns byte-identical data, and the combiner rejects a
//!    shard supplied twice, so a retry can never double-count a range.
//! 2. **Ejection** after [`FleetConfig::eject_after`] consecutive failures:
//!    the worker drops out of the preferred-candidate rotation.
//! 3. **Re-dispatch**: a failed range is offered to the surviving workers
//!    (every worker holds the full store; the placement only splits work),
//!    degrading to a single-node fleet rather than failing the descent.
//! 4. **Re-admission**: ejected workers are health-probed every
//!    [`FleetConfig::probe_every`] fan-out rounds and rejoin on success.
//!
//! Deterministic 4xx rejections are *not* retried or re-dispatched — a
//! request every healthy node rejects is the caller's bug, not a fault.
//!
//! Every escalation is observable: the coordinator carries one trace id —
//! the caller's, via [`FleetCoordinator::with_trace`], or one minted per
//! fan-out round when unset — and sends it to every worker via
//! `x-fair-trace` (so a retried range's server-side spans correlate with
//! the submitting request), mirrors its [`FleetReport`] counters into
//! `fair_fleet_*` registry series, times each worker's requests into
//! `fair_fleet_request_duration_us{worker}`, and emits `fleet.retry` /
//! `fleet.redispatch` / `fleet.eject` / `fleet.readmit` events. When a
//! per-job profile is installed on the dispatching thread, every worker
//! round trip is attributed to the [`Wire`](obs::Phase::Wire) phase and
//! partial combining to [`Combine`](obs::Phase::Combine).

use crate::backoff::Backoff;
use crate::catalog::PlacementMap;
use crate::client::Client;
use crate::error::{Result, ServeError};
use fair_core::dca::partial::{combine_disparity_partials, DisparityPartial};
use fair_core::dca::{
    run_core_dca_gathered, run_full_descent, CoreDcaOutcome, FullDcaOutcome, RunControl,
    TopKDisparity,
};
use fair_core::obs;
use fair_core::ranking::{selection_size, WeightedSumRanker};
use fair_core::{DataObject, DcaConfig, FairError, Schema, SchemaRef};
use std::net::SocketAddr;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Retry, timeout, and health-probing knobs for a [`FleetCoordinator`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Per-request socket deadline (connect, read, and write).
    pub request_timeout: Duration,
    /// Attempts per worker before a range moves to the next candidate.
    pub max_attempts: usize,
    /// First retry delay; doubles per failure (with equal jitter).
    pub backoff_base: Duration,
    /// Retry-delay ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failures after which a worker is ejected.
    pub eject_after: u32,
    /// Fan-out rounds between health probes of an ejected worker.
    pub probe_every: usize,
    /// Extra TCP connect attempts inside each request (see
    /// [`Client::with_connect_retries`]).
    pub connect_retries: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            request_timeout: Duration::from_secs(10),
            max_attempts: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            eject_after: 3,
            probe_every: 4,
            connect_retries: 1,
        }
    }
}

/// One worker as the coordinator tracks it.
#[derive(Debug)]
struct WorkerState {
    addr: SocketAddr,
    client: Client,
    healthy: bool,
    consecutive_failures: u32,
    rounds_since_eject: usize,
    /// Registry histogram of this worker's request latencies
    /// (`fair_fleet_request_duration_us{worker=addr}`), resolved at connect.
    duration: Arc<obs::Histogram>,
}

/// Registry handles for the coordinator's counters, resolved once at
/// connect. The [`FleetReport`] atomics stay the per-coordinator exact view;
/// these are the process-total series `/metrics` exposes (several
/// coordinators in one process sum here).
#[derive(Debug)]
struct FleetObs {
    requests: Arc<obs::Counter>,
    retries: Arc<obs::Counter>,
    re_dispatches: Arc<obs::Counter>,
    ejections: Arc<obs::Counter>,
    readmissions: Arc<obs::Counter>,
    partials_cache_hits: Arc<obs::Counter>,
}

impl Default for FleetObs {
    fn default() -> Self {
        Self {
            requests: obs::counter("fair_fleet_requests_total", &[]),
            retries: obs::counter("fair_fleet_retries_total", &[]),
            re_dispatches: obs::counter("fair_fleet_re_dispatches_total", &[]),
            ejections: obs::counter("fair_fleet_ejections_total", &[]),
            readmissions: obs::counter("fair_fleet_readmissions_total", &[]),
            partials_cache_hits: obs::counter("fair_fleet_partials_cache_hits_total", &[]),
        }
    }
}

/// A public snapshot of one worker's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStatus {
    /// The worker's address.
    pub addr: SocketAddr,
    /// Whether the worker is in the dispatch rotation.
    pub healthy: bool,
    /// Consecutive failures since its last success.
    pub consecutive_failures: u32,
}

/// Cumulative coordinator counters (monotone since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetReport {
    /// Partial-reduce / probe requests issued.
    pub requests: u64,
    /// Same-worker retries after a transient failure.
    pub retries: u64,
    /// Ranges served by a worker other than their placement owner.
    pub re_dispatches: u64,
    /// Workers ejected after consecutive failures.
    pub ejections: u64,
    /// Ejected workers re-admitted by a health probe.
    pub readmissions: u64,
    /// `core_sample` responses the workers answered from their gather LRU
    /// (repeated `(seed, step)` requests — retries, re-run descents).
    pub partials_cache_hits: u64,
}

/// A coordinator for one cohort served by a fleet of audit servers.
#[derive(Debug)]
pub struct FleetCoordinator {
    store: String,
    schema: SchemaRef,
    rows: usize,
    placement: PlacementMap,
    workers: Mutex<Vec<WorkerState>>,
    config: FleetConfig,
    requests: AtomicU64,
    retries: AtomicU64,
    re_dispatches: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    partials_cache_hits: AtomicU64,
    obs: FleetObs,
    /// Trace id stamped on every fan-out round and worker request. `None`
    /// (the default) mints a fresh id per round; a coordinator driving a
    /// traced job sets the job's id here so one id spans the whole descent.
    trace: Option<String>,
}

impl FleetCoordinator {
    /// Connect to `addrs`, resolve `store`'s shape from the first reachable
    /// worker, and split its shards evenly across the fleet.
    ///
    /// Every worker must serve the full store under the same name; the
    /// placement splits *work*, not data, which is what makes re-dispatch
    /// after a worker death possible.
    ///
    /// # Errors
    /// [`ServeError::Protocol`] when `addrs` is empty or no worker answers
    /// for `store`; schema/shape errors from the wire.
    pub fn connect(store: &str, addrs: &[SocketAddr], config: FleetConfig) -> Result<Self> {
        if addrs.is_empty() {
            return Err(ServeError::Protocol(
                "a fleet needs at least one worker address".into(),
            ));
        }
        let clients: Vec<Client> = addrs
            .iter()
            .map(|&a| {
                Client::new(a)
                    .with_timeout(config.request_timeout)
                    .with_connect_retries(config.connect_retries)
            })
            .collect();
        let mut resolved = None;
        for client in &clients {
            let info = client
                .stores()
                .ok()
                .and_then(|list| list.into_iter().find(|s| s.name == store));
            if let Some(info) = info {
                if let Ok((features, fairness)) = client.schema(store) {
                    resolved = Some((info, features, fairness));
                    break;
                }
            }
        }
        let Some((info, features, fairness)) = resolved else {
            return Err(ServeError::Protocol(format!(
                "no reachable worker serves a store named `{store}`"
            )));
        };
        let features: Vec<&str> = features.iter().map(String::as_str).collect();
        let fairness: Vec<&str> = fairness.iter().map(String::as_str).collect();
        let schema = Schema::from_names(&features, &fairness, &[])
            .map_err(|e| ServeError::Protocol(format!("worker reported invalid schema: {e}")))?;
        let placement = PlacementMap::even(info.shards, clients.len());
        let workers = clients
            .into_iter()
            .zip(addrs)
            .map(|(client, &addr)| WorkerState {
                duration: obs::histogram(
                    "fair_fleet_request_duration_us",
                    &[("worker", &addr.to_string())],
                ),
                addr,
                client,
                healthy: true,
                consecutive_failures: 0,
                rounds_since_eject: 0,
            })
            .collect();
        Ok(Self {
            store: store.to_string(),
            schema,
            rows: info.rows,
            placement,
            workers: Mutex::new(workers),
            config,
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            re_dispatches: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            partials_cache_hits: AtomicU64::new(0),
            obs: FleetObs::default(),
            trace: None,
        })
    }

    /// Stamp `trace` on every fan-out round and worker request instead of
    /// minting a fresh id per round — so a traced job's submit request, its
    /// descent steps, and every worker-side handler span (retries and
    /// re-dispatches included) correlate under one id.
    #[must_use]
    pub fn with_trace(mut self, trace: &str) -> Self {
        self.trace = Some(trace.to_string());
        self
    }

    /// The cohort name the fleet evaluates.
    #[must_use]
    pub fn store(&self) -> &str {
        &self.store
    }

    /// Total cohort rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The shard-range placement map.
    #[must_use]
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// A health snapshot of every worker.
    #[must_use]
    pub fn workers(&self) -> Vec<WorkerStatus> {
        self.workers
            .lock()
            .expect("fleet worker table poisoned")
            .iter()
            .map(|w| WorkerStatus {
                addr: w.addr,
                healthy: w.healthy,
                consecutive_failures: w.consecutive_failures,
            })
            .collect()
    }

    /// Cumulative request/retry/failover counters.
    #[must_use]
    pub fn report(&self) -> FleetReport {
        FleetReport {
            requests: self.requests.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            re_dispatches: self.re_dispatches.load(Ordering::Relaxed),
            ejections: self.ejections.load(Ordering::Relaxed),
            readmissions: self.readmissions.load(Ordering::Relaxed),
            partials_cache_hits: self.partials_cache_hits.load(Ordering::Relaxed),
        }
    }

    /// The disparity vector at selection fraction `k` under `bonus`,
    /// computed by distributed partial-reduce — bit-identical to the local
    /// one-sweep evaluation.
    ///
    /// # Errors
    /// Wire errors once every worker is exhausted; engine validation errors.
    pub fn disparity(&self, k: f64, bonus: &[f64], weights: Option<&[f64]>) -> Result<Vec<f64>> {
        let count = selection_size(self.rows, k).map_err(engine_error)?;
        let partials = self.collect_partials(bonus, weights, count)?;
        let mut out = Vec::new();
        let _combine = fair_core::obs::profile::scope(obs::Phase::Combine);
        combine_disparity_partials(
            self.rows,
            self.schema.num_fairness(),
            count,
            &partials,
            &mut out,
        )
        .map_err(engine_error)?;
        Ok(out)
    }

    /// Run Full DCA across the fleet: every descent step fans one
    /// partial-reduce round out to the workers and combines the shards in
    /// order. Bit-identical to `run_full_dca_sharded` with the same
    /// arguments.
    ///
    /// # Errors
    /// Wire errors once every worker is exhausted; engine validation errors.
    pub fn run_full_dca(
        &self,
        k: f64,
        weights: Option<&[f64]>,
        config: &DcaConfig,
        initial: Option<Vec<f64>>,
        trace: bool,
    ) -> Result<FullDcaOutcome> {
        self.run_full_dca_controlled(k, weights, config, initial, trace, &RunControl::new())
    }

    /// [`run_full_dca`](Self::run_full_dca) with caller-supplied
    /// cancellation and progress reporting — the variant the job manager
    /// drives, so a fleet-backed job is cancellable and step-profiled like
    /// a local one.
    ///
    /// # Errors
    /// Wire errors once every worker is exhausted; engine validation errors.
    pub fn run_full_dca_controlled(
        &self,
        k: f64,
        weights: Option<&[f64]>,
        config: &DcaConfig,
        initial: Option<Vec<f64>>,
        trace: bool,
        control: &RunControl,
    ) -> Result<FullDcaOutcome> {
        let dims = self.schema.num_fairness();
        let count = selection_size(self.rows, k).map_err(engine_error)?;
        run_full_descent(
            dims,
            self.rows,
            config,
            initial,
            trace,
            control,
            |bonus, out| {
                let partials = self
                    .collect_partials(bonus, weights, count)
                    .map_err(wire_to_engine)?;
                // Combining is the coordinator's own CPU slice of a fleet
                // step; the round trips themselves accrue as Wire inside
                // `run_range`.
                let _combine = fair_core::obs::profile::scope(obs::Phase::Combine);
                combine_disparity_partials(self.rows, dims, count, &partials, out)
            },
        )
        .map_err(engine_error)
    }

    /// Run Core DCA across the fleet: every step's deterministic Bernoulli
    /// sample is gathered range-by-range from the workers and evaluated
    /// locally. Bit-identical to `run_core_dca_sharded` with the same
    /// arguments.
    ///
    /// # Errors
    /// Wire errors once every worker is exhausted; engine validation errors.
    pub fn run_core_dca(
        &self,
        k: f64,
        weights: Option<&[f64]>,
        config: &DcaConfig,
        initial: Option<Vec<f64>>,
        trace: bool,
    ) -> Result<CoreDcaOutcome> {
        self.run_core_dca_controlled(k, weights, config, initial, trace, &RunControl::new())
    }

    /// [`run_core_dca`](Self::run_core_dca) with caller-supplied
    /// cancellation and progress reporting.
    ///
    /// # Errors
    /// Wire errors once every worker is exhausted; engine validation errors.
    pub fn run_core_dca_controlled(
        &self,
        k: f64,
        weights: Option<&[f64]>,
        config: &DcaConfig,
        initial: Option<Vec<f64>>,
        trace: bool,
        control: &RunControl,
    ) -> Result<CoreDcaOutcome> {
        let nf = self.schema.num_features();
        let na = self.schema.num_fairness();
        let ranker = WeightedSumRanker::new(weights.map_or_else(|| vec![1.0; nf], <[f64]>::to_vec))
            .map_err(engine_error)?;
        let objective = TopKDisparity::new(k);
        run_core_dca_gathered(
            &self.schema,
            self.rows,
            &ranker,
            &objective,
            config,
            initial,
            trace,
            control,
            |step_seed, gather| {
                let samples = self
                    .fan_out(|client, range| {
                        client.core_sample(&self.store, step_seed, config.sample_size, range)
                    })
                    .map_err(wire_to_engine)?;
                // Ranges arrive in ascending order, so appending them in
                // sequence reproduces the local gather exactly.
                let hits = samples.iter().filter(|rows| rows.cached).count();
                if hits > 0 {
                    self.partials_cache_hits
                        .fetch_add(hits as u64, Ordering::Relaxed);
                    self.obs.partials_cache_hits.add(hits as u64);
                }
                for rows in &samples {
                    if rows.features.len() != rows.len() * nf
                        || rows.fairness.len() != rows.len() * na
                        || rows.labels.len() != rows.len()
                    {
                        return Err(FairError::InvalidConfig {
                            reason: "fleet: worker returned malformed sample columns".into(),
                        });
                    }
                    for i in 0..rows.len() {
                        gather.push(DataObject::new_unchecked(
                            rows.ids[i],
                            rows.features[i * nf..(i + 1) * nf].to_vec(),
                            rows.fairness[i * na..(i + 1) * na].to_vec(),
                            rows.labels[i],
                        ))?;
                    }
                }
                Ok(())
            },
        )
        .map_err(engine_error)
    }

    /// One fan-out round of disparity partials, flattened in ascending
    /// shard order.
    fn collect_partials(
        &self,
        bonus: &[f64],
        weights: Option<&[f64]>,
        count: usize,
    ) -> Result<Vec<DisparityPartial>> {
        let per_range = self.fan_out(|client, range| {
            client.disparity_partials(&self.store, bonus, weights, count, range)
        })?;
        Ok(per_range.into_iter().flatten().collect())
    }

    /// Dispatch `op` for every placement range concurrently, with
    /// retry/failover per range, returning results in ascending range
    /// order. The whole round shares one trace id — the coordinator's own
    /// ([`with_trace`](Self::with_trace)) or a fresh mint — carried to
    /// every worker in the `x-fair-trace` header, so a retried range's
    /// handler spans line up with this round's `fleet.fan_out` span under
    /// one id. The dispatching thread's job profile (if any) is carried
    /// into the per-range threads so worker round trips accrue as Wire.
    fn fan_out<T: Send>(
        &self,
        op: impl Fn(&Client, Range<usize>) -> Result<T> + Sync,
    ) -> Result<Vec<T>> {
        self.probe_ejected();
        let trace = self.trace.clone().unwrap_or_else(obs::next_trace_id);
        let assignments = self.placement.assignments();
        let span = obs::Span::new("fleet.fan_out")
            .trace(&trace)
            .field("store", &self.store)
            .field("ranges", assignments.len());
        let profile = fair_core::obs::profile::current();
        let results: Vec<Result<T>> = std::thread::scope(|scope| {
            let op = &op;
            let trace = &trace;
            let handles: Vec<_> = assignments
                .iter()
                .map(|(owner, range)| {
                    let owner = *owner;
                    let range = range.clone();
                    let profile = profile.clone();
                    scope.spawn(move || {
                        let _profile_guard = profile.map(fair_core::obs::profile::install);
                        self.run_range(owner, range.clone(), trace, |client| {
                            op(client, range.clone())
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(ServeError::Protocol(
                            "fleet dispatch thread panicked".into(),
                        ))
                    })
                })
                .collect()
        });
        span.close();
        results.into_iter().collect()
    }

    /// Execute one range's request against its owner, then — after
    /// `max_attempts` backed-off tries — against every other worker,
    /// healthy candidates first.
    fn run_range<T>(
        &self,
        owner: usize,
        range: Range<usize>,
        trace: &str,
        op: impl Fn(&Client) -> Result<T>,
    ) -> Result<T> {
        let mut last_error: Option<ServeError> = None;
        for (slot, w) in self.candidate_order(owner).into_iter().enumerate() {
            let (client, addr, duration) = {
                let workers = self.workers.lock().expect("fleet worker table poisoned");
                (
                    workers[w].client.clone().with_trace(trace),
                    workers[w].addr,
                    workers[w].duration.clone(),
                )
            };
            let mut backoff = Backoff::new(self.config.backoff_base, self.config.backoff_cap);
            for attempt in 0..self.config.max_attempts.max(1) {
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.obs.requests.inc();
                let start = Instant::now();
                let outcome = {
                    // Wire time for the requesting job: the full round trip
                    // including the worker's server-side compute, which is
                    // exactly what the coordinator waits on.
                    let _wire = fair_core::obs::profile::scope(obs::Phase::Wire);
                    op(&client)
                };
                duration.record(
                    u64::try_from(start.elapsed().as_micros().min(u128::from(u64::MAX)))
                        .unwrap_or(u64::MAX),
                );
                match outcome {
                    Ok(value) => {
                        self.record_success(w);
                        if slot > 0 {
                            self.re_dispatches.fetch_add(1, Ordering::Relaxed);
                            self.obs.re_dispatches.inc();
                            obs::Event::new("fleet.redispatch")
                                .trace(trace)
                                .field("worker", addr)
                                .field("shards", format!("{range:?}"))
                                .emit();
                        }
                        return Ok(value);
                    }
                    // A deterministic rejection: every worker would answer
                    // the same, so retrying or re-dispatching cannot help.
                    Err(ServeError::Api { status, message }) if status < 500 => {
                        return Err(ServeError::Api { status, message });
                    }
                    Err(e) => {
                        self.record_failure(w);
                        last_error = Some(e);
                        if attempt + 1 < self.config.max_attempts.max(1) {
                            self.retries.fetch_add(1, Ordering::Relaxed);
                            self.obs.retries.inc();
                            obs::Event::new("fleet.retry")
                                .trace(trace)
                                .field("worker", addr)
                                .field("attempt", attempt + 1)
                                .emit();
                            backoff.sleep();
                        }
                    }
                }
            }
        }
        Err(ServeError::Protocol(format!(
            "shards {range:?}: every worker failed (last error: {})",
            last_error.map_or_else(|| "none recorded".into(), |e| e.to_string())
        )))
    }

    /// Worker indices to try for a range owned by `owner`: healthy workers
    /// rotated to start at the owner, then ejected workers as a last
    /// resort.
    fn candidate_order(&self, owner: usize) -> Vec<usize> {
        let workers = self.workers.lock().expect("fleet worker table poisoned");
        let n = workers.len();
        let rotated = (0..n).map(|i| (owner + i) % n);
        let mut order: Vec<usize> = rotated.clone().filter(|&w| workers[w].healthy).collect();
        order.extend(rotated.filter(|&w| !workers[w].healthy));
        order
    }

    fn record_success(&self, w: usize) {
        let mut workers = self.workers.lock().expect("fleet worker table poisoned");
        let state = &mut workers[w];
        state.consecutive_failures = 0;
        if !state.healthy {
            state.healthy = true;
            self.readmissions.fetch_add(1, Ordering::Relaxed);
            self.obs.readmissions.inc();
            obs::Event::new("fleet.readmit")
                .field("worker", state.addr)
                .emit();
        }
    }

    fn record_failure(&self, w: usize) {
        let mut workers = self.workers.lock().expect("fleet worker table poisoned");
        let state = &mut workers[w];
        state.consecutive_failures += 1;
        if state.healthy && state.consecutive_failures >= self.config.eject_after {
            state.healthy = false;
            state.rounds_since_eject = 0;
            self.ejections.fetch_add(1, Ordering::Relaxed);
            self.obs.ejections.inc();
            obs::Event::new("fleet.eject")
                .field("worker", state.addr)
                .field("consecutive_failures", state.consecutive_failures)
                .emit();
        }
    }

    /// Health-probe ejected workers that are due, re-admitting responders.
    fn probe_ejected(&self) {
        let due: Vec<(usize, Client)> = {
            let mut workers = self.workers.lock().expect("fleet worker table poisoned");
            workers
                .iter_mut()
                .enumerate()
                .filter(|(_, state)| !state.healthy)
                .filter_map(|(w, state)| {
                    state.rounds_since_eject += 1;
                    (state.rounds_since_eject >= self.config.probe_every)
                        .then(|| (w, state.client.clone()))
                })
                .collect()
        };
        for (w, client) in due {
            self.requests.fetch_add(1, Ordering::Relaxed);
            self.obs.requests.inc();
            if client.health().is_ok() {
                self.record_success(w);
            } else {
                self.workers.lock().expect("fleet worker table poisoned")[w].rounds_since_eject = 0;
            }
        }
    }
}

/// Engine-side failures surface like the server's own `422` answers.
fn engine_error(e: FairError) -> ServeError {
    ServeError::Api {
        status: 422,
        message: e.to_string(),
    }
}

/// Wire failures crossing *into* an engine callback keep their story in the
/// message; the engine wraps them in its config-error variant.
fn wire_to_engine(e: ServeError) -> FairError {
    FairError::InvalidConfig {
        reason: format!("fleet partial-reduce failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = FleetConfig::default();
        assert!(c.max_attempts >= 1);
        assert!(c.eject_after >= 1);
        assert!(c.backoff_cap >= c.backoff_base);
    }

    #[test]
    fn connect_rejects_an_empty_fleet() {
        let err = FleetCoordinator::connect("cohort", &[], FleetConfig::default()).unwrap_err();
        assert!(err.to_string().contains("at least one worker"));
    }
}
