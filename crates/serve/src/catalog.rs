//! The store catalog: named cohorts the service audits.
//!
//! A catalog entry wraps either an on-disk [`ShardStore`] (paged through its
//! LRU cache, shareable across request threads — the cache's interior
//! mutability sits behind its own lock with pin/evict semantics intact) or
//! an in-memory [`ShardedDataset`] (synthetic cohorts, fixtures). Both sides
//! are one [`CohortStore`], which implements [`ShardSource`] — so every
//! request handler and background job evaluates through the same sharded
//! kernels regardless of where the cohort lives.
//!
//! Entries are `Arc`-shared: a request thread resolves a name once and holds
//! the entry for the duration of its work, so deregistering a store never
//! pulls a cohort out from under an in-flight request or job.

use crate::error::ApiError;
use fair_core::{obs, SchemaRef, ShardSource, ShardView, ShardedDataset};
use fair_store::{CacheStats, ShardStore};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// A cohort the service can evaluate: resident or paged from disk.
#[derive(Debug)]
pub enum CohortStore {
    /// An in-memory sharded cohort (synthetic or loaded fixtures).
    Memory(ShardedDataset),
    /// An on-disk FSS1 file, decoded on demand through the shard cache.
    Disk(ShardStore),
}

impl CohortStore {
    /// `"memory"` or `"disk"` — the wire-format `kind` field.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Memory(_) => "memory",
            Self::Disk(_) => "disk",
        }
    }

    /// Cache counters for paged stores (`None` for resident cohorts).
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        match self {
            Self::Memory(_) => None,
            Self::Disk(s) => Some(s.cache_stats()),
        }
    }
}

impl ShardSource for CohortStore {
    fn schema(&self) -> &SchemaRef {
        match self {
            Self::Memory(d) => d.schema(),
            Self::Disk(s) => ShardSource::schema(s),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Memory(d) => d.len(),
            Self::Disk(s) => ShardSource::len(s),
        }
    }

    fn shard_size(&self) -> usize {
        match self {
            Self::Memory(d) => d.shard_size(),
            Self::Disk(s) => ShardSource::shard_size(s),
        }
    }

    fn num_shards(&self) -> usize {
        match self {
            Self::Memory(d) => d.num_shards(),
            Self::Disk(s) => ShardSource::num_shards(s),
        }
    }

    fn with_shard<T>(&self, index: usize, f: impl FnOnce(ShardView<'_>) -> T) -> T {
        match self {
            Self::Memory(d) => d.with_shard(index, f),
            Self::Disk(s) => s.with_shard(index, f),
        }
    }
}

/// One registered cohort: its name, provenance, and the store itself.
#[derive(Debug)]
pub struct StoreEntry {
    /// The catalog name clients address the cohort by.
    pub name: String,
    /// The backing file for disk stores (`None` for in-memory cohorts).
    pub path: Option<PathBuf>,
    /// The cohort.
    pub store: CohortStore,
}

/// The named-store registry. All methods take `&self`: the map sits behind a
/// read-write lock, so lookups from concurrent request threads never
/// serialize on registrations.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: RwLock<BTreeMap<String, Arc<StoreEntry>>>,
}

impl Catalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an on-disk FSS1 file under `name`, opening it with the
    /// environment-resolved cache budget.
    ///
    /// # Errors
    /// `409` when the name is taken, `422` when the file fails to open
    /// (missing, a directory, corrupt, …).
    pub fn register_disk(
        &self,
        name: &str,
        path: impl Into<PathBuf>,
    ) -> Result<Arc<StoreEntry>, ApiError> {
        let path = path.into();
        validate_name(name)?;
        let store = ShardStore::open(&path).map_err(|e| {
            ApiError::unprocessable(format!("cannot open `{}`: {e}", path.display()))
        })?;
        self.insert(StoreEntry {
            name: name.to_string(),
            path: Some(path),
            store: CohortStore::Disk(store),
        })
    }

    /// Register an in-memory cohort under `name`.
    ///
    /// # Errors
    /// `409` when the name is taken, `400` on an invalid name.
    pub fn register_memory(
        &self,
        name: &str,
        data: ShardedDataset,
    ) -> Result<Arc<StoreEntry>, ApiError> {
        validate_name(name)?;
        self.insert(StoreEntry {
            name: name.to_string(),
            path: None,
            store: CohortStore::Memory(data),
        })
    }

    fn insert(&self, entry: StoreEntry) -> Result<Arc<StoreEntry>, ApiError> {
        let mut entries = self.entries.write().expect("catalog lock poisoned");
        if entries.contains_key(&entry.name) {
            return Err(ApiError::conflict(format!(
                "store `{}` is already registered",
                entry.name
            )));
        }
        let entry = Arc::new(entry);
        entries.insert(entry.name.clone(), entry.clone());
        obs::counter(
            "fair_serve_stores_registered_total",
            &[("kind", entry.store.kind())],
        )
        .inc();
        obs::Event::new("catalog.register")
            .field("name", &entry.name)
            .field("kind", entry.store.kind())
            .field("rows", entry.store.len())
            .field("shards", entry.store.num_shards())
            .emit();
        Ok(entry)
    }

    /// Resolve a name to its entry.
    ///
    /// # Errors
    /// `404` when no store carries the name.
    pub fn get(&self, name: &str) -> Result<Arc<StoreEntry>, ApiError> {
        self.entries
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no store named `{name}`")))
    }

    /// Deregister a store. In-flight requests and jobs holding the entry's
    /// `Arc` keep evaluating; the name just becomes free.
    ///
    /// # Errors
    /// `404` when no store carries the name.
    pub fn remove(&self, name: &str) -> Result<(), ApiError> {
        self.entries
            .write()
            .expect("catalog lock poisoned")
            .remove(name)
            .map(|entry| {
                obs::Event::new("catalog.remove")
                    .field("name", name)
                    .field("kind", entry.store.kind())
                    .emit();
            })
            .ok_or_else(|| ApiError::not_found(format!("no store named `{name}`")))
    }

    /// All entries, name-ordered.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<StoreEntry>> {
        self.entries
            .read()
            .expect("catalog lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered stores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.read().expect("catalog lock poisoned").len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which worker owns which contiguous shard range — the fleet coordinator's
/// placement map for one cohort.
///
/// Ranges are half-open `[lo, hi)`, disjoint, and cover `0..num_shards` in
/// order, so combining per-range partials by ascending range index is the
/// same fold as combining per-shard partials by ascending shard index — the
/// property the bit-identity contract of
/// [`fair_core::dca::partial::combine_disparity_partials`] rests on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementMap {
    /// `ranges[w]` is the shard range owned by worker `w`.
    ranges: Vec<std::ops::Range<usize>>,
}

impl PlacementMap {
    /// Split `num_shards` as evenly as possible across `workers` nodes, the
    /// first `num_shards % workers` ranges taking one extra shard. Workers
    /// beyond the shard count receive empty ranges.
    #[must_use]
    pub fn even(num_shards: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let base = num_shards / workers;
        let extra = num_shards % workers;
        let mut ranges = Vec::with_capacity(workers);
        let mut lo = 0;
        for w in 0..workers {
            let span = base + usize::from(w < extra);
            ranges.push(lo..lo + span);
            lo += span;
        }
        Self { ranges }
    }

    /// The shard range owned by worker `w`.
    #[must_use]
    pub fn range(&self, w: usize) -> std::ops::Range<usize> {
        self.ranges[w].clone()
    }

    /// Every `(worker, range)` pair with a non-empty range.
    #[must_use]
    pub fn assignments(&self) -> Vec<(usize, std::ops::Range<usize>)> {
        self.ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(w, r)| (w, r.clone()))
            .collect()
    }

    /// Number of workers in the map (including empty-range workers).
    #[must_use]
    pub fn num_workers(&self) -> usize {
        self.ranges.len()
    }

    /// Total shard count covered by the map.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.ranges.last().map_or(0, |r| r.end)
    }
}

/// Catalog names travel in URL paths: keep them short and unambiguous.
fn validate_name(name: &str) -> Result<(), ApiError> {
    if name.is_empty() || name.len() > 128 {
        return Err(ApiError::bad_request(
            "store names must be 1–128 characters",
        ));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(ApiError::bad_request(format!(
            "store name `{name}` may only contain [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::{DataObject, Schema};

    fn cohort(n: u64) -> ShardedDataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![f64::from(u8::from(i % 3 == 0))],
                    None,
                )
            })
            .collect();
        ShardedDataset::from_objects(schema, objects, 8).unwrap()
    }

    #[test]
    fn register_lookup_list_remove() {
        let catalog = Catalog::new();
        assert!(catalog.is_empty());
        catalog.register_memory("alpha", cohort(20)).unwrap();
        catalog.register_memory("beta", cohort(10)).unwrap();
        assert_eq!(catalog.len(), 2);
        let names: Vec<String> = catalog.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "beta"], "name-ordered");
        let entry = catalog.get("alpha").unwrap();
        assert_eq!(entry.store.len(), 20);
        assert_eq!(entry.store.kind(), "memory");
        assert!(entry.store.cache_stats().is_none());
        assert!(entry.path.is_none());

        catalog.remove("alpha").unwrap();
        assert_eq!(catalog.get("alpha").unwrap_err().status, 404);
        assert_eq!(catalog.remove("alpha").unwrap_err().status, 404);
        // The held Arc keeps evaluating after removal.
        assert_eq!(entry.store.num_shards(), 3);
    }

    #[test]
    fn duplicate_names_conflict() {
        let catalog = Catalog::new();
        catalog.register_memory("x", cohort(4)).unwrap();
        let err = catalog.register_memory("x", cohort(4)).unwrap_err();
        assert_eq!(err.status, 409);
    }

    #[test]
    fn names_are_validated() {
        let catalog = Catalog::new();
        for bad in ["", "has space", "semi;colon", "slash/y", &"x".repeat(200)] {
            let err = catalog.register_memory(bad, cohort(4)).unwrap_err();
            assert_eq!(err.status, 400, "{bad:?}");
        }
        catalog.register_memory("ok-name_1.fss", cohort(4)).unwrap();
    }

    #[test]
    fn disk_registration_requires_a_readable_store() {
        let catalog = Catalog::new();
        let err = catalog
            .register_disk("gone", "/nonexistent/file.fss")
            .unwrap_err();
        assert_eq!(err.status, 422);
        assert!(err.message.contains("cannot open"), "{}", err.message);
    }

    #[test]
    fn cohort_store_delegates_shard_source() {
        let store = CohortStore::Memory(cohort(20));
        assert_eq!(store.len(), 20);
        assert_eq!(store.shard_size(), 8);
        assert_eq!(store.num_shards(), 3);
        assert_eq!(store.schema().num_fairness(), 1);
        let first_id = store.with_shard(1, |view| view.data().row(0).id());
        assert_eq!(first_id.0, 8);
    }

    #[test]
    fn placement_map_covers_every_shard_exactly_once_in_order() {
        for (shards, workers) in [(10, 3), (3, 3), (2, 5), (0, 4), (17, 1), (16, 4)] {
            let map = PlacementMap::even(shards, workers);
            assert_eq!(map.num_workers(), workers);
            assert_eq!(map.num_shards(), shards, "({shards}, {workers})");
            let mut next = 0;
            for w in 0..workers {
                let r = map.range(w);
                assert_eq!(r.start, next, "gap or overlap at worker {w}");
                assert!(r.end >= r.start);
                // Even split: range sizes differ by at most one shard.
                assert!(r.len() <= shards / workers + 1);
                next = r.end;
            }
            assert_eq!(next, shards);
            let covered: usize = map.assignments().iter().map(|(_, r)| r.len()).sum();
            assert_eq!(covered, shards, "assignments drop empty ranges only");
        }
    }
}
