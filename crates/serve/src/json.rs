//! A minimal hand-rolled JSON value type, parser, and renderer.
//!
//! The build environment vendors no serialization crates, and the audit
//! service's wire format needs exactly six shapes: null, booleans, numbers,
//! strings, arrays, objects. [`Json`] covers them with a recursive-descent
//! parser (depth-limited, offset-reporting errors) and a deterministic
//! renderer.
//!
//! **Numbers round-trip bit-for-bit.** Values render through Rust's shortest
//! round-trip `f64` formatting and parse back with `str::parse::<f64>`, so a
//! metric vector computed on the server and decoded by the client carries the
//! identical bits — the property the service's "bit-identical to the library
//! path" guarantee rests on. Non-finite values render as `null` (JSON has no
//! NaN/Inf).

use std::fmt;

/// One JSON value. Objects preserve insertion order (rendering is
/// deterministic) and are looked up linearly — wire payloads here have a
/// handful of keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; exact for integers up to
    /// 2^53, which covers every count this service ships).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting ceiling for the parser — far above anything the wire format
/// produces, low enough that a hostile payload cannot overflow the stack.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    /// Returns a [`JsonError`] with the byte offset of the first violation.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after the document"));
        }
        Ok(value)
    }

    /// Render to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_into(self, &mut out);
        out
    }

    /// Build an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value from anything convertible to `f64` losslessly enough
    /// for the wire (counts up to 2^53 are exact).
    #[must_use]
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An array of numbers.
    #[must_use]
    pub fn num_arr(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// An array of strings.
    #[must_use]
    pub fn str_arr<S: AsRef<str>>(values: &[S]) -> Json {
        Json::Arr(
            values
                .iter()
                .map(|s| Json::Str(s.as_ref().to_string()))
                .collect(),
        )
    }

    /// A `u64` encoded losslessly: a JSON number when it fits the f64
    /// integer range (< 2^53), a decimal string otherwise — the convention
    /// seeds use on the wire ([`Json::as_u64`] reverses it).
    #[must_use]
    pub fn u64(v: u64) -> Json {
        if v < (1_u64 << 53) {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// The value as a `u64`: accepts non-negative integral numbers and
    /// decimal strings (the [`Json::u64`] encoding).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v < 9_007_199_254_740_992.0 => {
                Some(*v as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers).
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9_007_199_254_740_992.0 => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a vector of `f64` (every element must be a number).
    #[must_use]
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }

    /// The value as a vector of strings.
    #[must_use]
    pub fn as_str_vec(&self) -> Option<Vec<String>> {
        self.as_arr()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}` in object")),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&other) => Err(err(*pos, format!("unexpected byte `{}`", other as char))),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "non-UTF8"))?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, format!("invalid number `{token}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the paired `\uXXXX`.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err(*pos, "unpaired surrogate"));
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(err(*pos, "invalid low surrogate"));
                            }
                            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid code point"))?
                        } else {
                            char::from_u32(first).ok_or_else(|| err(*pos, "invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err(*pos, "raw control character in string")),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "non-UTF8"))?;
                let ch = s.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

/// Parse the `XXXX` of a `\uXXXX` escape; `pos` points at the `u` on entry
/// and at the final hex digit on exit (the caller's shared `+= 1` advances
/// past it).
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let hex = std::str::from_utf8(&bytes[start..end]).map_err(|_| err(start, "non-UTF8"))?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| err(start, "invalid \\u escape"))?;
    *pos = end - 1;
    Ok(v)
}

fn render_into(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip formatting: parsing the token
                // back recovers the identical bits.
                out.push_str(&format!("{v}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_shape() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "c": null, "d": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_f64_vec().unwrap(),
            vec![1.0, -2.5, 1000.0]
        );
        assert_eq!(
            v.get("b").unwrap().get("nested").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_f64_bits_exactly() {
        let values = [
            0.1,
            -3.0303040493021432e-5,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -0.0,
            12345678901234.567,
        ];
        for &v in &values {
            let rendered = Json::Num(v).render();
            let parsed = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v} via {rendered}");
        }
        let arr = Json::num_arr(&values);
        let back = Json::parse(&arr.render()).unwrap().as_f64_vec().unwrap();
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn render_escapes_and_reparses() {
        let tricky = "quote\" slash\\ newline\n tab\t control\u{1} unicode\u{00e9}";
        let rendered = Json::Str(tricky.to_string()).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(tricky));
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""é😀""#).unwrap().as_str(),
            Some("\u{e9}\u{1f600}")
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
    }

    #[test]
    fn malformed_documents_report_offsets() {
        for doc in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":}",
            "nul",
            "\u{1}",
        ] {
            let e = Json::parse(doc).unwrap_err();
            assert!(e.offset <= doc.len(), "{doc}: {e}");
            assert!(!e.message.is_empty());
        }
    }

    #[test]
    fn depth_limit_rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).unwrap_err().message.contains("deep"));
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_are_shape_strict() {
        let v = Json::parse(r#"{"n": 3, "frac": 3.5, "s": "x", "a": [1, "two"]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("frac").unwrap().as_usize(), None, "fractional");
        assert_eq!(Json::Num(-1.0).as_usize(), None, "negative");
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("a").unwrap().as_f64_vec(), None, "mixed array");
        assert_eq!(
            Json::str_arr(&["a", "b"]).as_str_vec(),
            Some(vec!["a".to_string(), "b".to_string()])
        );
    }

    #[test]
    fn object_rendering_preserves_insertion_order() {
        let v = Json::obj(vec![("z", Json::num(1.0)), ("a", Json::str("x"))]);
        assert_eq!(v.render(), r#"{"z":1,"a":"x"}"#);
    }

    #[test]
    fn u64_round_trips_through_the_wire_encoding() {
        for v in [0, 1, (1_u64 << 53) - 1, 1_u64 << 53, u64::MAX] {
            let encoded = Json::parse(&Json::u64(v).render()).unwrap();
            assert_eq!(encoded.as_u64(), Some(v), "{v}");
        }
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::str("banana").as_u64(), None);
    }
}
