//! Background DCA jobs: launch, observe, cancel.
//!
//! A metrics request costs milliseconds and is served synchronously; a DCA
//! descent over a large cohort costs seconds to minutes and must not occupy
//! a request worker. The [`JobManager`] runs each accepted job on its own
//! thread, wired to the engine through
//! [`fair_core::dca::RunControl`]: the progress hook streams step counts
//! into lock-free counters the status endpoint reads, and the cancellation
//! flag lets `DELETE /jobs/{id}` stop a descent at the next step boundary.
//!
//! A job pins its [`StoreEntry`] via `Arc`, so deregistering a store while a
//! job runs is safe — the cohort lives until the job releases it. An
//! uncancelled job produces the bit-identical trajectory of the
//! corresponding library call ([`fair_core::dca::run_full_dca_sharded`] /
//! [`fair_core::dca::run_core_dca_sharded`] with the same seed and config),
//! because the controlled runners execute the same loop.

use crate::catalog::StoreEntry;
use crate::error::ApiError;
use crate::fleet::{FleetConfig, FleetCoordinator};
use fair_core::dca::{
    run_core_dca_sharded_controlled, run_full_dca_sharded_controlled, step_duration_hook,
    RunControl, TopKDisparity,
};
use fair_core::obs;
use fair_core::obs::{JobProfile, Phase};
use fair_core::ranking::WeightedSumRanker;
use fair_core::{DcaConfig, FairError, ShardSource};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Which DCA variant a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Full DCA: every step evaluates the whole cohort (sharded engine).
    Full,
    /// Core DCA: every step evaluates a per-shard stratified sample.
    Core,
}

impl JobKind {
    /// The wire-format string (`"full"` / `"core"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::Core => "core",
        }
    }

    /// Parse the wire-format string.
    ///
    /// # Errors
    /// `400` for anything but `"full"` or `"core"`.
    pub fn parse(s: &str) -> Result<Self, ApiError> {
        match s {
            "full" => Ok(Self::Full),
            "core" => Ok(Self::Core),
            other => Err(ApiError::bad_request(format!(
                "job kind must be `full` or `core`, got `{other}`"
            ))),
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Accepted, thread not yet past its prologue.
    Queued,
    /// Descent in progress.
    Running,
    /// Finished successfully; the result is available.
    Completed,
    /// The engine returned an error (or the job thread panicked).
    Failed,
    /// Stopped through [`JobManager::cancel`] before completing.
    Cancelled,
}

impl JobPhase {
    /// The wire-format string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Running => "running",
            Self::Completed => "completed",
            Self::Failed => "failed",
            Self::Cancelled => "cancelled",
        }
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Self::Completed | Self::Failed | Self::Cancelled)
    }
}

/// A validated job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Which DCA variant to run.
    pub kind: JobKind,
    /// Selection fraction of the disparity objective.
    pub k: f64,
    /// Ranker feature weights (`None` = uniform `1.0` per feature).
    pub weights: Option<Vec<f64>>,
    /// The descent configuration (seed, sample size, ladder, iterations).
    pub config: DcaConfig,
    /// Fleet worker addresses. `None` runs the descent locally against the
    /// registered store; `Some` drives it through a [`FleetCoordinator`]
    /// over these workers (each must serve the store under the same name),
    /// carrying the job's trace id into every fan-out round.
    pub workers: Option<Vec<SocketAddr>>,
}

/// The successful outcome of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Final (unrounded) bonus values.
    pub bonus: Vec<f64>,
    /// Descent steps executed.
    pub steps: usize,
    /// Objects scored across all steps.
    pub objects_scored: usize,
}

#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    result: Option<JobOutcome>,
    error: Option<String>,
    /// When the submission was accepted.
    submitted: Instant,
    /// When the job thread began the descent (`Running`).
    started: Option<Instant>,
    /// When the job reached a terminal phase.
    finished: Option<Instant>,
}

/// One background DCA run. All accessors take `&self`; the struct is shared
/// via `Arc` between the executing thread, the status endpoint, and the
/// cancellation endpoint.
pub struct Job {
    /// The job id (`job-1`, `job-2`, …).
    pub id: String,
    /// The catalog name of the audited store.
    pub store: String,
    /// The trace id every event and span of this job carries — the
    /// submitting request's `x-fair-trace` value (or a fresh mint), so the
    /// submit request, each descent step, fleet fan-out rounds, and
    /// worker-side handler spans all correlate under one id.
    pub trace: String,
    /// The submitted spec.
    pub spec: JobSpec,
    control: Arc<RunControl>,
    step: Arc<AtomicUsize>,
    total_steps: usize,
    profile: Arc<JobProfile>,
    state: Mutex<JobState>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("store", &self.store)
            .field("phase", &self.phase())
            .field("step", &self.step())
            .finish()
    }
}

impl Job {
    /// Current lifecycle phase.
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn phase(&self) -> JobPhase {
        self.state.lock().expect("job state poisoned").phase
    }

    /// Steps completed so far (updated lock-free by the progress hook).
    #[must_use]
    pub fn step(&self) -> usize {
        self.step.load(Ordering::Relaxed)
    }

    /// Total steps the descent will execute.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        self.total_steps
    }

    /// The job's phase profile: where this job's time went, accumulated by
    /// the [`PhaseScope`](fair_core::obs::PhaseScope) guards at the layer
    /// boundaries while the descent runs (installed on the job thread and
    /// carried into engine pool workers and fleet dispatch threads).
    #[must_use]
    pub fn profile(&self) -> &Arc<JobProfile> {
        &self.profile
    }

    /// The outcome, once [`JobPhase::Completed`].
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn result(&self) -> Option<JobOutcome> {
        self.state
            .lock()
            .expect("job state poisoned")
            .result
            .clone()
    }

    /// The failure message, once [`JobPhase::Failed`].
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn error(&self) -> Option<String> {
        self.state.lock().expect("job state poisoned").error.clone()
    }

    /// Phase, result, and error read under **one** lock acquisition — the
    /// consistent view the status endpoint renders. Reading them through
    /// the individual accessors can interleave with the job finishing and
    /// report `completed` with a `null` result.
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> (JobPhase, Option<JobOutcome>, Option<String>) {
        let st = self.state.lock().expect("job state poisoned");
        (st.phase, st.result.clone(), st.error.clone())
    }

    /// `(queued_ms, running_ms)`: wall-clock milliseconds the job spent
    /// waiting for its thread's prologue and descending, both still ticking
    /// while the respective phase is current. Wall-clock lives here at the
    /// serve layer only — the descent itself never reads a clock.
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn timings(&self) -> (u64, u64) {
        let st = self.state.lock().expect("job state poisoned");
        let now = Instant::now();
        let ms = |d: std::time::Duration| u64::try_from(d.as_millis()).unwrap_or(u64::MAX);
        let queued_until = st.started.or(st.finished).unwrap_or(now);
        let queued = ms(queued_until.duration_since(st.submitted));
        let running = st
            .started
            .map_or(0, |s| ms(st.finished.unwrap_or(now).duration_since(s)));
        (queued, running)
    }
}

/// How many *terminal* job records the manager retains by default before
/// evicting the oldest — bounds the memory of a long-lived service that
/// serves jobs indefinitely. Running/queued jobs are never evicted.
pub const DEFAULT_JOB_HISTORY: usize = 512;

/// How many jobs may run *concurrently* by default. Every running job owns
/// an OS thread driving a descent that itself fans out onto the engine's
/// worker pool; without a ceiling a submission loop could pile up unbounded
/// descents until the box starves. Submissions beyond the cap get a `429`.
pub const DEFAULT_MAX_RUNNING_JOBS: usize = 16;

/// Best-effort text of a caught panic payload (shared by the job executor
/// and the request workers).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("panicked")
}

/// Launches, tracks, and reaps background jobs. Every submission first
/// joins the threads of already-finished jobs and evicts the oldest
/// terminal records beyond the history limit, so neither thread handles nor
/// job records grow without bound in a run-forever deployment.
pub struct JobManager {
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    history_limit: usize,
    running_limit: usize,
}

impl Default for JobManager {
    fn default() -> Self {
        Self::with_limits(DEFAULT_JOB_HISTORY, DEFAULT_MAX_RUNNING_JOBS)
    }
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("jobs", &self.len())
            .finish()
    }
}

impl JobManager {
    /// An empty manager with the default limits ([`DEFAULT_JOB_HISTORY`]
    /// retained terminal records, [`DEFAULT_MAX_RUNNING_JOBS`] concurrent
    /// runs).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty manager retaining up to `history_limit` terminal job
    /// records and admitting at most `running_limit` concurrently running
    /// jobs (running jobs are never evicted; `running_limit` is clamped to
    /// at least 1).
    #[must_use]
    pub fn with_limits(history_limit: usize, running_limit: usize) -> Self {
        Self {
            jobs: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            history_limit,
            running_limit: running_limit.max(1),
        }
    }

    /// Join the threads of finished jobs and evict the oldest terminal job
    /// records beyond the history limit. Called on every submission; cheap
    /// when there is nothing to reap.
    fn reap(&self) {
        let finished: Vec<JoinHandle<()>> = {
            let mut handles = self.handles.lock().expect("handle list poisoned");
            let mut keep = Vec::with_capacity(handles.len());
            let mut done = Vec::new();
            for handle in handles.drain(..) {
                if handle.is_finished() {
                    done.push(handle);
                } else {
                    keep.push(handle);
                }
            }
            *handles = keep;
            done
        };
        for handle in finished {
            let _ = handle.join();
        }

        let mut jobs = self.jobs.lock().expect("job map poisoned");
        if jobs.len() > self.history_limit {
            // Oldest first: ids are `job-N`, so order by the numeric suffix
            // (the map's string order would put `job-10` before `job-2`).
            let mut terminal: Vec<(u64, String)> = jobs
                .iter()
                .filter(|(_, job)| job.phase().is_terminal())
                .map(|(id, _)| {
                    let n = id
                        .strip_prefix("job-")
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(u64::MAX);
                    (n, id.clone())
                })
                .collect();
            terminal.sort();
            let excess = jobs.len() - self.history_limit;
            for (_, id) in terminal.into_iter().take(excess) {
                jobs.remove(&id);
            }
        }
    }

    /// Number of jobs ever submitted (terminal ones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.lock().expect("job map poisoned").len()
    }

    /// Whether no job has been submitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validate `spec` against the store and launch the descent on its own
    /// thread. Returns the job immediately (phase `Queued` until the thread
    /// starts running). `trace` is the submitting request's trace id;
    /// `None` mints a fresh one — either way every event the job emits
    /// carries it.
    ///
    /// # Errors
    /// `400` for invalid selection fractions, weight dimensionality, or DCA
    /// configuration; `409` while the manager is shutting down.
    pub fn submit(
        &self,
        entry: Arc<StoreEntry>,
        spec: JobSpec,
        trace: Option<String>,
    ) -> Result<Arc<Job>, ApiError> {
        if self.draining.load(Ordering::Relaxed) {
            return Err(ApiError::conflict("the service is shutting down"));
        }
        self.reap();
        if !(spec.k > 0.0 && spec.k <= 1.0) {
            return Err(ApiError::bad_request(format!(
                "selection fraction k={} must lie in (0, 1]",
                spec.k
            )));
        }
        let num_features = entry.store.schema().num_features();
        if let Some(w) = &spec.weights {
            if w.len() != num_features {
                return Err(ApiError::bad_request(format!(
                    "{} ranker weights for a {}-feature schema",
                    w.len(),
                    num_features
                )));
            }
        }
        let dims = entry.store.schema().num_fairness();
        spec.config
            .validate(dims)
            .map_err(|e| ApiError::bad_request(format!("invalid DCA config: {e}")))?;
        if entry.store.is_empty() {
            return Err(ApiError::unprocessable(format!(
                "store `{}` is empty",
                entry.name
            )));
        }

        let id = format!("job-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let trace = trace.unwrap_or_else(obs::next_trace_id);
        let profile = JobProfile::new();
        let step = Arc::new(AtomicUsize::new(0));
        let hook_step = step.clone();
        // One progress hook feeds every consumer: the lock-free step counter
        // the status endpoint reads, the per-step duration histogram, the
        // profile's step-boundary snapshot, and the per-step trace event
        // (timing lives in the hook, so the descent loop — and therefore the
        // trajectory — is identical to the uninstrumented library call).
        let step_timer = step_duration_hook(obs::histogram(
            "fair_serve_job_step_duration_us",
            &[("kind", spec.kind.as_str())],
        ));
        let hook_profile = profile.clone();
        let hook_trace = trace.clone();
        let hook_id = id.clone();
        let control = Arc::new(RunControl::with_progress(move |p| {
            hook_step.store(p.step, Ordering::Relaxed);
            step_timer(p);
            hook_profile.end_step(p.step);
            obs::Event::new("job.step")
                .trace(&hook_trace)
                .field("id", &hook_id)
                .field("step", p.step)
                .emit();
        }));
        let job = Arc::new(Job {
            id: id.clone(),
            store: entry.name.clone(),
            trace,
            total_steps: spec.config.core_steps(),
            spec,
            control,
            step,
            profile,
            state: Mutex::new(JobState {
                phase: JobPhase::Queued,
                result: None,
                error: None,
                submitted: Instant::now(),
                started: None,
                finished: None,
            }),
        });
        obs::counter(
            "fair_serve_jobs_submitted_total",
            &[("kind", job.spec.kind.as_str())],
        )
        .inc();
        obs::Event::new("job.submit")
            .trace(&job.trace)
            .field("id", &job.id)
            .field("store", &job.store)
            .field("kind", job.spec.kind.as_str())
            .field("total_steps", job.total_steps)
            .emit();

        // Registration + spawn + handle tracking happen under the handle
        // lock, with the draining flag re-checked inside it: `shutdown` sets
        // the flag *before* taking this lock, so a submission either lands
        // entirely before the shutdown's take (its thread is then cancelled
        // and joined like any other) or observes the flag and is rejected —
        // a job thread can never outlive `shutdown`.
        let mut handles = self.handles.lock().expect("handle list poisoned");
        if self.draining.load(Ordering::Relaxed) {
            return Err(ApiError::conflict("the service is shutting down"));
        }
        {
            let mut jobs = self.jobs.lock().expect("job map poisoned");
            let running = jobs.values().filter(|j| !j.phase().is_terminal()).count();
            if running >= self.running_limit {
                return Err(ApiError::too_many_jobs(format!(
                    "{running} jobs already running (limit {}); retry after one finishes \
                     or cancel one",
                    self.running_limit
                )));
            }
            jobs.insert(id, job.clone());
        }

        let worker_job = job.clone();
        let handle = match std::thread::Builder::new()
            .name(format!("fair-serve-{}", job.id))
            .spawn(move || execute(&worker_job, &entry))
        {
            Ok(handle) => handle,
            Err(e) => {
                // Deregister: an unspawned job would otherwise sit in the
                // map as `Queued` forever.
                self.jobs.lock().expect("job map poisoned").remove(&job.id);
                return Err(ApiError {
                    status: 500,
                    message: format!("cannot spawn job thread: {e}"),
                });
            }
        };
        handles.push(handle);
        Ok(job)
    }

    /// Look a job up by id.
    ///
    /// # Errors
    /// `404` for unknown ids.
    pub fn get(&self, id: &str) -> Result<Arc<Job>, ApiError> {
        self.jobs
            .lock()
            .expect("job map poisoned")
            .get(id)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no job `{id}`")))
    }

    /// All jobs, id-ordered.
    #[must_use]
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.jobs
            .lock()
            .expect("job map poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Request cooperative cancellation: the descent stops at its next step
    /// boundary. Idempotent; cancelling a terminal job is a no-op.
    ///
    /// # Errors
    /// `404` for unknown ids.
    pub fn cancel(&self, id: &str) -> Result<Arc<Job>, ApiError> {
        let job = self.get(id)?;
        job.control.cancel();
        // Tagged with the *job's* trace id so the cancellation correlates
        // with the descent it stops, whichever connection requested it.
        obs::Event::new("job.cancel")
            .trace(&job.trace)
            .field("id", &job.id)
            .field("step", job.step())
            .emit();
        Ok(job)
    }

    /// Cancel every job and join every job thread. After this returns no job
    /// thread is alive; further submissions are rejected with `409`.
    pub fn shutdown(&self) {
        // Flag first, take the handle list second: a racing `submit` either
        // finished its critical section before our take (its handle is in
        // the list, its job in the map — cancelled and joined below) or
        // re-checks the flag under the lock and bails with 409.
        self.draining.store(true, Ordering::Relaxed);
        let handles = std::mem::take(&mut *self.handles.lock().expect("handle list poisoned"));
        for job in self.list() {
            job.control.cancel();
        }
        for handle in handles {
            // A job thread that panicked already recorded Failed via the
            // catch_unwind in `execute`; a join error here is unreachable,
            // but don't let shutdown panic regardless.
            let _ = handle.join();
        }
    }
}

/// The job thread body: run the configured descent under the job's control,
/// then record the terminal state. Panics inside the engine (e.g. an
/// infallible page-in hitting at-rest corruption) are caught and surfaced as
/// `Failed`.
fn execute(job: &Arc<Job>, entry: &Arc<StoreEntry>) {
    {
        let mut st = job.state.lock().expect("job state poisoned");
        if job.control.is_cancelled() {
            st.phase = JobPhase::Cancelled;
            st.finished = Some(Instant::now());
            record_terminal(job, JobPhase::Cancelled, None);
            return;
        }
        st.phase = JobPhase::Running;
        st.started = Some(Instant::now());
    }
    obs::Event::new("job.state")
        .trace(&job.trace)
        .field("id", &job.id)
        .field("state", JobPhase::Running.as_str())
        .emit();
    // Every PhaseScope the descent opens — on this thread, in engine pool
    // workers, in fleet dispatch threads — lands in this job's profile.
    // Installing a profile changes attribution only, never the trajectory.
    let _profile_guard = fair_core::obs::profile::install(job.profile.clone());
    let weights = job
        .spec
        .weights
        .clone()
        .unwrap_or_else(|| vec![1.0; entry.store.schema().num_features()]);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(addrs) = &job.spec.workers {
            return execute_fleet(job, addrs);
        }
        let ranker = WeightedSumRanker::new(weights)?;
        let objective = TopKDisparity::new(job.spec.k);
        match job.spec.kind {
            JobKind::Full => run_full_dca_sharded_controlled(
                &entry.store,
                &ranker,
                &objective,
                &job.spec.config,
                None,
                false,
                &job.control,
            )
            .map(|o| JobOutcome {
                bonus: o.bonus,
                steps: o.steps,
                objects_scored: o.objects_scored,
            }),
            JobKind::Core => run_core_dca_sharded_controlled(
                &entry.store,
                &ranker,
                &objective,
                &job.spec.config,
                None,
                false,
                &job.control,
            )
            .map(|o| JobOutcome {
                bonus: o.bonus,
                steps: o.steps,
                objects_scored: o.objects_scored,
            }),
        }
    }));

    let phase = {
        let mut st = job.state.lock().expect("job state poisoned");
        match outcome {
            Ok(Ok(result)) => {
                st.phase = JobPhase::Completed;
                st.result = Some(result);
            }
            Ok(Err(FairError::Cancelled)) => {
                st.phase = JobPhase::Cancelled;
            }
            Ok(Err(e)) => {
                st.phase = JobPhase::Failed;
                st.error = Some(e.to_string());
            }
            Err(panic) => {
                st.phase = JobPhase::Failed;
                st.error = Some(panic_message(&*panic).to_string());
            }
        }
        st.finished = Some(Instant::now());
        st.phase
    };
    record_terminal(job, phase, job.error().as_deref());
}

/// Run the job's descent through a [`FleetCoordinator`] over `addrs`,
/// stamped with the job's trace id — so every fan-out round and worker-side
/// handler span of the whole descent correlates with the submitting
/// request. Wire failures surface as engine errors; a descent the control
/// flag stopped stays a cancellation rather than a failure.
fn execute_fleet(job: &Arc<Job>, addrs: &[SocketAddr]) -> Result<JobOutcome, FairError> {
    let wire = |e: crate::error::ServeError| {
        if job.control.is_cancelled() {
            FairError::Cancelled
        } else {
            FairError::InvalidConfig {
                reason: format!("fleet descent failed: {e}"),
            }
        }
    };
    let fleet = FleetCoordinator::connect(&job.store, addrs, FleetConfig::default())
        .map_err(wire)?
        .with_trace(&job.trace);
    let weights = job.spec.weights.as_deref();
    match job.spec.kind {
        JobKind::Full => fleet
            .run_full_dca_controlled(
                job.spec.k,
                weights,
                &job.spec.config,
                None,
                false,
                &job.control,
            )
            .map(|o| JobOutcome {
                bonus: o.bonus,
                steps: o.steps,
                objects_scored: o.objects_scored,
            })
            .map_err(wire),
        JobKind::Core => fleet
            .run_core_dca_controlled(
                job.spec.k,
                weights,
                &job.spec.config,
                None,
                false,
                &job.control,
            )
            .map(|o| JobOutcome {
                bonus: o.bonus,
                steps: o.steps,
                objects_scored: o.objects_scored,
            })
            .map_err(wire),
    }
}

/// Bump the terminal-state counter, flush the job's phase totals into the
/// `fair_profile_phase_ms` histogram family, and emit the lifecycle event
/// for a job reaching `phase`.
fn record_terminal(job: &Arc<Job>, phase: JobPhase, error: Option<&str>) {
    obs::counter(
        "fair_serve_jobs_finished_total",
        &[("state", phase.as_str())],
    )
    .inc();
    // One observation per phase per job: "how many ms did jobs spend in
    // phase X" as a fleet-wide distribution, complementing the per-job
    // exact breakdown at `GET /jobs/{id}/profile`.
    for (phase, stats) in Phase::ALL.iter().zip(job.profile.stats()) {
        if stats.count > 0 {
            obs::histogram("fair_profile_phase_ms", &[("phase", phase.name())])
                .record(stats.total_us / 1_000);
        }
    }
    let mut event = obs::Event::new("job.state")
        .trace(&job.trace)
        .field("id", &job.id)
        .field("state", phase.as_str())
        .field("steps", job.step());
    if let Some(error) = error {
        event = event.field("error", error);
    }
    event.emit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use fair_core::dca::run_full_dca_sharded;
    use fair_core::{DataObject, Schema, ShardedDataset};

    fn biased_cohort(n: u64) -> ShardedDataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                let member = i % 3 == 0;
                let score = f64::from(u32::try_from((i * 37) % 512).unwrap()) / 4.0
                    - if member { 20.0 } else { 0.0 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        ShardedDataset::from_objects(schema, objects, 64).unwrap()
    }

    fn quick_config() -> DcaConfig {
        DcaConfig {
            sample_size: 60,
            learning_rates: vec![8.0, 1.0],
            iterations_per_rate: 10,
            refinement_iterations: 0,
            seed: 5,
            ..DcaConfig::default()
        }
    }

    fn wait_terminal(job: &Arc<Job>) -> JobPhase {
        for _ in 0..2000 {
            let phase = job.phase();
            if phase.is_terminal() {
                return phase;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("job {} never reached a terminal state", job.id);
    }

    #[test]
    fn full_job_completes_with_the_library_trajectory() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(600))
            .unwrap();
        let manager = JobManager::new();
        let spec = JobSpec {
            kind: JobKind::Full,
            k: 0.2,
            weights: None,
            config: quick_config(),
            workers: None,
        };
        let job = manager.submit(entry.clone(), spec, None).unwrap();
        assert_eq!(job.id, "job-1");
        assert_eq!(wait_terminal(&job), JobPhase::Completed);
        assert_eq!(job.step(), job.total_steps());
        let result = job.result().unwrap();

        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let reference = run_full_dca_sharded(
            &entry.store,
            &ranker,
            &TopKDisparity::new(0.2),
            &quick_config(),
            None,
            false,
        )
        .unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&result.bonus),
            bits(&reference.bonus),
            "job == library, bit for bit"
        );
        assert_eq!(result.steps, reference.steps);
        assert_eq!(result.objects_scored, reference.objects_scored);
        manager.shutdown();
    }

    #[test]
    fn core_job_is_seed_reproducible() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(900))
            .unwrap();
        let manager = JobManager::new();
        let spec = JobSpec {
            kind: JobKind::Core,
            k: 0.2,
            weights: Some(vec![1.0]),
            config: quick_config(),
            workers: None,
        };
        let a = manager.submit(entry.clone(), spec.clone(), None).unwrap();
        let b = manager.submit(entry, spec, None).unwrap();
        assert_eq!(wait_terminal(&a), JobPhase::Completed);
        assert_eq!(wait_terminal(&b), JobPhase::Completed);
        assert_eq!(a.result().unwrap().bonus, b.result().unwrap().bonus);
        manager.shutdown();
    }

    #[test]
    fn timings_freeze_once_terminal() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(300))
            .unwrap();
        let manager = JobManager::new();
        let job = manager
            .submit(
                entry,
                JobSpec {
                    kind: JobKind::Core,
                    k: 0.2,
                    weights: None,
                    config: quick_config(),
                    workers: None,
                },
                None,
            )
            .unwrap();
        assert_eq!(wait_terminal(&job), JobPhase::Completed);
        let first = job.timings();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(
            job.timings(),
            first,
            "terminal jobs stop accumulating wall-clock"
        );
        manager.shutdown();
    }

    #[test]
    fn submissions_are_validated() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(100))
            .unwrap();
        let manager = JobManager::new();
        let base = JobSpec {
            kind: JobKind::Full,
            k: 0.2,
            weights: None,
            config: quick_config(),
            workers: None,
        };
        let mut bad_k = base.clone();
        bad_k.k = 1.5;
        assert_eq!(
            manager
                .submit(entry.clone(), bad_k, None)
                .unwrap_err()
                .status,
            400
        );
        let mut bad_w = base.clone();
        bad_w.weights = Some(vec![1.0, 2.0]);
        assert_eq!(
            manager
                .submit(entry.clone(), bad_w, None)
                .unwrap_err()
                .status,
            400
        );
        let mut bad_cfg = base.clone();
        bad_cfg.config.learning_rates = vec![];
        assert_eq!(
            manager
                .submit(entry.clone(), bad_cfg, None)
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(manager.get("job-99").unwrap_err().status, 404);
        assert_eq!(manager.cancel("job-99").unwrap_err().status, 404);
        assert!(manager.is_empty());
        manager.shutdown();
        assert_eq!(manager.submit(entry, base, None).unwrap_err().status, 409);
    }

    #[test]
    fn terminal_jobs_are_reaped_beyond_the_history_limit() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(200))
            .unwrap();
        let manager = JobManager::with_limits(2, DEFAULT_MAX_RUNNING_JOBS);
        let quick = JobSpec {
            kind: JobKind::Core,
            k: 0.2,
            weights: None,
            config: DcaConfig {
                sample_size: 30,
                learning_rates: vec![1.0],
                iterations_per_rate: 1,
                refinement_iterations: 0,
                seed: 1,
                ..DcaConfig::default()
            },
            workers: None,
        };
        for _ in 0..4 {
            let job = manager.submit(entry.clone(), quick.clone(), None).unwrap();
            assert_eq!(wait_terminal(&job), JobPhase::Completed);
        }
        // The next submission reaps: at most 2 retained terminal records
        // plus the new job survive. The newest records win.
        let job5 = manager.submit(entry, quick, None).unwrap();
        let ids: Vec<String> = manager.list().iter().map(|j| j.id.clone()).collect();
        assert!(ids.len() <= 3, "{ids:?}");
        assert!(ids.contains(&job5.id));
        assert!(
            !ids.contains(&"job-1".to_string()),
            "oldest evicted: {ids:?}"
        );
        // Evicted ids are gone from lookup too.
        assert_eq!(manager.get("job-1").unwrap_err().status, 404);
        manager.shutdown();
    }

    #[test]
    fn running_job_ceiling_returns_429_until_a_slot_frees() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(2000))
            .unwrap();
        let manager = JobManager::with_limits(DEFAULT_JOB_HISTORY, 1);
        let long = JobSpec {
            kind: JobKind::Full,
            k: 0.2,
            weights: None,
            config: DcaConfig {
                sample_size: 60,
                learning_rates: vec![4.0, 1.0],
                iterations_per_rate: 5_000,
                refinement_iterations: 0,
                seed: 5,
                ..DcaConfig::default()
            },
            workers: None,
        };
        let first = manager.submit(entry.clone(), long.clone(), None).unwrap();
        let rejected = manager
            .submit(entry.clone(), long.clone(), None)
            .unwrap_err();
        assert_eq!(rejected.status, 429, "{}", rejected.message);
        manager.cancel(&first.id).unwrap();
        assert!(wait_terminal(&first).is_terminal());
        // The slot is free again.
        let second = manager.submit(entry, long, None).unwrap();
        manager.cancel(&second.id).unwrap();
        assert!(wait_terminal(&second).is_terminal());
        manager.shutdown();
    }

    #[test]
    fn jobs_are_cancellable_mid_run_and_shutdown_reaps_everything() {
        let catalog = Catalog::new();
        let entry = catalog
            .register_memory("cohort", biased_cohort(2000))
            .unwrap();
        let manager = JobManager::new();
        // A long job: enough steps that cancellation lands mid-run.
        let spec = JobSpec {
            kind: JobKind::Full,
            k: 0.2,
            weights: None,
            config: DcaConfig {
                sample_size: 60,
                learning_rates: vec![4.0, 2.0, 1.0, 0.5],
                iterations_per_rate: 500,
                refinement_iterations: 0,
                seed: 5,
                ..DcaConfig::default()
            },
            workers: None,
        };
        let job = manager.submit(entry, spec, None).unwrap();
        // Let it make some progress, then cancel.
        for _ in 0..2000 {
            if job.step() > 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(job.step() > 2, "job never started stepping");
        manager.cancel(&job.id).unwrap();
        let phase = wait_terminal(&job);
        assert_eq!(phase, JobPhase::Cancelled);
        assert!(
            job.step() < job.total_steps(),
            "cancelled well before the end"
        );
        assert!(job.result().is_none());
        manager.shutdown();
        assert_eq!(manager.list().len(), 1);
    }
}
