//! The `fair-serve` binary: stand up the audit service from the shell.
//!
//! ```text
//! fair-serve [--addr 127.0.0.1:8377] [--workers N] [--register name=path.fss]...
//! ```
//!
//! Binds the address (port `0` picks an ephemeral port, printed on stdout so
//! scripts can discover it), registers any `--register`ed stores, and serves
//! until the process is killed. `FAIR_THREADS` caps both the request workers
//! and the evaluation engine's per-request parallelism; `FAIR_CACHE_BYTES`
//! bounds each disk store's resident shard cache.

use fair_core::{obs, Kernel};
use fair_serve::{serve, AuditService, DRAIN_DEADLINE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:8377".to_string();
    let mut workers = fair_core::max_workers();
    let mut registrations: Vec<(String, String)> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--addr needs a value"));
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| usage("--workers needs a positive integer"));
            }
            "--register" => {
                i += 1;
                let spec = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--register needs name=path"));
                match spec.split_once('=') {
                    Some((name, path)) => registrations.push((name.to_string(), path.to_string())),
                    None => usage("--register needs name=path"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "fair-serve — concurrent fairness-audit service\n\n\
                     USAGE: fair-serve [--addr HOST:PORT] [--workers N] [--register name=path.fss]...\n\n\
                     Endpoints: GET /health | GET /stores | POST /stores | GET /stores/{{name}}/schema|stats\n\
                     | POST /stores/{{name}}/metrics | POST /jobs | GET /jobs/{{id}} | DELETE /jobs/{{id}}\n\n\
                     Knobs: FAIR_THREADS (worker + engine pool cap), FAIR_CACHE_BYTES (shard cache budget),\n\
                     FAIR_SHARD_SIZE (layout of generated cohorts), FAIR_LOG=off|text|json (span/event log)."
                );
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    let service = AuditService::new();
    for (name, path) in &registrations {
        match service.catalog.register_disk(name, path) {
            // `catalog.register` already emitted the structured event; this
            // path only has to fail loudly.
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: cannot register `{name}`: {}", e.message);
                std::process::exit(1);
            }
        }
    }

    let server = match serve(service, addr.as_str(), workers) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // One structured line with every resolved knob, so a log collector can
    // reconstruct the process configuration without scraping the CLI.
    let drain_ms = std::env::var("FAIR_DRAIN_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DRAIN_DEADLINE.as_millis() as u64);
    let kernel = match fair_core::kernel::active() {
        Kernel::Chunked => "chunked",
        Kernel::Scalar => "scalar",
    };
    obs::Event::new("serve.start")
        .field("addr", server.addr())
        .field("workers", workers)
        .field("stores", registrations.len())
        .field("drain_ms", drain_ms)
        .field("cache_bytes", fair_store::default_cache_bytes())
        .field("prefetch", fair_store::default_prefetch())
        .field("kernel", kernel)
        .emit();
    // Scripted callers parse this line to find the ephemeral port.
    println!(
        "fair-serve listening on {} ({workers} workers)",
        server.addr()
    );
    server.join();
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}\nrun `fair-serve --help` for usage");
    std::process::exit(2);
}
