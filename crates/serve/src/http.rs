//! A deliberately small HTTP/1.1 implementation over [`std::net::TcpStream`].
//!
//! The service speaks exactly the subset the wire protocol needs: one
//! request per connection (`Connection: close` on every response), JSON
//! bodies sized by `Content-Length`, and a fixed status vocabulary. Hard
//! limits on the request line, header block, and body keep a hostile peer
//! from ballooning memory; every violation is a structured
//! [`ServeError::Protocol`], never a panic.

use crate::error::{Result, ServeError};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;

/// Ceiling on the request line + header block, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Ceiling on a request or response body, bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// The request header carrying the caller's trace id across processes, so
/// one id spans a fleet coordinator request and the worker-side handler
/// span it lands on.
pub const TRACE_HEADER: &str = "x-fair-trace";

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// The raw body (empty when the request carries none).
    pub body: Vec<u8>,
    /// The [`TRACE_HEADER`] value, when the caller sent one; the server
    /// mints a fresh id at the accept path otherwise.
    pub trace: Option<String>,
}

impl Request {
    /// A request with no trace header (tests, in-process dispatch).
    #[must_use]
    pub fn new(method: impl Into<String>, path: impl Into<String>, body: Vec<u8>) -> Self {
        Self {
            method: method.into(),
            path: path.into(),
            body,
            trace: None,
        }
    }

    /// The path split into non-empty `/`-separated segments.
    #[must_use]
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Read and parse one request from the stream.
///
/// # Errors
/// Returns [`ServeError::Protocol`] for malformed or oversized requests and
/// [`ServeError::Io`] for socket failures.
pub fn read_request(stream: &TcpStream) -> Result<Request> {
    let mut reader = BufReader::new(stream);
    let request_line = read_line(&mut reader, MAX_HEAD_BYTES)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("request line without a target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("request line without a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Protocol(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut content_length = 0_usize;
    let mut trace: Option<String> = None;
    let mut head_bytes = request_line.len();
    loop {
        let line = read_line(&mut reader, MAX_HEAD_BYTES)?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ServeError::Protocol("header block too large".into()));
        }
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    ServeError::Protocol(format!("invalid Content-Length `{}`", value.trim()))
                })?;
            } else if name.eq_ignore_ascii_case(TRACE_HEADER) {
                let id = value.trim();
                // Bound what a hostile peer can push into log lines: trace
                // ids are short opaque tokens, not a transport for payloads.
                if !id.is_empty() && id.len() <= 64 {
                    trace = Some(id.to_string());
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ServeError::Protocol(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0_u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        body,
        trace,
    })
}

/// Render the response head (status line + headers + blank line) for a JSON
/// body of `content_length` bytes. Exposed so the fault-injection layer can
/// write a truthful head and then betray it with a truncated body.
#[must_use]
pub fn render_head(status: u16, content_length: usize) -> String {
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {content_length}\r\nConnection: close\r\n\r\n",
        reason(status),
    )
}

/// Write a JSON response with the given status and close-delimited framing.
///
/// # Errors
/// Returns [`ServeError::Io`] on socket failure.
pub fn write_response(stream: &TcpStream, status: u16, body: &str) -> Result<()> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(render_head(status, body.len()).as_bytes());
    out.extend_from_slice(body.as_bytes());
    let mut stream = stream;
    stream.write_all(&out)?;
    stream.flush()?;
    Ok(())
}

/// Write a plain-text response (the Prometheus `/metrics` exposition — the
/// one endpoint whose body is not JSON).
///
/// # Errors
/// Returns [`ServeError::Io`] on socket failure.
pub fn write_text_response(stream: &TcpStream, status: u16, body: &str) -> Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    let mut stream = stream;
    stream.write_all(&out)?;
    stream.flush()?;
    Ok(())
}

/// Read one HTTP response (status + body) from the stream.
///
/// # Errors
/// Returns [`ServeError::Protocol`] for malformed or oversized responses and
/// [`ServeError::Io`] for socket failures.
pub fn read_response(stream: &TcpStream) -> Result<(u16, Vec<u8>)> {
    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader, MAX_HEAD_BYTES)?;
    let mut parts = status_line.split_whitespace();
    let version = parts
        .next()
        .ok_or_else(|| ServeError::Protocol("empty status line".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Protocol(format!(
            "unsupported protocol version `{version}`"
        )));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ServeError::Protocol("status line without a numeric code".into()))?;

    let mut content_length: Option<usize> = None;
    let mut head_bytes = status_line.len();
    loop {
        let line = read_line(&mut reader, MAX_HEAD_BYTES)?;
        // Same cumulative cap as the request side: a peer streaming header
        // lines forever must be a protocol error, not an unbounded loop.
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ServeError::Protocol("header block too large".into()));
        }
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse::<usize>().map_err(|_| {
                    ServeError::Protocol(format!("invalid Content-Length `{}`", value.trim()))
                })?);
            }
        }
    }
    let body = match content_length {
        Some(len) if len > MAX_BODY_BYTES => {
            return Err(ServeError::Protocol("response body too large".into()))
        }
        Some(len) => {
            let mut body = vec![0_u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            // Close-delimited body (the server always sends Content-Length;
            // tolerate its absence for robustness).
            let mut body = Vec::new();
            reader
                .take(MAX_BODY_BYTES as u64 + 1)
                .read_to_end(&mut body)?;
            if body.len() > MAX_BODY_BYTES {
                return Err(ServeError::Protocol("response body too large".into()));
            }
            body
        }
    };
    Ok((status, body))
}

/// Read one CRLF (or bare-LF) terminated line, without the terminator.
fn read_line(reader: &mut BufReader<&TcpStream>, limit: usize) -> Result<String> {
    let mut buf = Vec::new();
    let mut byte = [0_u8; 1];
    loop {
        let n = reader.read(&mut byte)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(ServeError::Protocol("connection closed mid-message".into()));
            }
            break;
        }
        if byte[0] == b'\n' {
            break;
        }
        buf.push(byte[0]);
        if buf.len() > limit {
            return Err(ServeError::Protocol("line too long".into()));
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map_err(|_| ServeError::Protocol("non-UTF8 header line".into()))
}

/// The reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Run `client` against a one-shot server closure on an ephemeral port.
    fn with_pair(server: impl FnOnce(TcpStream) + Send + 'static, client: impl FnOnce(TcpStream)) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            server(conn);
        });
        let conn = TcpStream::connect(addr).unwrap();
        client(conn);
        handle.join().unwrap();
    }

    #[test]
    fn request_round_trips_with_body() {
        with_pair(
            |conn| {
                let req = read_request(&conn).unwrap();
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/stores/x/metrics");
                assert_eq!(req.segments(), vec!["stores", "x", "metrics"]);
                assert_eq!(req.body, br#"{"k":0.1}"#);
                assert_eq!(req.trace.as_deref(), Some("abc123def456"));
                write_response(&conn, 200, r#"{"ok":true}"#).unwrap();
            },
            |conn| {
                let body = br#"{"k":0.1}"#;
                let head = format!(
                    "POST /stores/x/metrics?ignored=1 HTTP/1.1\r\nHost: t\r\nX-Fair-Trace: abc123def456\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                let mut w = &conn;
                w.write_all(head.as_bytes()).unwrap();
                w.write_all(body).unwrap();
                let (status, body) = read_response(&conn).unwrap();
                assert_eq!(status, 200);
                assert_eq!(body, br#"{"ok":true}"#);
            },
        );
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "NOT-HTTP\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SMTP/1.0\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            let owned = bad.to_string();
            with_pair(
                move |conn| {
                    let err = read_request(&conn).unwrap_err();
                    assert!(matches!(err, ServeError::Protocol(_)), "{owned:?}: {err}");
                },
                |conn| {
                    let mut w = &conn;
                    w.write_all(bad.as_bytes()).unwrap();
                    drop(conn);
                },
            );
        }
    }

    #[test]
    fn oversized_content_length_is_rejected_before_allocation() {
        with_pair(
            |conn| {
                let err = read_request(&conn).unwrap_err();
                assert!(err.to_string().contains("limit"), "{err}");
            },
            |conn| {
                let mut w = &conn;
                w.write_all(b"POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n")
                    .unwrap();
                drop(conn);
            },
        );
    }

    #[test]
    fn closed_connection_mid_message_is_a_protocol_error() {
        with_pair(
            |conn| {
                let err = read_request(&conn).unwrap_err();
                assert!(matches!(err, ServeError::Protocol(_) | ServeError::Io(_)));
            },
            |conn| {
                let mut w = &conn;
                w.write_all(b"GET /st").unwrap();
                drop(conn);
            },
        );
    }

    #[test]
    fn endless_response_headers_are_a_protocol_error_not_a_spin() {
        with_pair(
            |conn| {
                let mut w = &conn;
                w.write_all(b"HTTP/1.1 200 OK\r\n").unwrap();
                // Stream header lines past the cumulative cap; the client
                // must bail with a protocol error instead of looping.
                let line = format!("X-Pad: {}\r\n", "a".repeat(1024));
                for _ in 0..(MAX_HEAD_BYTES / line.len() + 4) {
                    if w.write_all(line.as_bytes()).is_err() {
                        break; // client already hung up
                    }
                }
            },
            |conn| {
                let err = read_response(&conn).unwrap_err();
                assert!(err.to_string().contains("header block"), "{err}");
            },
        );
    }

    #[test]
    fn response_without_content_length_reads_to_close() {
        with_pair(
            |conn| {
                let mut w = &conn;
                w.write_all(b"HTTP/1.1 200 OK\r\n\r\n{\"ok\":1}").unwrap();
                drop(conn);
            },
            |conn| {
                let (status, body) = read_response(&conn).unwrap();
                assert_eq!(status, 200);
                assert_eq!(body, b"{\"ok\":1}");
            },
        );
    }
}
