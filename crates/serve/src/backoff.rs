//! Jittered exponential backoff, shared by the fleet coordinator's retry
//! loops, [`crate::client::Client`] connect retries, and job polling.
//!
//! The ideal delay doubles on every failure up to a cap; the actual delay is
//! drawn uniformly from `[ideal/2, ideal)` ("equal jitter"), so a fleet of
//! clients that failed together does not retry in lockstep and hammer the
//! recovering server in synchronized waves. The jitter PRNG is a small
//! splitmix-style generator seeded off a process-wide counter — deterministic
//! enough to test, decorrelated across instances, and free of any wall-clock
//! dependence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Seed source: every backoff instance draws a distinct stream.
static SEQ: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);

/// One splitmix64 step — the standard 64-bit finalizer-based PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff with equal jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    /// Next undithered delay; grows ×2 per failure until `cap`.
    current: Duration,
    rng: u64,
}

impl Backoff {
    /// A backoff starting at `base` and doubling up to `cap`.
    #[must_use]
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self {
            base,
            cap: cap.max(base),
            current: base,
            rng: SEQ.fetch_add(0xa076_1d64_78bd_642f, Ordering::Relaxed),
        }
    }

    /// The next delay: uniform in `[ideal/2, ideal)` where `ideal` doubles
    /// per call until the cap. A zero `base` always yields zero.
    pub fn next_delay(&mut self) -> Duration {
        let ideal = self.current;
        self.current = (self.current * 2).min(self.cap);
        let nanos = u64::try_from(ideal.as_nanos()).unwrap_or(u64::MAX);
        if nanos == 0 {
            return Duration::ZERO;
        }
        let half = nanos / 2;
        let jitter = splitmix(&mut self.rng) % (nanos - half).max(1);
        Duration::from_nanos(half + jitter)
    }

    /// Sleep for [`Backoff::next_delay`].
    pub fn sleep(&mut self) {
        let delay = self.next_delay();
        if delay > Duration::ZERO {
            std::thread::sleep(delay);
        }
    }

    /// Reset to the base delay (call after a success).
    pub fn reset(&mut self) {
        self.current = self.base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_to_the_cap_and_stay_jittered_within_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut b = Backoff::new(base, cap);
        let mut ideal = base;
        for _ in 0..8 {
            let d = b.next_delay();
            assert!(d >= ideal / 2, "{d:?} below half of {ideal:?}");
            assert!(d < ideal, "{d:?} at or above {ideal:?}");
            ideal = (ideal * 2).min(cap);
        }
    }

    #[test]
    fn reset_returns_to_the_base_delay() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
        for _ in 0..5 {
            b.next_delay();
        }
        b.reset();
        let d = b.next_delay();
        assert!(d < Duration::from_millis(10), "{d:?} not reset");
    }

    #[test]
    fn zero_base_never_sleeps_and_instances_decorrelate() {
        let mut z = Backoff::new(Duration::ZERO, Duration::ZERO);
        assert_eq!(z.next_delay(), Duration::ZERO);
        let mut a = Backoff::new(Duration::from_millis(64), Duration::from_secs(1));
        let mut b = Backoff::new(Duration::from_millis(64), Duration::from_secs(1));
        let same = (0..16).filter(|_| a.next_delay() == b.next_delay()).count();
        assert!(same < 16, "two instances drew identical jitter streams");
    }
}
