//! The typed client for the audit service's wire protocol.
//!
//! One TCP connection per request (the server answers `Connection: close`),
//! JSON bodies, and typed views of every response. Because the wire format
//! renders `f64`s with shortest round-trip formatting, the metric vectors a
//! client decodes are **bit-identical** to the values the server computed —
//! auditing through the service gives exactly the library's numbers.

use crate::backoff::Backoff;
use crate::error::{Result, ServeError};
use crate::http::{read_response, MAX_BODY_BYTES};
use crate::jobs::JobKind;
use crate::json::Json;
use fair_core::dca::partial::DisparityPartial;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Catalog information for one store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreInfo {
    /// Catalog name.
    pub name: String,
    /// `"memory"` or `"disk"`.
    pub kind: String,
    /// Total rows.
    pub rows: usize,
    /// Number of shards.
    pub shards: usize,
    /// Rows per shard.
    pub shard_size: usize,
    /// Backing file for disk stores.
    pub path: Option<String>,
}

/// A metrics request: which measurements to run at which operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRequest {
    /// Selection fraction.
    pub k: f64,
    /// Bonus vector (`None` = zeros: the unadjusted ranking).
    pub bonus: Option<Vec<f64>>,
    /// Ranker feature weights (`None` = uniform).
    pub weights: Option<Vec<f64>>,
    /// Metric names (`None` = disparity + nDCG).
    pub metrics: Option<Vec<String>>,
}

impl MetricsRequest {
    /// Disparity + nDCG at `k` with no bonus — the baseline audit.
    #[must_use]
    pub fn baseline(k: f64) -> Self {
        Self {
            k,
            bonus: None,
            weights: None,
            metrics: None,
        }
    }
}

/// The computed metrics (fields are `None` when not requested).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsResult {
    /// Cohort size the metrics were computed over.
    pub rows: usize,
    /// Disparity vector at `k`.
    pub disparity: Option<Vec<f64>>,
    /// nDCG of the bonus-adjusted ranking against the unadjusted one.
    pub ndcg: Option<f64>,
    /// Log-discounted disparity vector.
    pub log_discounted: Option<Vec<f64>>,
    /// FPR-difference vector.
    pub fpr_difference: Option<Vec<f64>>,
    /// Scaled disparate-impact vector.
    pub disparate_impact: Option<Vec<f64>>,
}

/// A background-job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Catalog name of the store to audit.
    pub store: String,
    /// Full or Core DCA.
    pub kind: JobKind,
    /// Selection fraction of the disparity objective.
    pub k: f64,
    /// Ranker feature weights (`None` = uniform).
    pub weights: Option<Vec<f64>>,
    /// Descent seed.
    pub seed: u64,
    /// Sample size (Core DCA only; `None` keeps the server default).
    pub sample_size: Option<usize>,
    /// Learning-rate ladder (`None` keeps the server default).
    pub learning_rates: Option<Vec<f64>>,
    /// Iterations per rate (`None` keeps the server default).
    pub iterations_per_rate: Option<usize>,
    /// Fleet worker addresses (`host:port` strings). `None` runs the job
    /// on the serving node; `Some` makes the job's descent fan out to these
    /// workers, all under the submitting request's trace id.
    pub workers: Option<Vec<String>>,
}

/// A job's status as reported by the service.
#[derive(Debug, Clone, PartialEq)]
pub struct JobView {
    /// Job id.
    pub id: String,
    /// Store the job audits.
    pub store: String,
    /// The trace id every event of this job carries (the submitting
    /// request's, or one the server minted at accept).
    pub trace: String,
    /// `"full"` or `"core"`.
    pub kind: String,
    /// `queued` / `running` / `completed` / `failed` / `cancelled`.
    pub state: String,
    /// Completed steps.
    pub step: usize,
    /// Total steps.
    pub total_steps: usize,
    /// Wall-clock milliseconds spent queued (serve-layer bookkeeping).
    pub queued_ms: u64,
    /// Wall-clock milliseconds spent running (still ticking while running).
    pub running_ms: u64,
    /// The outcome, once completed.
    pub result: Option<JobResult>,
    /// The failure message, once failed.
    pub error: Option<String>,
}

impl JobView {
    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "completed" | "failed" | "cancelled")
    }
}

/// The outcome of a completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Final (unrounded) bonus values.
    pub bonus: Vec<f64>,
    /// Descent steps executed.
    pub steps: usize,
    /// Objects scored across all steps.
    pub objects_scored: usize,
}

/// The gathered sample rows of a `core_sample` partial-reduce response:
/// plain columns, range-ordered, ready to append to a gather dataset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleRows {
    /// Object ids, in deterministic sample order.
    pub ids: Vec<u64>,
    /// Row-major feature matrix.
    pub features: Vec<f64>,
    /// Row-major fairness matrix.
    pub fairness: Vec<f64>,
    /// Per-row outcome labels.
    pub labels: Vec<Option<bool>>,
    /// Whether the worker answered from its `core_sample` LRU (the rows are
    /// byte-identical either way; this is observability, not semantics).
    pub cached: bool,
}

impl SampleRows {
    /// Number of sampled rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A client bound to one service address. Cheap to clone; each request opens
/// its own connection.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    connect_retries: usize,
    trace: Option<String>,
}

impl Client {
    /// A client for the service at `addr` with a 30-second socket timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            timeout: Duration::from_secs(30),
            connect_retries: 0,
            trace: None,
        }
    }

    /// Attach a trace id: every request carries it in the `x-fair-trace`
    /// header, so the server-side handler spans correlate with the caller's
    /// spans (the fleet coordinator sets one id per fan-out round).
    #[must_use]
    pub fn with_trace(mut self, id: impl Into<String>) -> Self {
        self.trace = Some(id.into());
        self
    }

    /// Override the per-request socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Retry a failed TCP connect up to `retries` extra times with jittered
    /// exponential backoff (10 ms doubling to 250 ms) before surfacing the
    /// error. Only the *connect* is retried here — it cannot have reached a
    /// handler, so retrying is always safe regardless of the request's
    /// semantics. Retrying a request that may have executed is the fleet
    /// coordinator's decision, made only for idempotent endpoints.
    #[must_use]
    pub fn with_connect_retries(mut self, retries: usize) -> Self {
        self.connect_retries = retries;
        self
    }

    /// `GET /health`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn health(&self) -> Result<()> {
        self.request("GET", "/health", None).map(|_| ())
    }

    /// `GET /health`, returning the parsed body (status, uptime, request
    /// counter) instead of discarding it.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn health_info(&self) -> Result<Json> {
        self.request("GET", "/health", None)
    }

    /// `GET /stores`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn stores(&self) -> Result<Vec<StoreInfo>> {
        let body = self.request("GET", "/stores", None)?;
        body.get("stores")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::Protocol("missing `stores` array".into()))?
            .iter()
            .map(parse_store_info)
            .collect()
    }

    /// Register an on-disk FSS1 file under `name` (`POST /stores`).
    ///
    /// # Errors
    /// I/O, protocol, or API errors (409 on duplicate names, 422 on
    /// unreadable files).
    pub fn register_disk_store(&self, name: &str, path: &str) -> Result<StoreInfo> {
        let body = Json::obj(vec![("name", Json::str(name)), ("path", Json::str(path))]);
        let resp = self.request("POST", "/stores", Some(&body))?;
        parse_store_info(
            resp.get("store")
                .ok_or_else(|| ServeError::Protocol("missing `store` object".into()))?,
        )
    }

    /// Generate and register a synthetic cohort (`POST /stores` with
    /// `generate`): `kind` is `"school"` or `"compas"`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn register_synthetic(
        &self,
        name: &str,
        kind: &str,
        rows: usize,
        seed: u64,
    ) -> Result<StoreInfo> {
        let body = Json::obj(vec![
            ("name", Json::str(name)),
            (
                "generate",
                Json::obj(vec![
                    ("kind", Json::str(kind)),
                    ("rows", Json::num(rows as f64)),
                    ("seed", seed_json(seed)),
                ]),
            ),
        ]);
        let resp = self.request("POST", "/stores", Some(&body))?;
        parse_store_info(
            resp.get("store")
                .ok_or_else(|| ServeError::Protocol("missing `store` object".into()))?,
        )
    }

    /// `DELETE /stores/{name}`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn remove_store(&self, name: &str) -> Result<()> {
        self.request("DELETE", &format!("/stores/{name}"), None)
            .map(|_| ())
    }

    /// `GET /stores/{name}/schema`: `(feature names, fairness names)`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn schema(&self, name: &str) -> Result<(Vec<String>, Vec<String>)> {
        let body = self.request("GET", &format!("/stores/{name}/schema"), None)?;
        let features = body
            .get("features")
            .and_then(Json::as_str_vec)
            .ok_or_else(|| ServeError::Protocol("missing `features`".into()))?;
        let fairness = body
            .get("fairness")
            .and_then(Json::as_str_vec)
            .ok_or_else(|| ServeError::Protocol("missing `fairness`".into()))?;
        Ok((features, fairness))
    }

    /// `GET /stores/{name}/stats` (raw JSON — the shape varies by backend).
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn stats(&self, name: &str) -> Result<Json> {
        self.request("GET", &format!("/stores/{name}/stats"), None)
    }

    /// `POST /stores/{name}/metrics`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn metrics(&self, name: &str, req: &MetricsRequest) -> Result<MetricsResult> {
        let mut pairs = vec![("k", Json::num(req.k))];
        if let Some(bonus) = &req.bonus {
            pairs.push(("bonus", Json::num_arr(bonus)));
        }
        if let Some(weights) = &req.weights {
            pairs.push(("weights", Json::num_arr(weights)));
        }
        if let Some(metrics) = &req.metrics {
            pairs.push(("metrics", Json::str_arr(metrics)));
        }
        let body = Json::obj(pairs);
        let resp = self.request("POST", &format!("/stores/{name}/metrics"), Some(&body))?;
        Ok(MetricsResult {
            rows: resp.get("rows").and_then(Json::as_usize).unwrap_or(0),
            disparity: resp.get("disparity").and_then(Json::as_f64_vec),
            ndcg: resp.get("ndcg").and_then(Json::as_f64),
            log_discounted: resp.get("log_discounted").and_then(Json::as_f64_vec),
            fpr_difference: resp.get("fpr_difference").and_then(Json::as_f64_vec),
            disparate_impact: resp.get("disparate_impact").and_then(Json::as_f64_vec),
        })
    }

    /// `POST /jobs`: launch a background DCA run.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn submit_job(&self, req: &JobRequest) -> Result<JobView> {
        let mut config = vec![("seed", seed_json(req.seed))];
        if let Some(v) = req.sample_size {
            config.push(("sample_size", Json::num(v as f64)));
        }
        if let Some(v) = &req.learning_rates {
            config.push(("learning_rates", Json::num_arr(v)));
        }
        if let Some(v) = req.iterations_per_rate {
            config.push(("iterations_per_rate", Json::num(v as f64)));
        }
        let mut pairs = vec![
            ("store", Json::str(req.store.clone())),
            ("kind", Json::str(req.kind.as_str())),
            ("k", Json::num(req.k)),
            ("config", Json::obj(config)),
        ];
        if let Some(weights) = &req.weights {
            pairs.push(("weights", Json::num_arr(weights)));
        }
        if let Some(workers) = &req.workers {
            pairs.push(("workers", Json::str_arr(workers)));
        }
        let body = Json::obj(pairs);
        let resp = self.request("POST", "/jobs", Some(&body))?;
        parse_job_view(&resp)
    }

    /// `GET /jobs/{id}/profile`: the job's phase profile — per-phase
    /// attributed time plus the per-step breakdown ring — as raw JSON (the
    /// shape is additive across versions, so a typed view would ossify it).
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn job_profile(&self, id: &str) -> Result<Json> {
        self.request("GET", &format!("/jobs/{id}/profile"), None)
    }

    /// `GET /jobs/{id}`.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn job(&self, id: &str) -> Result<JobView> {
        let resp = self.request("GET", &format!("/jobs/{id}"), None)?;
        parse_job_view(&resp)
    }

    /// `DELETE /jobs/{id}`: request cooperative cancellation.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn cancel_job(&self, id: &str) -> Result<JobView> {
        let resp = self.request("DELETE", &format!("/jobs/{id}"), None)?;
        parse_job_view(&resp)
    }

    /// Poll `GET /jobs/{id}` until the job reaches a terminal state or
    /// `timeout` elapses. The poll interval starts at 10 ms and backs off
    /// exponentially (with jitter) to a 1-second cap, so a long-running job
    /// is not hammered with status requests while a short one is still
    /// observed promptly.
    ///
    /// # Errors
    /// I/O, protocol, or API errors; [`ServeError::Protocol`] on timeout.
    pub fn wait_for_job(&self, id: &str, timeout: Duration) -> Result<JobView> {
        let start = Instant::now();
        let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
        loop {
            let view = self.job(id)?;
            if view.is_terminal() {
                return Ok(view);
            }
            if start.elapsed() > timeout {
                return Err(ServeError::Protocol(format!(
                    "job `{id}` still `{}` after {timeout:?}",
                    view.state
                )));
            }
            backoff.sleep();
        }
    }

    /// `POST /stores/{name}/partials` with `kind: "disparity"`: this node's
    /// per-shard disparity partials over the shard range, decoded back into
    /// the engine's [`DisparityPartial`] type for
    /// [`fair_core::dca::partial::combine_disparity_partials`].
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn disparity_partials(
        &self,
        store: &str,
        bonus: &[f64],
        weights: Option<&[f64]>,
        count: usize,
        shards: Range<usize>,
    ) -> Result<Vec<DisparityPartial>> {
        let mut pairs = vec![
            ("kind", Json::str("disparity")),
            ("bonus", Json::num_arr(bonus)),
            ("count", Json::num(count as f64)),
            ("shards", shards_json(&shards)),
        ];
        if let Some(weights) = weights {
            pairs.push(("weights", Json::num_arr(weights)));
        }
        let resp = self.request(
            "POST",
            &format!("/stores/{store}/partials"),
            Some(&Json::obj(pairs)),
        )?;
        resp.get("shards")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::Protocol("missing `shards` array".into()))?
            .iter()
            .map(parse_disparity_partial)
            .collect()
    }

    /// `POST /stores/{name}/partials` with `kind: "core_sample"`: the
    /// deterministic `(seed, sample_size)` Bernoulli sample rows restricted
    /// to the shard range, as plain columns.
    ///
    /// # Errors
    /// I/O, protocol, or API errors.
    pub fn core_sample(
        &self,
        store: &str,
        seed: u64,
        sample_size: usize,
        shards: Range<usize>,
    ) -> Result<SampleRows> {
        let body = Json::obj(vec![
            ("kind", Json::str("core_sample")),
            ("seed", seed_json(seed)),
            ("sample_size", Json::num(sample_size as f64)),
            ("shards", shards_json(&shards)),
        ]);
        let resp = self.request("POST", &format!("/stores/{store}/partials"), Some(&body))?;
        let mut rows = parse_sample_rows(
            resp.get("rows")
                .ok_or_else(|| ServeError::Protocol("missing `rows` object".into()))?,
        )?;
        rows.cached = resp.get("cached").and_then(Json::as_bool).unwrap_or(false);
        Ok(rows)
    }

    /// `GET /metrics`: the server's [`fair_core::obs`] registry in raw
    /// Prometheus text exposition format (no JSON parsing — the body is not
    /// JSON).
    ///
    /// # Errors
    /// I/O or protocol errors; [`ServeError::Api`] on non-2xx statuses.
    pub fn metrics_text(&self) -> Result<String> {
        let (status, raw) = self.exchange("GET", "/metrics", None)?;
        if status >= 400 {
            return Err(ServeError::Api {
                status,
                message: format!("GET /metrics answered {status}"),
            });
        }
        String::from_utf8(raw).map_err(|_| ServeError::Protocol("non-UTF8 metrics body".into()))
    }

    /// One request/response exchange. API-level failures (status >= 400)
    /// surface as [`ServeError::Api`] with the server's `error` message.
    fn request(&self, method: &str, path: &str, body: Option<&Json>) -> Result<Json> {
        let (status, raw) = self.exchange(method, path, body)?;
        let text = std::str::from_utf8(&raw)
            .map_err(|_| ServeError::Protocol("non-UTF8 response body".into()))?;
        let json = if text.is_empty() {
            Json::Null
        } else {
            Json::parse(text)?
        };
        if status >= 400 {
            let message = json
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string();
            return Err(ServeError::Api { status, message });
        }
        Ok(json)
    }

    /// The raw wire exchange shared by the JSON path and `/metrics`: connect
    /// (with retries), send one request, read `(status, body bytes)`.
    fn exchange(&self, method: &str, path: &str, body: Option<&Json>) -> Result<(u16, Vec<u8>)> {
        let mut backoff = Backoff::new(Duration::from_millis(10), Duration::from_millis(250));
        let mut attempt = 0;
        let conn = loop {
            match TcpStream::connect_timeout(&self.addr, self.timeout) {
                Ok(conn) => break conn,
                Err(_) if attempt < self.connect_retries => {
                    attempt += 1;
                    backoff.sleep();
                }
                Err(e) => return Err(e.into()),
            }
        };
        conn.set_read_timeout(Some(self.timeout))?;
        conn.set_write_timeout(Some(self.timeout))?;
        conn.set_nodelay(true)?;
        let rendered = body.map(Json::render).unwrap_or_default();
        let trace_header = self
            .trace
            .as_deref()
            .map(|id| format!("{}: {id}\r\n", crate::http::TRACE_HEADER))
            .unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{trace_header}Connection: close\r\n\r\n",
            self.addr,
            rendered.len()
        );
        let mut w = &conn;
        w.write_all(head.as_bytes())?;
        w.write_all(rendered.as_bytes())?;
        w.flush()?;

        let (status, raw) = read_response(&conn)?;
        if raw.len() > MAX_BODY_BYTES {
            return Err(ServeError::Protocol("response body too large".into()));
        }
        Ok((status, raw))
    }
}

/// Encode a `u64` seed for the wire: a JSON number when strictly below 2^53
/// (the server rejects number tokens at 2^53 and above, where `f64` parsing
/// may already have rounded them), a decimal string otherwise — so every
/// seed round-trips exactly and the job's trajectory is the library
/// trajectory for that seed.
fn seed_json(seed: u64) -> Json {
    if seed < (1_u64 << 53) {
        Json::num(seed as f64)
    } else {
        Json::Str(seed.to_string())
    }
}

/// Encode a shard range as the wire's `[lo, hi]` pair.
fn shards_json(range: &Range<usize>) -> Json {
    Json::Arr(vec![
        Json::num(range.start as f64),
        Json::num(range.end as f64),
    ])
}

fn parse_disparity_partial(v: &Json) -> Result<DisparityPartial> {
    let count = |key: &str| -> Result<usize> {
        v.get(key)
            .and_then(Json::as_usize)
            .ok_or_else(|| ServeError::Protocol(format!("partial missing `{key}`")))
    };
    let nums = |key: &str| -> Result<Vec<f64>> {
        v.get(key)
            .and_then(Json::as_f64_vec)
            .ok_or_else(|| ServeError::Protocol(format!("partial missing `{key}`")))
    };
    let positions = v
        .get("positions")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Protocol("partial missing `positions`".into()))?
        .iter()
        .map(|p| {
            p.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| ServeError::Protocol("`positions` must be counts".into()))
        })
        .collect::<Result<Vec<usize>>>()?;
    Ok(DisparityPartial {
        shard: count("shard")?,
        rows: count("rows")?,
        fair_sums: nums("fair_sums")?,
        scores: nums("scores")?,
        positions,
        fairness: nums("fairness")?,
    })
}

fn parse_sample_rows(v: &Json) -> Result<SampleRows> {
    let ids = v
        .get("ids")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Protocol("sample missing `ids`".into()))?
        .iter()
        .map(|p| {
            p.as_u64()
                .ok_or_else(|| ServeError::Protocol("`ids` must be u64".into()))
        })
        .collect::<Result<Vec<u64>>>()?;
    let nums = |key: &str| -> Result<Vec<f64>> {
        v.get(key)
            .and_then(Json::as_f64_vec)
            .ok_or_else(|| ServeError::Protocol(format!("sample missing `{key}`")))
    };
    let labels = v
        .get("labels")
        .and_then(Json::as_arr)
        .ok_or_else(|| ServeError::Protocol("sample missing `labels`".into()))?
        .iter()
        .map(|p| match p.as_f64() {
            Some(0.0) => Ok(None),
            Some(1.0) => Ok(Some(false)),
            Some(2.0) => Ok(Some(true)),
            _ => Err(ServeError::Protocol("`labels` must be 0, 1, or 2".into())),
        })
        .collect::<Result<Vec<Option<bool>>>>()?;
    Ok(SampleRows {
        ids,
        features: nums("features")?,
        fairness: nums("fairness")?,
        labels,
        cached: false,
    })
}

fn parse_store_info(v: &Json) -> Result<StoreInfo> {
    let field = |key: &str| {
        v.get(key)
            .ok_or_else(|| ServeError::Protocol(format!("store info missing `{key}`")))
    };
    Ok(StoreInfo {
        name: field("name")?
            .as_str()
            .ok_or_else(|| ServeError::Protocol("`name` must be a string".into()))?
            .to_string(),
        kind: field("kind")?
            .as_str()
            .ok_or_else(|| ServeError::Protocol("`kind` must be a string".into()))?
            .to_string(),
        rows: field("rows")?
            .as_usize()
            .ok_or_else(|| ServeError::Protocol("`rows` must be a count".into()))?,
        shards: field("shards")?
            .as_usize()
            .ok_or_else(|| ServeError::Protocol("`shards` must be a count".into()))?,
        shard_size: field("shard_size")?
            .as_usize()
            .ok_or_else(|| ServeError::Protocol("`shard_size` must be a count".into()))?,
        path: v.get("path").and_then(Json::as_str).map(str::to_string),
    })
}

fn parse_job_view(v: &Json) -> Result<JobView> {
    let str_field = |key: &str| -> Result<String> {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol(format!("job view missing `{key}`")))
    };
    let result = match v.get("result") {
        None | Some(Json::Null) => None,
        Some(r) => Some(JobResult {
            bonus: r
                .get("bonus")
                .and_then(Json::as_f64_vec)
                .ok_or_else(|| ServeError::Protocol("job result missing `bonus`".into()))?,
            steps: r.get("steps").and_then(Json::as_usize).unwrap_or(0),
            objects_scored: r
                .get("objects_scored")
                .and_then(Json::as_usize)
                .unwrap_or(0),
        }),
    };
    Ok(JobView {
        id: str_field("id")?,
        store: str_field("store")?,
        trace: v
            .get("trace")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        kind: str_field("kind")?,
        state: str_field("state")?,
        step: v.get("step").and_then(Json::as_usize).unwrap_or(0),
        total_steps: v.get("total_steps").and_then(Json::as_usize).unwrap_or(0),
        queued_ms: v.get("queued_ms").and_then(Json::as_u64).unwrap_or(0),
        running_ms: v.get("running_ms").and_then(Json::as_u64).unwrap_or(0),
        result,
        error: v.get("error").and_then(Json::as_str).map(str::to_string),
    })
}
