//! Student-proposing deferred acceptance (Gale–Shapley) and stability
//! checking.
//!
//! The algorithm is the one used (in essence) by the NYC high-school match:
//! unassigned students propose to their most-preferred school that has not yet
//! rejected them; each school tentatively keeps its best applicants up to
//! capacity and rejects the rest; the process repeats until no student has a
//! school left to propose to. The result is stable: no student and school
//! prefer each other to their assigned outcome.

use crate::preferences::{SchoolRanking, StudentPreferences};
use std::collections::VecDeque;

/// The outcome of a match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// `assignment[s]` is the school student `s` was matched to, if any.
    assignment: Vec<Option<usize>>,
    /// `roster[c]` lists the students admitted to school `c`.
    roster: Vec<Vec<usize>>,
}

impl Matching {
    /// The school assigned to a student.
    #[must_use]
    pub fn school_of(&self, student: usize) -> Option<usize> {
        self.assignment.get(student).copied().flatten()
    }

    /// The students admitted to a school.
    #[must_use]
    pub fn roster(&self, school: usize) -> &[usize] {
        &self.roster[school]
    }

    /// All rosters (indexed by school).
    #[must_use]
    pub fn rosters(&self) -> &[Vec<usize>] {
        &self.roster
    }

    /// The full per-student assignment vector.
    #[must_use]
    pub fn assignments(&self) -> &[Option<usize>] {
        &self.assignment
    }

    /// Number of matched students.
    #[must_use]
    pub fn matched_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Number of unmatched students.
    #[must_use]
    pub fn unmatched_count(&self) -> usize {
        self.assignment.len() - self.matched_count()
    }
}

/// Run student-proposing deferred acceptance.
///
/// # Panics
/// Panics if a preference list references a school index outside
/// `schools.len()`.
#[must_use]
pub fn deferred_acceptance(students: &[StudentPreferences], schools: &[SchoolRanking]) -> Matching {
    let num_students = students.len();
    let num_schools = schools.len();
    for (s, prefs) in students.iter().enumerate() {
        for &c in prefs.schools() {
            assert!(c < num_schools, "student {s} lists unknown school {c}");
        }
    }

    // next_choice[s]: index into student s's preference list to propose to next.
    let mut next_choice = vec![0_usize; num_students];
    let mut assignment: Vec<Option<usize>> = vec![None; num_students];
    // Tentative rosters, kept as plain vectors (capacities are small).
    let mut roster: Vec<Vec<usize>> = vec![Vec::new(); num_schools];

    let mut queue: VecDeque<usize> = (0..num_students).collect();
    while let Some(student) = queue.pop_front() {
        if assignment[student].is_some() {
            continue;
        }
        let prefs = &students[student];
        // Propose to the next school on the list, if any remain.
        let Some(&school) = prefs.schools().get(next_choice[student]) else {
            continue; // exhausted the list: stays unmatched
        };
        next_choice[student] += 1;

        let ranking = &schools[school];
        if !ranking.ranks(student) || ranking.capacity() == 0 {
            // The school would never admit this student: immediate rejection.
            queue.push_back(student);
            continue;
        }

        if roster[school].len() < ranking.capacity() {
            roster[school].push(student);
            assignment[student] = Some(school);
        } else {
            // School is full: find its least-preferred tentative admit.
            let (worst_idx, &worst_student) = roster[school]
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    if ranking.prefers(a, b) {
                        std::cmp::Ordering::Less
                    } else {
                        std::cmp::Ordering::Greater
                    }
                })
                .expect("full roster is non-empty");
            if ranking.prefers(student, worst_student) {
                // Displace the worst admit.
                roster[school][worst_idx] = student;
                assignment[student] = Some(school);
                assignment[worst_student] = None;
                queue.push_back(worst_student);
            } else {
                queue.push_back(student);
            }
        }
    }

    // Present rosters in the school's preference order for determinism.
    for (school, list) in roster.iter_mut().enumerate() {
        list.sort_unstable_by(|&a, &b| {
            if schools[school].prefers(a, b) {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        });
    }
    Matching { assignment, roster }
}

/// Check stability: returns the list of blocking pairs `(student, school)` —
/// pairs where the student prefers the school to their assignment *and* the
/// school either has a free seat or prefers the student to one of its admits.
/// An empty result means the matching is stable.
#[must_use]
pub fn is_stable(
    students: &[StudentPreferences],
    schools: &[SchoolRanking],
    matching: &Matching,
) -> Vec<(usize, usize)> {
    let mut blocking = Vec::new();
    for (student, prefs) in students.iter().enumerate() {
        let current = matching.school_of(student);
        for &school in prefs.schools() {
            // Only schools strictly preferred to the current assignment can block.
            if let Some(cur) = current {
                if !prefs.prefers(school, cur) {
                    continue;
                }
            }
            let ranking = &schools[school];
            if !ranking.ranks(student) {
                continue;
            }
            let roster = matching.roster(school);
            let has_free_seat = roster.len() < ranking.capacity();
            let displaces_someone = roster
                .iter()
                .any(|&admitted| ranking.prefers(student, admitted));
            if has_free_seat || displaces_someone {
                blocking.push((student, school));
            }
        }
    }
    blocking
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic 3x3 example where every student lists every school.
    fn three_by_three() -> (Vec<StudentPreferences>, Vec<SchoolRanking>) {
        let students = vec![
            StudentPreferences::new(vec![0, 1, 2]),
            StudentPreferences::new(vec![0, 2, 1]),
            StudentPreferences::new(vec![1, 0, 2]),
        ];
        let schools = vec![
            SchoolRanking::new(vec![1, 0, 2], 1, 3),
            SchoolRanking::new(vec![0, 2, 1], 1, 3),
            SchoolRanking::new(vec![2, 1, 0], 1, 3),
        ];
        (students, schools)
    }

    #[test]
    fn produces_a_stable_perfect_matching() {
        let (students, schools) = three_by_three();
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.matched_count(), 3);
        assert_eq!(m.unmatched_count(), 0);
        assert!(is_stable(&students, &schools, &m).is_empty());
        // Every school has exactly one admit.
        assert!(m.rosters().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn student_optimality_of_the_proposing_side() {
        // Student 0 and school 0 rank each other first: they must be matched.
        let students = vec![
            StudentPreferences::new(vec![0, 1]),
            StudentPreferences::new(vec![0, 1]),
        ];
        let schools = vec![
            SchoolRanking::new(vec![0, 1], 1, 2),
            SchoolRanking::new(vec![0, 1], 1, 2),
        ];
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.school_of(0), Some(0));
        assert_eq!(m.school_of(1), Some(1));
    }

    #[test]
    fn capacities_are_respected() {
        let students: Vec<_> = (0..5).map(|_| StudentPreferences::new(vec![0])).collect();
        let schools = vec![SchoolRanking::new(vec![4, 3, 2, 1, 0], 2, 5)];
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.roster(0), &[4, 3]);
        assert_eq!(m.unmatched_count(), 3);
        assert!(is_stable(&students, &schools, &m).is_empty());
    }

    #[test]
    fn unranked_students_are_never_admitted() {
        let students = vec![
            StudentPreferences::new(vec![0]),
            StudentPreferences::new(vec![0]),
        ];
        // School only ranks student 1.
        let schools = vec![SchoolRanking::new(vec![1], 2, 2)];
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.school_of(0), None);
        assert_eq!(m.school_of(1), Some(0));
    }

    #[test]
    fn students_with_empty_lists_stay_unmatched() {
        let students = vec![
            StudentPreferences::new(vec![]),
            StudentPreferences::new(vec![0]),
        ];
        let schools = vec![SchoolRanking::new(vec![0, 1], 1, 2)];
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.school_of(0), None);
        assert_eq!(m.school_of(1), Some(0));
    }

    #[test]
    fn displacement_chains_resolve() {
        // One seat per school; student 2 displaces student 1 from school 0,
        // pushing student 1 to school 1.
        let students = vec![
            StudentPreferences::new(vec![1, 0]),
            StudentPreferences::new(vec![0, 1]),
            StudentPreferences::new(vec![0, 1]),
        ];
        let schools = vec![
            SchoolRanking::new(vec![2, 1, 0], 1, 3),
            SchoolRanking::new(vec![0, 1, 2], 1, 3),
        ];
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.school_of(2), Some(0));
        assert_eq!(m.school_of(0), Some(1));
        assert_eq!(
            m.school_of(1),
            None,
            "one student is left over with 2 seats total... "
        );
        assert!(is_stable(&students, &schools, &m).is_empty());
    }

    #[test]
    fn stability_checker_detects_blocking_pairs() {
        let (students, schools) = three_by_three();
        // Deliberately unstable matching: student 0 is sent to its last
        // choice even though school 0 would prefer it to its current admit.
        let m = Matching {
            assignment: vec![Some(2), Some(1), Some(0)],
            roster: vec![vec![2], vec![1], vec![0]],
        };
        let blocking = is_stable(&students, &schools, &m);
        assert!(!blocking.is_empty(), "student 0 and school 0 should block");
        assert!(blocking.contains(&(0, 0)));
    }

    #[test]
    fn zero_capacity_schools_admit_nobody() {
        let students = vec![StudentPreferences::new(vec![0, 1])];
        let schools = vec![
            SchoolRanking::new(vec![0], 0, 1),
            SchoolRanking::new(vec![0], 1, 1),
        ];
        let m = deferred_acceptance(&students, &schools);
        assert_eq!(m.school_of(0), Some(1));
        assert!(m.roster(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown school")]
    fn unknown_school_in_preferences_panics() {
        let students = vec![StudentPreferences::new(vec![5])];
        let schools = vec![SchoolRanking::new(vec![0], 1, 1)];
        let _ = deferred_acceptance(&students, &schools);
    }
}
