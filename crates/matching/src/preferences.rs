//! Preference structures for the school-choice match.

/// A student's ordered preference list over schools (most preferred first).
/// Schools not listed are unacceptable to the student.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudentPreferences {
    ranked_schools: Vec<usize>,
}

impl StudentPreferences {
    /// Build a preference list (most preferred first).
    ///
    /// # Panics
    /// Panics if the list contains duplicate schools.
    #[must_use]
    pub fn new(ranked_schools: Vec<usize>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for &s in &ranked_schools {
            assert!(seen.insert(s), "duplicate school {s} in preference list");
        }
        Self { ranked_schools }
    }

    /// The ordered school list.
    #[must_use]
    pub fn schools(&self) -> &[usize] {
        &self.ranked_schools
    }

    /// Number of schools the student finds acceptable.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranked_schools.len()
    }

    /// Whether the student listed no schools.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranked_schools.is_empty()
    }

    /// Preference rank of a school (0 = most preferred), or `None` if
    /// unlisted.
    #[must_use]
    pub fn rank_of(&self, school: usize) -> Option<usize> {
        self.ranked_schools.iter().position(|&s| s == school)
    }

    /// Whether the student prefers school `a` to school `b`. Unlisted schools
    /// are always less preferred than listed ones.
    #[must_use]
    pub fn prefers(&self, a: usize, b: usize) -> bool {
        match (self.rank_of(a), self.rank_of(b)) {
            (Some(ra), Some(rb)) => ra < rb,
            (Some(_), None) => true,
            _ => false,
        }
    }
}

/// A school's admission ranking: students ordered from best to worst according
/// to the school's rubric (possibly bonus-adjusted), plus the school's
/// capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct SchoolRanking {
    ranked_students: Vec<usize>,
    /// Priority of each student: lower = better. `usize::MAX` = unranked
    /// (never admitted).
    priority: Vec<usize>,
    capacity: usize,
}

impl SchoolRanking {
    /// Build a ranking from the ordered student list (best first) and the
    /// school's capacity. `num_students` is the total number of students in
    /// the market (students missing from the list are never admitted).
    ///
    /// # Panics
    /// Panics if the list contains duplicates or out-of-range students.
    #[must_use]
    pub fn new(ranked_students: Vec<usize>, capacity: usize, num_students: usize) -> Self {
        let mut priority = vec![usize::MAX; num_students];
        for (rank, &s) in ranked_students.iter().enumerate() {
            assert!(s < num_students, "student {s} out of range");
            assert_eq!(
                priority[s],
                usize::MAX,
                "duplicate student {s} in school ranking"
            );
            priority[s] = rank;
        }
        Self {
            ranked_students,
            priority,
            capacity,
        }
    }

    /// Build a ranking from per-student scores (higher = better); every
    /// student is ranked.
    #[must_use]
    pub fn from_scores(scores: &[f64], capacity: usize) -> Self {
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(&b))
        });
        Self::new(order, capacity, scores.len())
    }

    /// The ranked student list (best first).
    #[must_use]
    pub fn students(&self) -> &[usize] {
        &self.ranked_students
    }

    /// The school's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the school ranks (i.e. would ever admit) the student.
    #[must_use]
    pub fn ranks(&self, student: usize) -> bool {
        self.priority.get(student).copied().unwrap_or(usize::MAX) != usize::MAX
    }

    /// Whether the school prefers student `a` to student `b`.
    #[must_use]
    pub fn prefers(&self, a: usize, b: usize) -> bool {
        let pa = self.priority.get(a).copied().unwrap_or(usize::MAX);
        let pb = self.priority.get(b).copied().unwrap_or(usize::MAX);
        pa < pb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_preferences_rank_and_compare() {
        let p = StudentPreferences::new(vec![2, 0, 1]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.rank_of(2), Some(0));
        assert_eq!(p.rank_of(1), Some(2));
        assert_eq!(p.rank_of(9), None);
        assert!(p.prefers(2, 0));
        assert!(!p.prefers(1, 0));
        assert!(p.prefers(0, 9), "listed schools beat unlisted ones");
        assert!(!p.prefers(9, 0));
    }

    #[test]
    fn empty_preferences_are_allowed() {
        let p = StudentPreferences::new(vec![]);
        assert!(p.is_empty());
        assert!(!p.prefers(0, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate school")]
    fn duplicate_school_panics() {
        let _ = StudentPreferences::new(vec![1, 1]);
    }

    #[test]
    fn school_ranking_from_scores_orders_descending() {
        let r = SchoolRanking::from_scores(&[10.0, 30.0, 20.0], 2);
        assert_eq!(r.students(), &[1, 2, 0]);
        assert_eq!(r.capacity(), 2);
        assert!(r.prefers(1, 0));
        assert!(r.ranks(0));
    }

    #[test]
    fn partial_rankings_leave_students_unranked() {
        let r = SchoolRanking::new(vec![2, 0], 1, 4);
        assert!(r.ranks(2));
        assert!(!r.ranks(3));
        assert!(r.prefers(2, 0));
        assert!(r.prefers(0, 3), "ranked students beat unranked ones");
        assert!(!r.prefers(3, 1) || !r.ranks(1));
    }

    #[test]
    fn ties_in_scores_break_by_index() {
        let r = SchoolRanking::from_scores(&[5.0, 5.0, 5.0], 3);
        assert_eq!(r.students(), &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate student")]
    fn duplicate_student_panics() {
        let _ = SchoolRanking::new(vec![0, 0], 1, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_student_panics() {
        let _ = SchoolRanking::new(vec![5], 1, 2);
    }
}
