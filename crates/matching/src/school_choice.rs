//! End-to-end school-choice simulation: rubric-ranked schools, simulated
//! student preferences, deferred acceptance, and per-school disparity
//! reporting.
//!
//! This is the pipeline the paper's motivating example describes: schools rank
//! applicants with a published rubric (optionally adjusted by DCA bonus
//! points), students rank schools, and the match decides how deep into each
//! school's list admissions reach. The outcome reports the disparity of each
//! school's admitted cohort against the city-wide population, which is the
//! quantity the bonus points are meant to repair.

use crate::deferred_acceptance::{deferred_acceptance, Matching};
use crate::preferences::{SchoolRanking, StudentPreferences};
use fair_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the simulated admissions market.
#[derive(Debug, Clone, PartialEq)]
pub struct SchoolChoiceConfig {
    /// Number of screened schools participating in the match.
    pub num_schools: usize,
    /// Total seats as a fraction of the number of students (e.g. 0.15 means
    /// 15% of students can be placed in a screened school).
    pub capacity_fraction: f64,
    /// How strongly students agree on school desirability: 0 = purely
    /// idiosyncratic preferences, 1 = everyone ranks schools identically.
    pub preference_consensus: f64,
    /// Number of schools each student lists (NYC allows up to 12).
    pub list_length: usize,
    /// RNG seed for preference simulation.
    pub seed: u64,
}

impl Default for SchoolChoiceConfig {
    fn default() -> Self {
        Self {
            num_schools: 8,
            capacity_fraction: 0.15,
            preference_consensus: 0.6,
            list_length: 6,
            seed: 0x5C00,
        }
    }
}

/// The result of one admissions round.
#[derive(Debug, Clone)]
pub struct AdmissionsOutcome {
    /// The stable matching.
    pub matching: Matching,
    /// Capacity of each school.
    pub capacities: Vec<usize>,
    /// Disparity vector of each school's admitted cohort vs the city-wide
    /// population (empty rosters yield a zero vector).
    pub per_school_disparity: Vec<Vec<f64>>,
    /// Disparity vector of all admitted students combined.
    pub overall_disparity: Vec<f64>,
    /// The effective selection fraction of each school: how far down its
    /// ranked list the school had to go, as a fraction of the applicant pool.
    pub effective_k: Vec<f64>,
}

impl AdmissionsOutcome {
    /// L2 norm of the overall admitted-cohort disparity.
    #[must_use]
    pub fn overall_norm(&self) -> f64 {
        fair_core::metrics::norm(&self.overall_disparity)
    }
}

/// The simulator: builds school rankings and student preferences from a
/// dataset, then runs deferred acceptance.
#[derive(Debug, Clone)]
pub struct SchoolChoiceSimulator {
    config: SchoolChoiceConfig,
}

impl SchoolChoiceSimulator {
    /// Create a simulator.
    ///
    /// # Errors
    /// Returns an error for zero schools, an empty list length, or a capacity
    /// fraction outside `(0, 1]`.
    pub fn new(config: SchoolChoiceConfig) -> Result<Self> {
        if config.num_schools == 0 {
            return Err(FairError::InvalidConfig {
                reason: "need at least one school".into(),
            });
        }
        if config.list_length == 0 {
            return Err(FairError::InvalidConfig {
                reason: "students must list at least one school".into(),
            });
        }
        if !(config.capacity_fraction > 0.0 && config.capacity_fraction <= 1.0) {
            return Err(FairError::InvalidConfig {
                reason: format!(
                    "capacity fraction must lie in (0, 1], got {}",
                    config.capacity_fraction
                ),
            });
        }
        if !(0.0..=1.0).contains(&config.preference_consensus) {
            return Err(FairError::InvalidConfig {
                reason: "preference consensus must lie in [0, 1]".into(),
            });
        }
        Ok(Self { config })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SchoolChoiceConfig {
        &self.config
    }

    /// Run one admissions round.
    ///
    /// * `dataset` — the applicant pool,
    /// * `rubric` — the score-based ranking function shared by the schools,
    /// * `bonus` — optional bonus vector applied by every school (the DCA
    ///   intervention); `None` runs the uncorrected match.
    ///
    /// # Errors
    /// Returns an error on an empty dataset or a bonus vector whose schema
    /// does not match.
    pub fn run<R: Ranker + ?Sized>(
        &self,
        dataset: &Dataset,
        rubric: &R,
        bonus: Option<&BonusVector>,
    ) -> Result<AdmissionsOutcome> {
        if dataset.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        let dims = dataset.schema().num_fairness();
        let zero = vec![0.0; dims];
        let bonus_values: &[f64] = match bonus {
            Some(b) => {
                if b.dims() != dims {
                    return Err(FairError::DimensionMismatch {
                        what: "bonus vector",
                        expected: dims,
                        actual: b.dims(),
                    });
                }
                b.values()
            }
            None => &zero,
        };

        let view = dataset.full_view();
        let scores = effective_scores(&view, rubric, bonus_values);
        let n = dataset.len();
        let c = &self.config;

        // Seats per school: total seats spread evenly, remainder to the first schools.
        let total_seats = ((n as f64) * c.capacity_fraction).round().max(1.0) as usize;
        let base = total_seats / c.num_schools;
        let remainder = total_seats % c.num_schools;
        let capacities: Vec<usize> = (0..c.num_schools)
            .map(|i| base + usize::from(i < remainder))
            .collect();

        // Every school uses the same rubric (and the same bonus), as in the
        // paper's single-rubric evaluation; schools differ in desirability.
        let schools: Vec<SchoolRanking> = capacities
            .iter()
            .map(|&cap| SchoolRanking::from_scores(&scores, cap))
            .collect();

        // Student preferences: common desirability (school 0 most desirable)
        // blended with idiosyncratic noise.
        let mut rng = StdRng::seed_from_u64(c.seed);
        let students: Vec<StudentPreferences> = (0..n)
            .map(|_| {
                let mut utilities: Vec<(usize, f64)> = (0..c.num_schools)
                    .map(|school| {
                        let common = 1.0 - school as f64 / c.num_schools as f64;
                        let noise: f64 = rng.gen();
                        let u = c.preference_consensus * common
                            + (1.0 - c.preference_consensus) * noise;
                        (school, u)
                    })
                    .collect();
                utilities
                    .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                StudentPreferences::new(
                    utilities
                        .into_iter()
                        .take(c.list_length)
                        .map(|(s, _)| s)
                        .collect(),
                )
            })
            .collect();

        let matching = deferred_acceptance(&students, &schools);

        // Disparity of each school's admitted cohort.
        let population_centroid = dataset.fairness_centroid()?;
        let mut per_school_disparity = Vec::with_capacity(c.num_schools);
        let mut effective_k = Vec::with_capacity(c.num_schools);
        let mut all_admitted: Vec<usize> = Vec::new();
        for (school, roster) in matching.rosters().iter().enumerate() {
            if roster.is_empty() {
                per_school_disparity.push(vec![0.0; dims]);
                effective_k.push(0.0);
                continue;
            }
            let centroid = dataset.fairness_centroid_of(roster)?;
            per_school_disparity.push(
                centroid
                    .iter()
                    .zip(&population_centroid)
                    .map(|(s, p)| s - p)
                    .collect(),
            );
            // How deep into the school's ranked list the last admit sits.
            let deepest = roster
                .iter()
                .map(|&s| {
                    schools[school]
                        .students()
                        .iter()
                        .position(|&x| x == s)
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            effective_k.push((deepest + 1) as f64 / n as f64);
            all_admitted.extend_from_slice(roster);
        }
        let overall_disparity = if all_admitted.is_empty() {
            vec![0.0; dims]
        } else {
            let centroid = dataset.fairness_centroid_of(&all_admitted)?;
            centroid
                .iter()
                .zip(&population_centroid)
                .map(|(s, p)| s - p)
                .collect()
        };

        Ok(AdmissionsOutcome {
            matching,
            capacities,
            per_school_disparity,
            overall_disparity,
            effective_k,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deferred_acceptance::is_stable;
    use rand::Rng;

    fn biased_dataset(n: u64, seed: u64) -> Dataset {
        let schema = Schema::from_names(&["score"], &["low_income"], &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..n)
            .map(|i| {
                let li = rng.gen::<f64>() < 0.6;
                let score = rng.gen::<f64>() * 100.0 - if li { 20.0 } else { 0.0 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(li))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn config() -> SchoolChoiceConfig {
        SchoolChoiceConfig {
            num_schools: 4,
            capacity_fraction: 0.2,
            list_length: 4,
            ..Default::default()
        }
    }

    #[test]
    fn admissions_fill_the_capacities_and_report_disparity() {
        let dataset = biased_dataset(1000, 3);
        let rubric = WeightedSumRanker::new(vec![1.0]).unwrap();
        let sim = SchoolChoiceSimulator::new(config()).unwrap();
        let outcome = sim.run(&dataset, &rubric, None).unwrap();
        let total_seats: usize = outcome.capacities.iter().sum();
        assert_eq!(total_seats, 200);
        assert_eq!(
            outcome.matching.matched_count(),
            200,
            "demand exceeds supply so seats fill"
        );
        // Low-income students are underrepresented among admits.
        assert!(
            outcome.overall_disparity[0] < -0.05,
            "{:?}",
            outcome.overall_disparity
        );
        assert!(outcome.overall_norm() > 0.05);
        assert_eq!(outcome.per_school_disparity.len(), 4);
        assert!(outcome.effective_k.iter().all(|k| *k > 0.0 && *k <= 1.0));
    }

    #[test]
    fn bonus_points_reduce_admitted_cohort_disparity() {
        let dataset = biased_dataset(1500, 5);
        let rubric = WeightedSumRanker::new(vec![1.0]).unwrap();
        let sim = SchoolChoiceSimulator::new(config()).unwrap();
        let before = sim.run(&dataset, &rubric, None).unwrap();
        let bonus = BonusVector::from_named(
            dataset.schema().clone(),
            &[("low_income", 20.0)],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        let after = sim.run(&dataset, &rubric, Some(&bonus)).unwrap();
        assert!(
            after.overall_norm() < before.overall_norm(),
            "bonus should reduce disparity: {} vs {}",
            after.overall_norm(),
            before.overall_norm()
        );
    }

    #[test]
    fn the_match_is_stable() {
        let dataset = biased_dataset(400, 7);
        let rubric = WeightedSumRanker::new(vec![1.0]).unwrap();
        let sim = SchoolChoiceSimulator::new(config()).unwrap();
        let outcome = sim.run(&dataset, &rubric, None).unwrap();
        // Rebuild the inputs to verify stability of the produced matching.
        let view = dataset.full_view();
        let scores = effective_scores(&view, &rubric, &[0.0]);
        let schools: Vec<SchoolRanking> = outcome
            .capacities
            .iter()
            .map(|&cap| SchoolRanking::from_scores(&scores, cap))
            .collect();
        // Preferences are regenerated with the same seed inside run(); rebuild
        // them the same way for the check.
        let c = sim.config();
        let mut rng = StdRng::seed_from_u64(c.seed);
        let students: Vec<StudentPreferences> = (0..dataset.len())
            .map(|_| {
                let mut utilities: Vec<(usize, f64)> = (0..c.num_schools)
                    .map(|school| {
                        let common = 1.0 - school as f64 / c.num_schools as f64;
                        let noise: f64 = rng.gen();
                        (
                            school,
                            c.preference_consensus * common
                                + (1.0 - c.preference_consensus) * noise,
                        )
                    })
                    .collect();
                utilities
                    .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                StudentPreferences::new(
                    utilities
                        .into_iter()
                        .take(c.list_length)
                        .map(|(s, _)| s)
                        .collect(),
                )
            })
            .collect();
        let blocking = is_stable(&students, &schools, &outcome.matching);
        assert!(blocking.is_empty(), "found blocking pairs: {blocking:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let dataset = biased_dataset(500, 9);
        let rubric = WeightedSumRanker::new(vec![1.0]).unwrap();
        let sim = SchoolChoiceSimulator::new(config()).unwrap();
        let a = sim.run(&dataset, &rubric, None).unwrap();
        let b = sim.run(&dataset, &rubric, None).unwrap();
        assert_eq!(a.matching.assignments(), b.matching.assignments());
    }

    #[test]
    fn configuration_validation() {
        assert!(SchoolChoiceSimulator::new(SchoolChoiceConfig {
            num_schools: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SchoolChoiceSimulator::new(SchoolChoiceConfig {
            list_length: 0,
            ..Default::default()
        })
        .is_err());
        assert!(SchoolChoiceSimulator::new(SchoolChoiceConfig {
            capacity_fraction: 0.0,
            ..Default::default()
        })
        .is_err());
        assert!(SchoolChoiceSimulator::new(SchoolChoiceConfig {
            preference_consensus: 2.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn empty_dataset_and_bad_bonus_are_errors() {
        let sim = SchoolChoiceSimulator::new(config()).unwrap();
        let rubric = WeightedSumRanker::new(vec![1.0]).unwrap();
        let empty = Dataset::empty(Schema::from_names(&["s"], &["g"], &[]).unwrap());
        assert!(sim.run(&empty, &rubric, None).is_err());
        let dataset = biased_dataset(100, 1);
        let other_schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        let bonus = BonusVector::zeros(other_schema);
        assert!(sim.run(&dataset, &rubric, Some(&bonus)).is_err());
    }
}
