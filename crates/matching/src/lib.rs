//! # fair-matching — deferred-acceptance school-choice substrate
//!
//! NYC high-school admissions (the paper's motivating application, Section
//! III-A) run a student-proposing deferred-acceptance match: students submit
//! preference lists, schools rank applicants with their own rubrics, and the
//! Gale–Shapley algorithm produces a stable assignment. Because the match
//! decides "how far down its list a school will accept students", the
//! effective selection fraction `k` of each school is unknown in advance —
//! which is exactly why the paper introduces the logarithmically discounted
//! variant of DCA.
//!
//! This crate implements the substrate so the library can demonstrate DCA
//! inside a full admissions pipeline:
//!
//! * [`preferences`] — student preference lists and school ranking lists,
//! * [`deferred_acceptance`] — the student-proposing Gale–Shapley algorithm
//!   with a stability checker,
//! * [`school_choice`] — glue that builds school rankings from
//!   [`fair_core`] rubrics (optionally with per-school bonus vectors),
//!   simulates student preferences, runs the match, and reports per-school
//!   disparity.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod deferred_acceptance;
pub mod preferences;
pub mod school_choice;

pub use deferred_acceptance::{deferred_acceptance, is_stable, Matching};
pub use preferences::{SchoolRanking, StudentPreferences};
pub use school_choice::{AdmissionsOutcome, SchoolChoiceConfig, SchoolChoiceSimulator};
