//! The (Δ+2)-approximation greedy constrained re-ranker of Celis, Straszak &
//! Vishnoi ("Ranking with fairness constraints"), used by the paper as a
//! faster post-processing comparison (Figure 7).
//!
//! "This algorithm works by looking at all (position, item) pairs and greedily
//! selecting the one that most improves the utility … without violating a
//! preset (input) fairness constraint on the maximum number of items of each
//! type." Because position discounts are monotone, the greedy reduces to
//! walking the output positions in order and placing the highest-scored
//! remaining item whose *type counts* stay within the caps. Items may carry
//! several properties (overlapping groups); Δ is the maximum number of
//! properties per item, hence the approximation name.

use fair_core::prelude::*;

/// One maximum-count constraint: at most `max_count` of the items matching
/// `mask` may appear in the produced selection.
#[derive(Debug, Clone, PartialEq)]
pub struct CelisConstraint {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Membership mask over view positions.
    pub mask: Vec<bool>,
    /// Maximum number of matching items allowed in the output.
    pub max_count: usize,
}

impl CelisConstraint {
    /// Cap the members of the (binary) fairness dimension `dim` at
    /// `max_count` items.
    #[must_use]
    pub fn for_group(view: &SampleView<'_>, dim: usize, max_count: usize) -> Self {
        Self {
            name: view
                .schema()
                .fairness()
                .get(dim)
                .map_or_else(|| format!("dim{dim}"), |a| a.name().to_string()),
            mask: view.iter().map(|o| o.in_group(dim)).collect(),
            max_count,
        }
    }

    /// Cap the *non-members* of the fairness dimension `dim` at `max_count`
    /// items — the usual way to force an under-represented group into the
    /// selection.
    #[must_use]
    pub fn for_complement(view: &SampleView<'_>, dim: usize, max_count: usize) -> Self {
        Self {
            name: view
                .schema()
                .fairness()
                .get(dim)
                .map_or_else(|| format!("not-dim{dim}"), |a| format!("not-{}", a.name())),
            mask: view.iter().map(|o| !o.in_group(dim)).collect(),
            max_count,
        }
    }
}

/// Derive maximum-count caps that allow each listed group's *complement* to
/// take at most its proportional share of an `selection_size`-item selection,
/// relaxed by `slack` (a disparity-style tolerance in `[-1, 1]`, e.g. the
/// residual disparity DCA achieved). This is how Figure 7 hands DCA's result
/// to (Δ+2) as its input constraint.
///
/// # Errors
/// Returns an error on an empty view or out-of-range dimensions.
pub fn caps_excluding_group(
    view: &SampleView<'_>,
    dims: &[usize],
    selection_size: usize,
    slack: f64,
) -> Result<Vec<CelisConstraint>> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let num_fairness = view.schema().num_fairness();
    let mut constraints = Vec::with_capacity(dims.len());
    for &dim in dims {
        if dim >= num_fairness {
            return Err(FairError::InvalidConfig {
                reason: format!("fairness dimension {dim} out of range"),
            });
        }
        let member_share =
            view.iter().filter(|o| o.in_group(dim)).count() as f64 / view.len() as f64;
        let complement_share = 1.0 - member_share;
        let cap = ((complement_share + slack) * selection_size as f64)
            .round()
            .max(0.0) as usize;
        constraints.push(CelisConstraint::for_complement(
            view,
            dim,
            cap.min(selection_size),
        ));
    }
    Ok(constraints)
}

/// Run the greedy (Δ+2)-style constrained selection: fill `selection_size`
/// positions in order, each time taking the highest-base-score remaining item
/// that does not push any constraint past its cap. If every remaining item is
/// blocked (the caps are infeasible for a full selection), the highest-scored
/// blocked items fill the remaining seats so the output always has
/// `selection_size` entries.
///
/// Returns the selected view positions in output order.
///
/// # Errors
/// Returns an error on an empty view, a zero selection size, or masks whose
/// length does not match the view.
pub fn celis_rerank<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    selection_size: usize,
    constraints: &[CelisConstraint],
) -> Result<Vec<usize>> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    if selection_size == 0 {
        return Err(FairError::InvalidConfig {
            reason: "selection size must be positive".into(),
        });
    }
    for c in constraints {
        if c.mask.len() != view.len() {
            return Err(FairError::DimensionMismatch {
                what: "constraint mask",
                expected: view.len(),
                actual: c.mask.len(),
            });
        }
    }
    let selection_size = selection_size.min(view.len());

    let ranking = RankedSelection::from_scores(base_scores(view, ranker));
    let mut counts = vec![0_usize; constraints.len()];
    let mut taken = vec![false; view.len()];
    let mut output = Vec::with_capacity(selection_size);

    // Greedy pass respecting the caps.
    for &pos in ranking.order() {
        if output.len() >= selection_size {
            break;
        }
        let violates = constraints
            .iter()
            .enumerate()
            .any(|(ci, c)| c.mask[pos] && counts[ci] + 1 > c.max_count);
        if violates {
            continue;
        }
        for (ci, c) in constraints.iter().enumerate() {
            if c.mask[pos] {
                counts[ci] += 1;
            }
        }
        taken[pos] = true;
        output.push(pos);
    }
    // Infeasible caps: fill the remaining seats with the best blocked items.
    if output.len() < selection_size {
        for &pos in ranking.order() {
            if output.len() >= selection_size {
                break;
            }
            if !taken[pos] {
                taken[pos] = true;
                output.push(pos);
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::metrics::{disparity_of_selection, ndcg_at_k, norm};

    /// 20 objects, 30% group members with depressed scores.
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..20_u64)
            .map(|i| {
                let member = i < 6;
                let score = if member { i as f64 } else { 100.0 + i as f64 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn caps_are_respected() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        // At most 4 non-members in an 8-item selection.
        let constraints = vec![CelisConstraint::for_complement(&view, 0, 4)];
        let selected = celis_rerank(&view, &ranker, 8, &constraints).unwrap();
        assert_eq!(selected.len(), 8);
        let non_members = selected
            .iter()
            .filter(|&&p| !view.object(p).in_group(0))
            .count();
        assert_eq!(non_members, 4);
        let members = selected
            .iter()
            .filter(|&&p| view.object(p).in_group(0))
            .count();
        assert_eq!(members, 4);
    }

    #[test]
    fn constrained_selection_reduces_disparity_with_modest_utility_loss() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let plain = RankedSelection::from_scores(base_scores(&view, &ranker));
        let before = norm(&disparity_of_selection(&view, plain.selected(0.4).unwrap()).unwrap());
        let constraints = caps_excluding_group(&view, &[0], 8, 0.0).unwrap();
        let selected = celis_rerank(&view, &ranker, 8, &constraints).unwrap();
        let after = norm(&disparity_of_selection(&view, &selected).unwrap());
        assert!(
            after < before,
            "(Δ+2) should reduce disparity: {after} vs {before}"
        );
        // Utility of the constrained selection stays reasonable.
        let mut fake_ranking_scores = vec![f64::MIN; view.len()];
        for (rank, &pos) in selected.iter().enumerate() {
            fake_ranking_scores[pos] = (view.len() - rank) as f64;
        }
        let constrained = RankedSelection::from_scores(fake_ranking_scores);
        let u = ndcg_at_k(&view, &ranker, &constrained, 0.4).unwrap();
        assert!(u > 0.3, "utility {u}");
    }

    #[test]
    fn without_constraints_the_selection_is_score_order() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let selected = celis_rerank(&view, &ranker, 5, &[]).unwrap();
        let plain = RankedSelection::from_scores(base_scores(&view, &ranker));
        assert_eq!(selected.as_slice(), plain.top(5));
    }

    #[test]
    fn infeasible_caps_still_fill_every_seat() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        // Nobody allowed: cap of zero on both the group and its complement.
        let constraints = vec![
            CelisConstraint::for_group(&view, 0, 0),
            CelisConstraint::for_complement(&view, 0, 0),
        ];
        let selected = celis_rerank(&view, &ranker, 6, &constraints).unwrap();
        assert_eq!(selected.len(), 6);
    }

    #[test]
    fn caps_from_slack_scale_with_the_target() {
        let d = dataset();
        let view = d.full_view();
        let tight = caps_excluding_group(&view, &[0], 10, 0.0).unwrap();
        let loose = caps_excluding_group(&view, &[0], 10, 0.2).unwrap();
        assert_eq!(tight.len(), 1);
        assert!(tight[0].max_count <= loose[0].max_count);
        // Population is 70% non-members -> proportional cap of 7 in 10 seats.
        assert_eq!(tight[0].max_count, 7);
    }

    #[test]
    fn constraint_helpers_use_attribute_names() {
        let d = dataset();
        let view = d.full_view();
        assert_eq!(CelisConstraint::for_group(&view, 0, 3).name, "g");
        assert_eq!(CelisConstraint::for_complement(&view, 0, 3).name, "not-g");
    }

    #[test]
    fn validation_errors() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        assert!(celis_rerank(&view, &ranker, 0, &[]).is_err());
        let bad_mask = CelisConstraint {
            name: "bad".into(),
            mask: vec![true],
            max_count: 1,
        };
        assert!(celis_rerank(&view, &ranker, 5, &[bad_mask]).is_err());
        assert!(caps_excluding_group(&view, &[9], 5, 0.0).is_err());
        let empty = Dataset::empty(Schema::from_names(&["s"], &["g"], &[]).unwrap());
        assert!(celis_rerank(&empty.full_view(), &ranker, 5, &[]).is_err());
        assert!(caps_excluding_group(&empty.full_view(), &[0], 5, 0.0).is_err());
    }

    #[test]
    fn selection_size_is_clamped_to_view_size() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let selected = celis_rerank(&view, &ranker, 100, &[]).unwrap();
        assert_eq!(selected.len(), d.len());
    }
}
