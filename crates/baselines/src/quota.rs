//! Quota (set-aside) selection — the real-world baseline of Figure 6.
//!
//! "Many real-world settings, such as the NYC school system, use one single
//! quota for all the different fairness dimensions": a fraction of the seats
//! is reserved for applicants exhibiting *any* of the protected
//! characteristics; reserved seats are filled by the best-ranked protected
//! applicants, the remaining seats by the best-ranked applicants overall. If
//! there are not enough protected applicants the unused reserved seats return
//! to the general pool (a *soft* quota, which is how NYC set-asides work).

use fair_core::prelude::*;

/// Configuration of a single-quota set-aside.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaConfig {
    /// Fraction of the selection reserved for protected applicants, in `[0, 1]`.
    pub reserve_fraction: f64,
    /// Fairness dimensions whose members count as protected (an applicant is
    /// protected if it belongs to *any* of these groups, membership
    /// thresholded at 0.5 for continuous attributes).
    pub protected_dims: Vec<usize>,
}

impl QuotaConfig {
    /// A quota reserving `reserve_fraction` of the seats for members of any of
    /// the given fairness dimensions.
    ///
    /// # Errors
    /// Returns an error if the fraction is outside `[0, 1]` or no dimensions
    /// are given.
    pub fn new(reserve_fraction: f64, protected_dims: Vec<usize>) -> Result<Self> {
        if !(0.0..=1.0).contains(&reserve_fraction) || !reserve_fraction.is_finite() {
            return Err(FairError::InvalidConfig {
                reason: format!("reserve fraction must lie in [0, 1], got {reserve_fraction}"),
            });
        }
        if protected_dims.is_empty() {
            return Err(FairError::InvalidConfig {
                reason: "quota requires at least one protected dimension".into(),
            });
        }
        Ok(Self {
            reserve_fraction,
            protected_dims,
        })
    }
}

/// Select the top-`k` fraction of a view under a set-aside quota.
///
/// Returns the selected view positions (reserved seats first, then general
/// seats, each in score order).
///
/// # Errors
/// Returns an error on an empty view, an invalid `k`, or out-of-range
/// protected dimensions.
pub fn quota_select<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    k: f64,
    config: &QuotaConfig,
) -> Result<Vec<usize>> {
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let dims = view.schema().num_fairness();
    if let Some(&bad) = config.protected_dims.iter().find(|d| **d >= dims) {
        return Err(FairError::InvalidConfig {
            reason: format!("protected dimension {bad} out of range (schema has {dims})"),
        });
    }
    let total_seats = selection_size(view.len(), k)?;
    let reserved_seats = ((total_seats as f64) * config.reserve_fraction).round() as usize;

    let scores = base_scores(view, ranker);
    let ranking = RankedSelection::from_scores(scores);

    let is_protected = |pos: usize| {
        config
            .protected_dims
            .iter()
            .any(|&d| view.object(pos).in_group(d))
    };

    // Fill the reserved seats with the best-ranked protected applicants.
    let mut selected = Vec::with_capacity(total_seats);
    let mut taken = vec![false; view.len()];
    let mut filled_reserved = 0_usize;
    for &pos in ranking.order() {
        if filled_reserved >= reserved_seats {
            break;
        }
        if is_protected(pos) {
            selected.push(pos);
            taken[pos] = true;
            filled_reserved += 1;
        }
    }
    // Fill the remaining seats (including any unused reserved seats) with the
    // best-ranked applicants overall.
    for &pos in ranking.order() {
        if selected.len() >= total_seats {
            break;
        }
        if !taken[pos] {
            selected.push(pos);
            taken[pos] = true;
        }
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::metrics::{disparity_of_selection, norm};

    /// 20 objects, 30% protected, protected scores pushed to the bottom.
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..20_u64)
            .map(|i| {
                let member = i < 6;
                let score = if member { i as f64 } else { 100.0 + i as f64 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn quota_reserves_the_requested_share() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(0.5, vec![0]).unwrap();
        // Top 40% = 8 seats; 4 reserved for protected applicants.
        let selected = quota_select(&view, &ranker, 0.4, &config).unwrap();
        assert_eq!(selected.len(), 8);
        let protected = selected
            .iter()
            .filter(|&&p| view.object(p).in_group(0))
            .count();
        assert_eq!(protected, 4);
    }

    #[test]
    fn quota_reduces_disparity_relative_to_no_intervention() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let plain = RankedSelection::from_scores(base_scores(&view, &ranker));
        let before = norm(&disparity_of_selection(&view, plain.selected(0.4).unwrap()).unwrap());
        let config = QuotaConfig::new(0.3, vec![0]).unwrap();
        let selected = quota_select(&view, &ranker, 0.4, &config).unwrap();
        let after = norm(&disparity_of_selection(&view, &selected).unwrap());
        assert!(
            after < before,
            "quota should reduce disparity: {after} vs {before}"
        );
    }

    #[test]
    fn zero_reserve_reproduces_the_unconstrained_selection() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(0.0, vec![0]).unwrap();
        let selected = quota_select(&view, &ranker, 0.25, &config).unwrap();
        let plain = RankedSelection::from_scores(base_scores(&view, &ranker));
        let mut expected = plain.selected(0.25).unwrap().to_vec();
        let mut got = selected.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn soft_quota_returns_unused_seats_to_the_general_pool() {
        // Only one protected object but half the seats reserved.
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..10_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![if i == 0 { 1.0 } else { 0.0 }],
                    None,
                )
            })
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(0.5, vec![0]).unwrap();
        let selected = quota_select(&view, &ranker, 0.6, &config).unwrap();
        assert_eq!(
            selected.len(),
            6,
            "all seats are filled even without enough protected applicants"
        );
    }

    #[test]
    fn reserved_seats_go_to_the_best_protected_applicants() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(1.0, vec![0]).unwrap();
        let selected = quota_select(&view, &ranker, 0.2, &config).unwrap();
        // 4 seats, all reserved: the four best-scoring protected objects are 5,4,3,2.
        let ids: Vec<u64> = selected.iter().map(|&p| view.object(p).id().0).collect();
        assert_eq!(ids, vec![5, 4, 3, 2]);
    }

    #[test]
    fn protected_membership_is_any_of_the_listed_dimensions() {
        let schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![5.0], vec![0.0, 0.0], None),
            DataObject::new_unchecked(1, vec![4.0], vec![1.0, 0.0], None),
            DataObject::new_unchecked(2, vec![3.0], vec![0.0, 1.0], None),
            DataObject::new_unchecked(3, vec![2.0], vec![0.0, 0.0], None),
        ];
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(1.0, vec![0, 1]).unwrap();
        let selected = quota_select(&view, &ranker, 0.5, &config).unwrap();
        let ids: Vec<u64> = selected.iter().map(|&p| view.object(p).id().0).collect();
        assert_eq!(ids, vec![1, 2], "both protected dimensions are honoured");
    }

    #[test]
    fn validation_errors() {
        assert!(QuotaConfig::new(1.5, vec![0]).is_err());
        assert!(QuotaConfig::new(-0.1, vec![0]).is_err());
        assert!(QuotaConfig::new(0.5, vec![]).is_err());
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = QuotaConfig::new(0.5, vec![9]).unwrap();
        assert!(quota_select(&view, &ranker, 0.5, &config).is_err());
        let config = QuotaConfig::new(0.5, vec![0]).unwrap();
        assert!(quota_select(&view, &ranker, 0.0, &config).is_err());
    }
}
