//! Cartesian-product subgroups for methods that require non-overlapping
//! protected groups.
//!
//! Multinomial FA\*IR "only works on non-overlapping fairness parameters, so
//! we looked at the Cartesian product of all our parameters and picked the 3
//! most-discriminated against subgroups as our barometers of fairness"
//! (Section VI-C2). This module builds those subgroups from a dataset's binary
//! fairness attributes and ranks them by how under-represented they are in the
//! uncorrected selection.

use fair_core::prelude::*;

/// One Cartesian-product subgroup: a specific combination of binary fairness
/// attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgroup {
    /// The binary fairness dimensions this subgroup is defined over.
    pub dims: Vec<usize>,
    /// The membership pattern: `pattern[i]` is the required value of
    /// `dims[i]` (true = member).
    pub pattern: Vec<bool>,
    /// Number of objects matching the pattern.
    pub size: usize,
    /// Share of the population matching the pattern.
    pub population_share: f64,
}

impl Subgroup {
    /// Whether an object belongs to this subgroup.
    #[must_use]
    pub fn contains(&self, object: ObjectView<'_>) -> bool {
        self.dims
            .iter()
            .zip(&self.pattern)
            .all(|(&d, &want)| object.in_group(d) == want)
    }

    /// Human-readable label such as `low_income=1,ell=0,special_ed=1`.
    #[must_use]
    pub fn label(&self, schema: &SchemaRef) -> String {
        self.dims
            .iter()
            .zip(&self.pattern)
            .map(|(&d, &v)| format!("{}={}", schema.fairness()[d].name(), u8::from(v)))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Enumerate every Cartesian-product subgroup over the given binary fairness
/// dimensions (2^|dims| patterns), with sizes measured on `view`. Subgroups
/// with no members are omitted.
///
/// # Errors
/// Returns an error if `dims` is empty, contains duplicates, is out of range,
/// or if the view is empty.
pub fn cartesian_subgroups(view: &SampleView<'_>, dims: &[usize]) -> Result<Vec<Subgroup>> {
    if dims.is_empty() {
        return Err(FairError::InvalidConfig {
            reason: "subgroup construction requires at least one dimension".into(),
        });
    }
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let max_dim = view.schema().num_fairness();
    let mut seen = std::collections::HashSet::new();
    for &d in dims {
        if d >= max_dim {
            return Err(FairError::InvalidConfig {
                reason: format!("fairness dimension {d} out of range (schema has {max_dim})"),
            });
        }
        if !seen.insert(d) {
            return Err(FairError::InvalidConfig {
                reason: format!("duplicate fairness dimension {d}"),
            });
        }
    }

    let n_patterns = 1_usize << dims.len();
    let mut counts = vec![0_usize; n_patterns];
    for object in view.iter() {
        let mut code = 0_usize;
        for (bit, &d) in dims.iter().enumerate() {
            if object.in_group(d) {
                code |= 1 << bit;
            }
        }
        counts[code] += 1;
    }

    let total = view.len() as f64;
    let mut out = Vec::new();
    for (code, &count) in counts.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let pattern: Vec<bool> = (0..dims.len()).map(|bit| code & (1 << bit) != 0).collect();
        out.push(Subgroup {
            dims: dims.to_vec(),
            pattern,
            size: count,
            population_share: count as f64 / total,
        });
    }
    Ok(out)
}

/// The `count` subgroups most under-represented in the top-`k` selection of
/// the *uncorrected* ranking, sorted from most to least disadvantaged.
///
/// "Disadvantage" is measured as `selected_share − population_share` (the
/// subgroup's own disparity term); the most negative values come first.
/// Subgroups that contain every object of the view are skipped.
///
/// # Errors
/// Returns an error for invalid dimensions, empty views, or an invalid `k`.
pub fn most_disadvantaged_subgroups<R: Ranker + ?Sized>(
    view: &SampleView<'_>,
    ranker: &R,
    dims: &[usize],
    k: f64,
    count: usize,
) -> Result<Vec<(Subgroup, f64)>> {
    let subgroups = cartesian_subgroups(view, dims)?;
    let ranking = RankedSelection::from_scores(base_scores(view, ranker));
    let selected = ranking.selected(k)?;
    let selected_count = selected.len() as f64;

    let mut scored: Vec<(Subgroup, f64)> = subgroups
        .into_iter()
        .filter(|g| g.size < view.len())
        .map(|g| {
            let in_selection = selected
                .iter()
                .filter(|&&pos| g.contains(view.object(pos)))
                .count() as f64;
            let disparity = in_selection / selected_count - g.population_share;
            (g, disparity)
        })
        .collect();
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(count);
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Objects with two binary attributes; the (1,1) intersection scores lowest.
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        let mut objects = Vec::new();
        let mut id = 0_u64;
        // 8 with neither attribute (highest scores), 3 with a only, 3 with b
        // only, 6 with both (lowest scores) — the intersection is both the
        // largest protected subgroup and the most excluded one.
        for _ in 0..8 {
            objects.push(DataObject::new_unchecked(
                id,
                vec![100.0 + id as f64],
                vec![0.0, 0.0],
                None,
            ));
            id += 1;
        }
        for _ in 0..3 {
            objects.push(DataObject::new_unchecked(
                id,
                vec![50.0 + id as f64],
                vec![1.0, 0.0],
                None,
            ));
            id += 1;
        }
        for _ in 0..3 {
            objects.push(DataObject::new_unchecked(
                id,
                vec![40.0 + id as f64],
                vec![0.0, 1.0],
                None,
            ));
            id += 1;
        }
        for _ in 0..6 {
            objects.push(DataObject::new_unchecked(
                id,
                vec![10.0 + id as f64],
                vec![1.0, 1.0],
                None,
            ));
            id += 1;
        }
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn cartesian_enumeration_counts_every_pattern() {
        let d = dataset();
        let view = d.full_view();
        let groups = cartesian_subgroups(&view, &[0, 1]).unwrap();
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().map(|g| g.size).sum();
        assert_eq!(total, d.len());
        let both = groups
            .iter()
            .find(|g| g.pattern == vec![true, true])
            .unwrap();
        assert_eq!(both.size, 6);
        assert!((both.population_share - 0.3).abs() < 1e-12);
    }

    #[test]
    fn subgroup_membership_and_labels() {
        let d = dataset();
        let view = d.full_view();
        let groups = cartesian_subgroups(&view, &[0, 1]).unwrap();
        let both = groups
            .iter()
            .find(|g| g.pattern == vec![true, true])
            .unwrap();
        assert!(both.contains(view.object(d.len() - 1)));
        assert!(!both.contains(view.object(0)));
        assert_eq!(both.label(view.schema()), "a=1,b=1");
    }

    #[test]
    fn intersectional_subgroup_is_the_most_disadvantaged() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let worst = most_disadvantaged_subgroups(&view, &ranker, &[0, 1], 0.4, 3).unwrap();
        assert_eq!(worst.len(), 3);
        // The (a=1, b=1) intersection never appears in the top 40%.
        assert_eq!(worst[0].0.pattern, vec![true, true]);
        assert!(worst[0].1 < 0.0);
        // Ordered from most to least disadvantaged.
        assert!(worst[0].1 <= worst[1].1 && worst[1].1 <= worst[2].1);
    }

    #[test]
    fn empty_patterns_are_omitted() {
        let schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        // No object has b=1, so patterns with b=1 are absent.
        let objects = (0..6_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![f64::from(u8::from(i % 2 == 0)), 0.0],
                    None,
                )
            })
            .collect();
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        let groups = cartesian_subgroups(&view, &[0, 1]).unwrap();
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| !g.pattern[1]));
    }

    #[test]
    fn validation_errors() {
        let d = dataset();
        let view = d.full_view();
        assert!(cartesian_subgroups(&view, &[]).is_err());
        assert!(cartesian_subgroups(&view, &[0, 0]).is_err());
        assert!(cartesian_subgroups(&view, &[7]).is_err());
        let empty = Dataset::empty(Schema::from_names(&["s"], &["a"], &[]).unwrap());
        assert!(cartesian_subgroups(&empty.full_view(), &[0]).is_err());
    }
}
