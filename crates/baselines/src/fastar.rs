//! Multinomial FA\*IR — the post-processing fair top-k re-ranker of Zehlike
//! et al. ("Fair top-k ranking with multiple protected groups"), which the
//! paper uses as its main state-of-the-art comparison (Table II).
//!
//! FA\*IR guarantees *ranked group fairness*: at every prefix of the ranking,
//! each protected group must appear at least as often as the `α`-quantile of a
//! binomial draw with the group's target proportion. The per-prefix minimum
//! counts form the group's **mtable**; the re-ranker walks the positions in
//! order, inserting the best remaining candidate of a group whose mtable
//! constraint would otherwise be violated, and the best remaining candidate
//! overall when no constraint binds.
//!
//! The multinomial generalization requires non-overlapping groups; the paper
//! feeds it the Cartesian-product subgroups built by
//! [`crate::subgroups`]. For the multiple-groups significance adjustment we
//! use the Šidák correction `α_c = 1 − (1 − α)^(1/|G|)`, a standard
//! multiple-testing correction that keeps the family-wise significance at
//! `α` (the reference implementation performs a model-specific binary-search
//! adjustment; the resulting mtables differ by at most a position or two,
//! which does not change the comparison's conclusions).
//!
//! One consequence of per-group mtables: when two or more groups' requirements
//! increase at the *same* prefix only one of them can be served at that
//! position, so a requirement may be met up to `|G| − 1` positions late; the
//! requirements always hold at the end of the produced ranking.

use crate::subgroups::Subgroup;
use fair_core::prelude::*;

/// The minimum number of protected candidates required at every prefix
/// `1..=n`: `mtable[i-1]` is the minimum count within the top-`i`.
///
/// `mtable[i-1]` is the largest integer `m` such that
/// `P(Binomial(i, p) < m) <= alpha` — i.e. having fewer than `m` protected
/// candidates in a fair (proportion-`p`) ranking of length `i` would be a
/// statistically significant shortfall at level `alpha`.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or `alpha` outside `(0, 1)`.
#[must_use]
pub fn binomial_mtable(n: usize, p: f64, alpha: f64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&p), "proportion must lie in [0, 1]");
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "significance must lie in (0, 1)"
    );
    let mut table = Vec::with_capacity(n);
    for i in 1..=n {
        // Walk the binomial CDF of Binomial(i, p) until it exceeds alpha.
        // The required minimum is the number of terms whose cumulative
        // probability stays <= alpha.
        let mut cdf = 0.0_f64;
        let mut pmf = (1.0 - p).powi(i as i32); // P(X = 0)
        let mut m = 0_usize;
        loop {
            cdf += pmf;
            if cdf > alpha || m >= i {
                break;
            }
            // Advance P(X = m) -> P(X = m + 1).
            pmf *= (i - m) as f64 / (m + 1) as f64 * (p / (1.0 - p));
            m += 1;
        }
        table.push(m);
    }
    table
}

/// One protected group handed to FA\*IR: a membership mask over view
/// positions and a target (minimum) proportion.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectedGroup {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Membership mask over view positions.
    pub members: Vec<bool>,
    /// Target minimum proportion of the group at every prefix (usually its
    /// population share).
    pub target_proportion: f64,
}

impl ProtectedGroup {
    /// Build a protected group from a Cartesian-product [`Subgroup`], using
    /// the subgroup's population share as the target proportion.
    #[must_use]
    pub fn from_subgroup(view: &SampleView<'_>, subgroup: &Subgroup) -> Self {
        let members: Vec<bool> = view.iter().map(|o| subgroup.contains(o)).collect();
        Self {
            name: subgroup.label(view.schema()),
            members,
            target_proportion: subgroup.population_share,
        }
    }
}

/// Configuration of the FA\*IR re-ranker.
#[derive(Debug, Clone, PartialEq)]
pub struct FaStarConfig {
    /// Family-wise significance level (the reference implementation's default
    /// is 0.1).
    pub alpha: f64,
    /// Length of the re-ranked output (usually the selection size).
    pub output_size: usize,
}

impl FaStarConfig {
    /// Build a configuration.
    ///
    /// # Errors
    /// Returns an error for `alpha` outside `(0, 1)` or a zero output size.
    pub fn new(alpha: f64, output_size: usize) -> Result<Self> {
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(FairError::InvalidConfig {
                reason: format!("alpha must lie in (0, 1), got {alpha}"),
            });
        }
        if output_size == 0 {
            return Err(FairError::InvalidConfig {
                reason: "output size must be positive".into(),
            });
        }
        Ok(Self { alpha, output_size })
    }
}

/// The Multinomial FA\*IR re-ranker.
#[derive(Debug, Clone)]
pub struct FaStarRanker {
    config: FaStarConfig,
    groups: Vec<ProtectedGroup>,
}

impl FaStarRanker {
    /// Create a re-ranker for the given (non-overlapping) protected groups.
    ///
    /// # Errors
    /// Returns an error if no groups are given, if any two groups overlap, or
    /// if a target proportion is outside `[0, 1]`.
    pub fn new(config: FaStarConfig, groups: Vec<ProtectedGroup>) -> Result<Self> {
        if groups.is_empty() {
            return Err(FairError::InvalidConfig {
                reason: "FA*IR requires at least one protected group".into(),
            });
        }
        let len = groups[0].members.len();
        for g in &groups {
            if g.members.len() != len {
                return Err(FairError::InvalidConfig {
                    reason: "all group masks must cover the same objects".into(),
                });
            }
            if !(0.0..=1.0).contains(&g.target_proportion) {
                return Err(FairError::InvalidConfig {
                    reason: format!(
                        "target proportion {} for group `{}` must lie in [0, 1]",
                        g.target_proportion, g.name
                    ),
                });
            }
        }
        for pos in 0..len {
            let memberships = groups.iter().filter(|g| g.members[pos]).count();
            if memberships > 1 {
                return Err(FairError::InvalidConfig {
                    reason: format!(
                        "object at position {pos} belongs to {memberships} groups; FA*IR requires non-overlapping groups"
                    ),
                });
            }
        }
        Ok(Self { config, groups })
    }

    /// The protected groups.
    #[must_use]
    pub fn groups(&self) -> &[ProtectedGroup] {
        &self.groups
    }

    /// Re-rank a view: returns the top `output_size` view positions in the
    /// fair order.
    ///
    /// # Errors
    /// Returns an error if the view size does not match the group masks or the
    /// requested output exceeds the view size.
    pub fn rerank<R: Ranker + ?Sized>(
        &self,
        view: &SampleView<'_>,
        ranker: &R,
    ) -> Result<Vec<usize>> {
        let n = view.len();
        if n == 0 {
            return Err(FairError::EmptyDataset);
        }
        if self.groups[0].members.len() != n {
            return Err(FairError::DimensionMismatch {
                what: "group membership mask",
                expected: n,
                actual: self.groups[0].members.len(),
            });
        }
        let output_size = self.config.output_size.min(n);

        // Šidák-corrected per-group significance.
        let alpha_c = 1.0 - (1.0 - self.config.alpha).powf(1.0 / self.groups.len() as f64);
        let mtables: Vec<Vec<usize>> = self
            .groups
            .iter()
            .map(|g| binomial_mtable(output_size, g.target_proportion, alpha_c))
            .collect();

        // Per-group candidate queues ordered by score (best first), plus the
        // global queue.
        let scores = base_scores(view, ranker);
        let global = RankedSelection::from_scores(scores);
        let group_of = |pos: usize| self.groups.iter().position(|g| g.members[pos]);

        let mut taken = vec![false; n];
        let mut counts = vec![0_usize; self.groups.len()];
        let mut group_cursors = vec![0_usize; self.groups.len()];
        let mut global_cursor = 0_usize;
        // Pre-split the global order into per-group orders for O(1) "best
        // remaining member of group g" queries.
        let mut group_orders: Vec<Vec<usize>> = vec![Vec::new(); self.groups.len()];
        for &pos in global.order() {
            if let Some(g) = group_of(pos) {
                group_orders[g].push(pos);
            }
        }

        let mut output = Vec::with_capacity(output_size);
        while output.len() < output_size {
            // A group's constraint binds when its current count is below the
            // mtable requirement for the prefix ending at the current rank
            // (which is exactly the number of items already emitted).
            let rank = output.len();
            let binding: Vec<usize> = (0..self.groups.len())
                .filter(|&g| {
                    counts[g] < mtables[g][rank] && group_cursors[g] < group_orders[g].len()
                })
                .collect();

            let chosen = if binding.is_empty() {
                // Best remaining candidate overall.
                loop {
                    let pos = global.order()[global_cursor];
                    global_cursor += 1;
                    if !taken[pos] {
                        break pos;
                    }
                }
            } else {
                // Among the binding groups, take the one whose best remaining
                // candidate scores highest (ties broken by group order).
                let mut best: Option<(usize, usize)> = None; // (group, pos)
                for &g in &binding {
                    // Advance past already-taken members.
                    while group_cursors[g] < group_orders[g].len()
                        && taken[group_orders[g][group_cursors[g]]]
                    {
                        group_cursors[g] += 1;
                    }
                    if group_cursors[g] >= group_orders[g].len() {
                        continue;
                    }
                    let pos = group_orders[g][group_cursors[g]];
                    let better = match best {
                        None => true,
                        Some((_, best_pos)) => {
                            global.rank_of(pos).unwrap_or(usize::MAX)
                                < global.rank_of(best_pos).unwrap_or(usize::MAX)
                        }
                    };
                    if better {
                        best = Some((g, pos));
                    }
                }
                match best {
                    Some((g, pos)) => {
                        group_cursors[g] += 1;
                        pos
                    }
                    // Every binding group is exhausted: fall back to the
                    // global queue (the constraint can no longer be met).
                    None => loop {
                        let pos = global.order()[global_cursor];
                        global_cursor += 1;
                        if !taken[pos] {
                            break pos;
                        }
                    },
                }
            };

            taken[chosen] = true;
            if let Some(g) = group_of(chosen) {
                counts[g] += 1;
            }
            output.push(chosen);
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::metrics::{disparity_of_selection, norm};

    #[test]
    fn mtable_is_monotone_and_tracks_the_proportion() {
        let t = binomial_mtable(100, 0.3, 0.1);
        assert_eq!(t.len(), 100);
        // Monotone non-decreasing.
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        // Never demands more than the expected count, and approaches it for
        // long prefixes.
        for (i, &m) in t.iter().enumerate() {
            assert!(m as f64 <= 0.3 * (i + 1) as f64 + 1.0);
        }
        assert!(
            t[99] >= 20,
            "at n=100, p=0.3, alpha=0.1 the requirement is near 24: {}",
            t[99]
        );
    }

    #[test]
    fn mtable_zero_proportion_requires_nothing() {
        let t = binomial_mtable(50, 0.0, 0.1);
        assert!(t.iter().all(|&m| m == 0));
    }

    #[test]
    fn mtable_small_alpha_requires_less() {
        let strict = binomial_mtable(60, 0.4, 0.2);
        let lenient = binomial_mtable(60, 0.4, 0.01);
        assert!(strict.iter().zip(&lenient).all(|(s, l)| l <= s));
    }

    /// 40 objects: 10 members of group A (bottom scores), 30 others.
    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["s"], &["a"], &[]).unwrap();
        let objects = (0..40_u64)
            .map(|i| {
                let member = i < 10;
                let score = if member { i as f64 } else { 100.0 + i as f64 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn group_a(view: &SampleView<'_>) -> ProtectedGroup {
        ProtectedGroup {
            name: "a".into(),
            members: view.iter().map(|o| o.in_group(0)).collect(),
            target_proportion: 0.25,
        }
    }

    #[test]
    fn rerank_meets_the_mtable_at_every_prefix() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = FaStarConfig::new(0.1, 20).unwrap();
        let fastar = FaStarRanker::new(config, vec![group_a(&view)]).unwrap();
        let order = fastar.rerank(&view, &ranker).unwrap();
        assert_eq!(order.len(), 20);
        let mtable = binomial_mtable(20, 0.25, 0.1);
        let mut count = 0;
        for (i, &pos) in order.iter().enumerate() {
            if view.object(pos).in_group(0) {
                count += 1;
            }
            assert!(
                count >= mtable[i],
                "prefix {i}: {count} < required {}",
                mtable[i]
            );
        }
    }

    #[test]
    fn rerank_reduces_disparity_of_the_selection() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let plain = RankedSelection::from_scores(base_scores(&view, &ranker));
        let before = norm(&disparity_of_selection(&view, plain.selected(0.5).unwrap()).unwrap());
        let config = FaStarConfig::new(0.1, 20).unwrap();
        let fastar = FaStarRanker::new(config, vec![group_a(&view)]).unwrap();
        let order = fastar.rerank(&view, &ranker).unwrap();
        let after = norm(&disparity_of_selection(&view, &order).unwrap());
        assert!(
            after < before,
            "FA*IR should reduce disparity: {after} vs {before}"
        );
    }

    #[test]
    fn without_binding_constraints_the_order_is_score_order() {
        let d = dataset();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        // Zero target proportion -> no constraint ever binds.
        let group = ProtectedGroup {
            target_proportion: 0.0,
            ..group_a(&view)
        };
        let config = FaStarConfig::new(0.1, 10).unwrap();
        let fastar = FaStarRanker::new(config, vec![group]).unwrap();
        let order = fastar.rerank(&view, &ranker).unwrap();
        let plain = RankedSelection::from_scores(base_scores(&view, &ranker));
        assert_eq!(order.as_slice(), plain.top(10));
    }

    #[test]
    fn multinomial_case_handles_three_groups() {
        // Three disjoint groups with distinct score bands.
        let schema = Schema::from_names(&["s"], &["a", "b", "c"], &[]).unwrap();
        let mut objects = Vec::new();
        let mut id = 0_u64;
        for (dim, base) in [(0_usize, 0.0), (1, 30.0), (2, 60.0)] {
            for _ in 0..10 {
                let mut fairness = vec![0.0; 3];
                fairness[dim] = 1.0;
                objects.push(DataObject::new_unchecked(
                    id,
                    vec![base + id as f64],
                    fairness,
                    None,
                ));
                id += 1;
            }
        }
        // 30 unprotected objects with the highest scores.
        for _ in 0..30 {
            objects.push(DataObject::new_unchecked(
                id,
                vec![200.0 + id as f64],
                vec![0.0; 3],
                None,
            ));
            id += 1;
        }
        let d = Dataset::new(schema, objects).unwrap();
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let groups: Vec<ProtectedGroup> = (0..3)
            .map(|dim| ProtectedGroup {
                name: format!("g{dim}"),
                members: view.iter().map(|o| o.in_group(dim)).collect(),
                target_proportion: 1.0 / 6.0,
            })
            .collect();
        let config = FaStarConfig::new(0.1, 30).unwrap();
        let fastar = FaStarRanker::new(config, groups).unwrap();
        let order = fastar.rerank(&view, &ranker).unwrap();
        // Every protected group must appear in the output.
        for dim in 0..3 {
            assert!(
                order.iter().any(|&p| view.object(p).in_group(dim)),
                "group {dim} missing from the fair output"
            );
        }
    }

    #[test]
    fn overlapping_groups_are_rejected() {
        let d = dataset();
        let view = d.full_view();
        let a = group_a(&view);
        let overlapping = ProtectedGroup {
            name: "copy".into(),
            ..a.clone()
        };
        let config = FaStarConfig::new(0.1, 10).unwrap();
        assert!(FaStarRanker::new(config, vec![a, overlapping]).is_err());
    }

    #[test]
    fn configuration_validation() {
        assert!(FaStarConfig::new(0.0, 10).is_err());
        assert!(FaStarConfig::new(1.0, 10).is_err());
        assert!(FaStarConfig::new(0.1, 0).is_err());
        let d = dataset();
        let view = d.full_view();
        let config = FaStarConfig::new(0.1, 10).unwrap();
        assert!(FaStarRanker::new(config.clone(), vec![]).is_err());
        let bad_prop = ProtectedGroup {
            target_proportion: 1.5,
            ..group_a(&view)
        };
        assert!(FaStarRanker::new(config, vec![bad_prop]).is_err());
    }

    #[test]
    #[should_panic(expected = "significance")]
    fn mtable_rejects_bad_alpha() {
        let _ = binomial_mtable(10, 0.5, 1.5);
    }
}
