//! # fair-baselines — comparison methods used in the paper's evaluation
//!
//! DCA is compared against three families of interventions (Section VI-C):
//!
//! 1. **Quota / set-aside systems** ([`quota`]) — the mechanism NYC actually
//!    uses: a fraction of the seats is reserved for students exhibiting any
//!    dimension of disadvantage (Figure 6);
//! 2. **Multinomial FA\*IR** ([`fastar`]) — the post-processing re-ranker of
//!    Zehlike et al. that enforces a per-prefix minimum representation for
//!    each (non-overlapping) protected group via mtables (Table II);
//! 3. **(Δ+2)-approximation** ([`celis`]) — the greedy constrained-ranking
//!    approximation of Celis et al. that maximizes utility subject to
//!    maximum-count constraints (Figure 7).
//!
//! All three are reimplemented from scratch in Rust against the
//! [`fair_core`] data model so they can be benchmarked head-to-head with DCA
//! on identical inputs. [`subgroups`] provides the Cartesian-product subgroup
//! construction FA\*IR needs because it "only works on non-overlapping
//! fairness parameters".

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod celis;
pub mod fastar;
pub mod quota;
pub mod subgroups;

pub use celis::{caps_excluding_group, celis_rerank, CelisConstraint};
pub use fastar::{binomial_mtable, FaStarConfig, FaStarRanker, ProtectedGroup};
pub use quota::{quota_select, QuotaConfig};
pub use subgroups::{cartesian_subgroups, most_disadvantaged_subgroups, Subgroup};
