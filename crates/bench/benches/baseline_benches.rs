//! Criterion benchmarks comparing the cost of DCA against the baseline
//! interventions (Section VI-C3's efficiency discussion): the quota selection,
//! Multinomial FA*IR re-ranking, and the (Δ+2)-approximation, at small and
//! large selection fractions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fair_baselines::{
    caps_excluding_group, celis_rerank, most_disadvantaged_subgroups, quota_select, FaStarConfig,
    FaStarRanker, ProtectedGroup, QuotaConfig,
};
use fair_core::prelude::*;
use fair_data::{SchoolConfig, SchoolGenerator};
use std::hint::black_box;
use std::time::Duration;

fn school(n: usize) -> Dataset {
    SchoolGenerator::new(SchoolConfig::small(n, 11))
        .generate()
        .into_dataset()
}

fn quota_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/quota");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let dataset = school(20_000);
    let view = dataset.full_view();
    let rubric = SchoolGenerator::rubric();
    let config = QuotaConfig::new(0.7, vec![0, 1, 2]).unwrap();
    for &k in &[0.05_f64, 0.3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(quota_select(&view, &rubric, k, &config).unwrap()));
        });
    }
    group.finish();
}

fn fastar_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/fastar");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    // FA*IR is run on a district-sized population, as in the paper.
    let dataset = school(2_500);
    let view = dataset.full_view();
    let rubric = SchoolGenerator::rubric();
    let worst = most_disadvantaged_subgroups(&view, &rubric, &[0, 1, 2], 0.05, 3).unwrap();
    let groups: Vec<ProtectedGroup> = worst
        .iter()
        .map(|(g, _)| ProtectedGroup::from_subgroup(&view, g))
        .collect();
    for &k in &[0.05_f64, 0.3] {
        let output = selection_size(dataset.len(), k).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let ranker =
                    FaStarRanker::new(FaStarConfig::new(0.1, output).unwrap(), groups.clone())
                        .unwrap();
                black_box(ranker.rerank(&view, &rubric).unwrap())
            });
        });
    }
    group.finish();
}

fn celis_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/delta2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let dataset = school(20_000);
    let view = dataset.full_view();
    let rubric = SchoolGenerator::rubric();
    for &k in &[0.05_f64, 0.3] {
        let output = selection_size(dataset.len(), k).unwrap();
        let constraints = caps_excluding_group(&view, &[0, 1, 2], output, 0.02).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(celis_rerank(&view, &rubric, output, &constraints).unwrap()));
        });
    }
    group.finish();
}

fn dca_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline/dca_reference");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let dataset = school(20_000);
    let rubric = SchoolGenerator::rubric();
    for &k in &[0.05_f64, 0.3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let config = DcaConfig {
                    sample_size: 500,
                    iterations_per_rate: 30,
                    refinement_iterations: 30,
                    rolling_window: 30,
                    seed: 3,
                    ..DcaConfig::default()
                };
                black_box(
                    Dca::new(config)
                        .run(&dataset, &rubric, &TopKDisparity::new(k))
                        .unwrap()
                        .bonus,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    quota_bench,
    fastar_bench,
    celis_bench,
    dca_reference
);
criterion_main!(benches);
