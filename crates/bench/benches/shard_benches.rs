//! Criterion benchmarks for the sharded data plane: end-to-end whole-cohort
//! metric evaluation through the shard-wise engine against the serial
//! score-sort-measure path, shard-by-shard generation and streaming ingest,
//! and the per-shard stratified sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fair_core::metrics::sharded as shmetrics;
use fair_core::metrics::{disparity_at_k, log_discounted_disparity, ndcg_at_k, LogDiscountConfig};
use fair_core::prelude::*;
use fair_data::{SchoolConfig, SchoolGenerator};
use std::hint::black_box;
use std::time::Duration;

const SHARD_SIZE: usize = 8 * 1024;
const BONUS: [f64; 4] = [1.0, 10.0, 12.0, 12.0];

fn cohorts(n: usize) -> (Dataset, ShardedDataset) {
    let generator = SchoolGenerator::new(SchoolConfig::small(n, 7));
    let flat = generator.generate().into_dataset();
    let sharded = ShardedDataset::from_dataset(&flat, SHARD_SIZE).unwrap();
    (flat, sharded)
}

/// Serial end-to-end (score → full sort → measure) vs the shard-wise engine
/// (per-shard kernels → partial selection → ordered combine), for each
/// whole-cohort metric.
fn serial_vs_sharded_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded/metrics_e2e");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let n = 50_000;
    let (flat, sharded) = cohorts(n);
    let rubric = SchoolGenerator::rubric();
    let view = flat.full_view();
    let log_cfg = LogDiscountConfig::default();

    group.bench_function(BenchmarkId::new("serial", "ndcg_at_k"), |b| {
        b.iter(|| {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &BONUS));
            black_box(ndcg_at_k(&view, &rubric, &ranking, 0.05).unwrap())
        });
    });
    group.bench_function(BenchmarkId::new("sharded", "ndcg_at_k"), |b| {
        b.iter(|| black_box(shmetrics::ndcg_at_k(&sharded, &rubric, &BONUS, 0.05).unwrap()));
    });
    group.bench_function(BenchmarkId::new("serial", "disparity_at_k"), |b| {
        b.iter(|| {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &BONUS));
            black_box(disparity_at_k(&view, &ranking, 0.05).unwrap())
        });
    });
    group.bench_function(BenchmarkId::new("sharded", "disparity_at_k"), |b| {
        b.iter(|| black_box(shmetrics::disparity_at_k(&sharded, &rubric, &BONUS, 0.05).unwrap()));
    });
    group.bench_function(BenchmarkId::new("serial", "log_discounted"), |b| {
        b.iter(|| {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &BONUS));
            black_box(log_discounted_disparity(&view, &ranking, &log_cfg).unwrap())
        });
    });
    group.bench_function(BenchmarkId::new("sharded", "log_discounted"), |b| {
        b.iter(|| {
            black_box(
                shmetrics::log_discounted_disparity(&sharded, &rubric, &BONUS, &log_cfg).unwrap(),
            )
        });
    });
    group.finish();
}

/// Shard-by-shard generation (no whole-cohort `Vec<DataObject>`) vs the
/// contiguous builder.
fn generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded/generate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let generator = SchoolGenerator::new(SchoolConfig::small(20_000, 7));
    group.bench_function("contiguous", |b| {
        b.iter(|| black_box(generator.generate().into_dataset().len()));
    });
    group.bench_function("shard_by_shard", |b| {
        b.iter(|| {
            black_box(
                generator
                    .generate_sharded(SHARD_SIZE)
                    .unwrap()
                    .into_dataset()
                    .len(),
            )
        });
    });
    group.finish();
}

/// Per-shard stratified sampling (seed-split streams) vs the serial
/// whole-cohort sampler, at the DCA sample size.
fn shard_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded/sample");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let (flat, sharded) = cohorts(50_000);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    group.bench_function("serial_floyd", |b| {
        let mut buf = rand::seq::index::IndexBuffer::new();
        b.iter(|| {
            flat.sample_indices_into(&mut rng, 500, &mut buf).unwrap();
            black_box(buf.len())
        });
    });
    group.bench_function("per_shard_split_seed", |b| {
        let mut out = Vec::new();
        let mut seed = 0_u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            sharded.sample_indices_into(seed, 500, &mut out).unwrap();
            black_box(out.len())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    serial_vs_sharded_metrics,
    generation,
    shard_sampling
);
criterion_main!(benches);
