//! Criterion benchmarks for the out-of-core store: whole-cohort metric
//! evaluation through the in-memory sharded engine vs the disk-paged
//! `ShardStore` at several cache budgets, plus raw ingest (write) and
//! page-in (read) throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fair_core::metrics::sharded as shmetrics;
use fair_core::prelude::*;
use fair_data::store::school_to_store;
use fair_data::{SchoolConfig, SchoolGenerator};
use fair_store::{column_bytes, ShardStore};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

const SHARD_SIZE: usize = 2 * 1024;
const BONUS: [f64; 4] = [1.0, 10.0, 12.0, 12.0];

fn store_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fair_store_bench_{tag}_{}.fss", std::process::id()))
}

/// In-memory sharded engine vs the paged store at descending cache budgets:
/// the cost of out-of-core evaluation is the page-in work the budget forces.
fn memory_vs_paged_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/metrics_e2e");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(5));
    let n = 50_000;
    let generator = SchoolGenerator::new(SchoolConfig::small(n, 7));
    let path = store_path("metrics");
    school_to_store(&generator, SHARD_SIZE, &path).expect("write store");
    let mem = generator
        .generate_sharded(SHARD_SIZE)
        .expect("positive shard size")
        .into_dataset();
    let rubric = SchoolGenerator::rubric();
    let shard_bytes = column_bytes(mem.shard(0).data());
    let total_bytes: usize = (0..mem.num_shards())
        .map(|i| column_bytes(mem.shard(i).data()))
        .sum();

    group.bench_function(BenchmarkId::new("disparity_at_k", "memory"), |b| {
        b.iter(|| black_box(shmetrics::disparity_at_k(&mem, &rubric, &BONUS, 0.05).unwrap()));
    });
    let budgets = [
        ("cache_all", usize::MAX),
        ("cache_half", total_bytes / 2),
        ("cache_2_shards", 2 * shard_bytes + shard_bytes / 2),
    ];
    for (label, budget) in budgets {
        let store = ShardStore::open_with_budget(&path, budget).expect("open store");
        group.bench_function(BenchmarkId::new("disparity_at_k", label), |b| {
            b.iter(|| black_box(shmetrics::disparity_at_k(&store, &rubric, &BONUS, 0.05).unwrap()));
        });
    }
    group.bench_function(BenchmarkId::new("ndcg_at_k", "memory"), |b| {
        b.iter(|| black_box(shmetrics::ndcg_at_k(&mem, &rubric, &BONUS, 0.05).unwrap()));
    });
    for (label, budget) in budgets {
        let store = ShardStore::open_with_budget(&path, budget).expect("open store");
        group.bench_function(BenchmarkId::new("ndcg_at_k", label), |b| {
            b.iter(|| black_box(shmetrics::ndcg_at_k(&store, &rubric, &BONUS, 0.05).unwrap()));
        });
    }
    group.finish();
    std::fs::remove_file(path).ok();
}

/// Raw store I/O: streaming a generated cohort onto disk, and paging every
/// shard back through a cold cache.
fn ingest_and_page_in(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/io");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let n = 20_000;
    let generator = SchoolGenerator::new(SchoolConfig::small(n, 7));
    let path = store_path("io");

    group.bench_function("write_streaming", |b| {
        b.iter(|| {
            let summary = school_to_store(&generator, SHARD_SIZE, &path).expect("write store");
            black_box(summary.rows)
        });
    });

    school_to_store(&generator, SHARD_SIZE, &path).expect("write store");
    group.bench_function("page_in_cold", |b| {
        b.iter(|| {
            // Budget 0: every access decodes from disk (no retention).
            let store = ShardStore::open_with_budget(&path, 0).expect("open store");
            let rows = store.reduce_shards(0_usize, |shard| shard.len(), |acc, l| acc + l);
            black_box(rows)
        });
    });
    group.finish();
    std::fs::remove_file(path).ok();
}

criterion_group!(benches, memory_vs_paged_metrics, ingest_and_page_in);
criterion_main!(benches);
