//! Criterion benchmarks for the dataset substrate: generator throughput,
//! ranking-feature scoring, CSV round trips, and the deferred-acceptance
//! matching substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fair_core::prelude::*;
use fair_data::{CompasConfig, CompasGenerator, SchoolConfig, SchoolGenerator};
use fair_matching::{SchoolChoiceConfig, SchoolChoiceSimulator};
use std::hint::black_box;
use std::time::Duration;

fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("data/generate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for &n in &[10_000usize, 40_000] {
        group.bench_with_input(BenchmarkId::new("school", n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    SchoolGenerator::new(SchoolConfig::small(n, 1))
                        .generate()
                        .into_dataset(),
                )
            });
        });
    }
    group.bench_function("compas_7214", |b| {
        b.iter(|| black_box(CompasGenerator::new(CompasConfig::default()).generate()));
    });
    group.finish();
}

fn scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("data/score_and_rank");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let dataset = SchoolGenerator::new(SchoolConfig::small(40_000, 2))
        .generate()
        .into_dataset();
    let rubric = SchoolGenerator::rubric();
    let bonus = vec![1.0, 11.5, 12.0, 12.0];
    group.bench_function("effective_scores_40k", |b| {
        let view = dataset.full_view();
        b.iter(|| black_box(effective_scores(&view, &rubric, &bonus)));
    });
    group.bench_function("score_and_rank_40k", |b| {
        let view = dataset.full_view();
        b.iter(|| {
            let scores = effective_scores(&view, &rubric, &bonus);
            black_box(RankedSelection::from_scores(scores))
        });
    });
    group.finish();
}

fn csv_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("data/csv");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let dataset = SchoolGenerator::new(SchoolConfig::small(10_000, 3))
        .generate()
        .into_dataset();
    let text = fair_data::csv::to_csv_string(&dataset);
    group.bench_function("serialize_10k", |b| {
        b.iter(|| black_box(fair_data::csv::to_csv_string(&dataset)));
    });
    group.bench_function("parse_10k", |b| {
        b.iter(|| black_box(fair_data::csv::from_csv_string(&text).unwrap()));
    });
    group.finish();
}

fn matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("data/deferred_acceptance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let rubric = SchoolGenerator::rubric();
    for &n in &[5_000usize, 20_000] {
        let dataset = SchoolGenerator::new(SchoolConfig::small(n, 4))
            .generate()
            .into_dataset();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, dataset| {
            let sim = SchoolChoiceSimulator::new(SchoolChoiceConfig::default()).unwrap();
            b.iter(|| black_box(sim.run(dataset, &rubric, None).unwrap().overall_norm()));
        });
    }
    group.finish();
}

criterion_group!(benches, generators, scoring, csv_round_trip, matching);
criterion_main!(benches);
