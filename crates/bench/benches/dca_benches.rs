//! Criterion benchmarks for DCA itself.
//!
//! These back the efficiency claims of Sections IV-D and VI-A5:
//!
//! * Core DCA's per-run cost is governed by the sample size, not the dataset
//!   size (`dca_core/dataset_size/*` should be roughly flat);
//! * the refinement step adds a near-constant extra cost
//!   (`dca_refined` vs `dca_core`);
//! * Full DCA scales linearly with the dataset (`dca_full/*`);
//! * the log-discounted objective costs an extra factor of the sample size
//!   (`objective_eval/*`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fair_bench::datasets::ExperimentScale;
use fair_core::prelude::*;
use fair_data::{SchoolConfig, SchoolGenerator};
use std::hint::black_box;
use std::time::Duration;

fn school(n: usize, seed: u64) -> Dataset {
    SchoolGenerator::new(SchoolConfig::small(n, seed))
        .generate()
        .into_dataset()
}

fn bench_config(sample_size: usize, iterations: usize, refine: bool) -> DcaConfig {
    DcaConfig {
        sample_size,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: iterations,
        refinement_iterations: if refine { iterations } else { 0 },
        rolling_window: iterations.max(1),
        seed: 7,
        ..DcaConfig::default()
    }
}

/// Core DCA cost as the dataset grows (sub-linearity claim).
fn dca_vs_dataset_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("dca_core/dataset_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let rubric = SchoolGenerator::rubric();
    for &n in &[5_000usize, 20_000, 40_000] {
        let dataset = school(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, dataset| {
            b.iter(|| {
                let config = bench_config(500, 30, false);
                let out = run_core_dca(
                    dataset,
                    &rubric,
                    &TopKDisparity::new(0.05),
                    &config,
                    None,
                    false,
                )
                .unwrap();
                black_box(out.bonus)
            });
        });
    }
    group.finish();
}

/// Core DCA vs refined DCA (the Figure 8b ablation).
fn core_vs_refined(c: &mut Criterion) {
    let mut group = c.benchmark_group("dca_refinement");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let dataset = school(20_000, 42);
    let rubric = SchoolGenerator::rubric();
    for (name, refine) in [("core_only", false), ("with_refinement", true)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let dca = Dca::new(bench_config(500, 30, refine));
                black_box(
                    dca.run(&dataset, &rubric, &TopKDisparity::new(0.05))
                        .unwrap()
                        .bonus,
                )
            });
        });
    }
    group.finish();
}

/// Full DCA scales linearly with the dataset (contrast with Core DCA).
fn full_dca_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dca_full/dataset_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let rubric = SchoolGenerator::rubric();
    for &n in &[2_000usize, 8_000] {
        let dataset = school(n, 42);
        group.bench_with_input(BenchmarkId::from_parameter(n), &dataset, |b, dataset| {
            b.iter(|| {
                let config = bench_config(500, 10, false);
                let out = run_full_dca(
                    dataset,
                    &rubric,
                    &TopKDisparity::new(0.05),
                    &config,
                    None,
                    false,
                )
                .unwrap();
                black_box(out.bonus)
            });
        });
    }
    group.finish();
}

/// Core DCA cost as the selection fraction k shrinks (sample size grows as
/// 1/k per the Section IV-D rule).
fn dca_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("dca_core/selection_fraction");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let dataset = school(20_000, 42);
    let rubric = SchoolGenerator::rubric();
    for &k in &[0.05_f64, 0.2, 0.5] {
        let sample = DcaConfig::recommended_sample_size(&dataset, k).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let config = bench_config(sample, 30, false);
                let out = run_core_dca(
                    &dataset,
                    &rubric,
                    &TopKDisparity::new(k),
                    &config,
                    None,
                    false,
                )
                .unwrap();
                black_box(out.bonus)
            });
        });
    }
    group.finish();
}

/// Single objective evaluations: plain top-k disparity vs the log-discounted
/// variant (the extra factor of Section IV-E).
fn objective_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_eval");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let scale = ExperimentScale::tiny();
    let dataset = school(scale.school_cohort_size, 42);
    let rubric = SchoolGenerator::rubric();
    let view = dataset.full_view();
    let bonus = vec![1.0, 10.0, 12.0, 12.0];
    group.bench_function("topk_disparity", |b| {
        b.iter(|| {
            black_box(
                TopKDisparity::new(0.05)
                    .evaluate(&view, &rubric, &bonus)
                    .unwrap(),
            )
        });
    });
    group.bench_function("log_discounted", |b| {
        let objective = LogDiscountedObjective::new(LogDiscountConfig::default());
        b.iter(|| black_box(objective.evaluate(&view, &rubric, &bonus).unwrap()));
    });
    group.finish();
}

/// One DCA-step objective evaluation, three ways: the old allocating
/// full-sort path, the partial-selection path with fresh buffers, and the
/// full hot-loop path (partial selection + reused scratch). The deltas are
/// exactly what every one of the run's hundreds of steps saves.
fn objective_eval_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("objective_eval/paths");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let dataset = school(20_000, 42);
    let rubric = SchoolGenerator::rubric();
    let view = dataset.full_view();
    let bonus = vec![1.0, 10.0, 12.0, 12.0];
    let k = 0.05;

    group.bench_function("full_sort_alloc", |b| {
        b.iter(|| {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &bonus));
            black_box(disparity_at_k(&view, &ranking, k).unwrap())
        });
    });
    group.bench_function("partial_topk_alloc", |b| {
        let objective = TopKDisparity::new(k);
        b.iter(|| black_box(objective.evaluate(&view, &rubric, &bonus).unwrap()));
    });
    group.bench_function("partial_topk_scratch", |b| {
        let objective = TopKDisparity::new(k);
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            objective
                .evaluate_into(&view, &rubric, &bonus, &mut scratch, &mut out)
                .unwrap();
            black_box(out.first().copied())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    dca_vs_dataset_size,
    core_vs_refined,
    full_dca_scaling,
    dca_vs_k,
    objective_eval,
    objective_eval_paths
);
criterion_main!(benches);
