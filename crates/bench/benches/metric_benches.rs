//! Criterion benchmarks for the fairness and utility metrics: the cost of a
//! single metric evaluation is what every DCA step pays, so these numbers
//! explain the per-step term of the complexity analysis in Section IV-D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fair_core::metrics::{
    ddp_for_binary_attributes, disparity_at_k, log_discounted_disparity, ndcg_at_k,
    scaled_disparate_impact_at_k, LogDiscountConfig,
};
use fair_core::prelude::*;
use fair_data::{SchoolConfig, SchoolGenerator};
use std::hint::black_box;
use std::time::Duration;

fn ranked(n: usize) -> (Dataset, Vec<f64>) {
    let dataset = SchoolGenerator::new(SchoolConfig::small(n, 7))
        .generate()
        .into_dataset();
    let rubric = SchoolGenerator::rubric();
    let scores = {
        let view = dataset.full_view();
        effective_scores(&view, &rubric, &[0.0; 4])
    };
    (dataset, scores)
}

fn ranking_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking/sort");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000, 50_000] {
        let (_, scores) = ranked(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scores, |b, scores| {
            b.iter(|| black_box(RankedSelection::from_scores(scores.clone())));
        });
    }
    group.finish();
}

/// The fixed-k fast path: `select_nth_unstable` partition + prefix sort
/// (`O(s + m log m)`) against the full `O(s log s)` sort, at the paper's
/// k = 5% selection boundary.
fn partial_vs_full_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ranking/partial_vs_full");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000, 50_000] {
        let (_, scores) = ranked(n);
        let m = selection_size(n, 0.05).unwrap();
        group.bench_with_input(
            BenchmarkId::new("full_sort", n),
            &scores,
            |b, scores: &Vec<f64>| {
                b.iter(|| black_box(RankedSelection::from_scores(scores.clone())));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("partial_topk", n),
            &scores,
            |b, scores: &Vec<f64>| {
                b.iter(|| black_box(RankedSelection::from_scores_topk(scores.clone(), m)));
            },
        );
    }
    group.finish();
}

/// Columnar (structure-of-arrays) streaming vs one-heap-allocation-per-object
/// (array-of-structs) scoring of the same cohort under the same rubric.
fn aos_vs_soa_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring/aos_vs_soa");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let (dataset, _) = ranked(50_000);
    let rubric = SchoolGenerator::rubric();
    let view = dataset.full_view();
    let bonus = [1.0, 10.0, 12.0, 12.0];
    // Materialize the pre-refactor layout: one owned object (two Vec
    // allocations) per row.
    let objects: Vec<DataObject> = dataset.iter().map(|o| o.to_object()).collect();

    group.bench_function("soa_stream", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            effective_scores_into(&view, &rubric, &bonus, &mut out);
            black_box(out.last().copied())
        });
    });
    group.bench_function("aos_pointer_chase", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            out.extend(
                objects
                    .iter()
                    .map(|o| rubric.base_score(o.as_view()) + o.bonus_increment(&bonus)),
            );
            black_box(out.last().copied())
        });
    });

    // The same columnar scoring under each kernel family: the sequential
    // reference loops vs the canonical 4-lane chunked kernels (see
    // `fair_core::kernel`), on the row-major matrices directly so the two
    // timings differ only in the kernel.
    let nf = dataset.schema().num_features();
    let na = dataset.schema().num_fairness();
    let weights = SchoolGenerator::rubric().weights().to_vec();
    for (label, kernel) in [
        ("scalar_reference", fair_core::kernel::Kernel::Scalar),
        ("chunked_f64x4", fair_core::kernel::Kernel::Chunked),
    ] {
        group.bench_function(BenchmarkId::new("scalar_vs_chunked", label), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                fair_core::kernel::dot_rows_into_with(
                    dataset.features_matrix(),
                    nf,
                    &weights,
                    &mut out,
                    kernel,
                );
                fair_core::kernel::add_dot_rows_into_with(
                    dataset.fairness_matrix(),
                    na,
                    &bonus,
                    &mut out,
                    kernel,
                );
                black_box(out.last().copied())
            });
        });
    }
    group.finish();
}

fn disparity_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let (dataset, scores) = ranked(20_000);
    let view = dataset.full_view();
    let ranking = RankedSelection::from_scores(scores);
    let rubric = SchoolGenerator::rubric();

    group.bench_function("disparity_at_k", |b| {
        b.iter(|| black_box(disparity_at_k(&view, &ranking, 0.05).unwrap()));
    });
    group.bench_function("log_discounted_disparity", |b| {
        let cfg = LogDiscountConfig::default();
        b.iter(|| black_box(log_discounted_disparity(&view, &ranking, &cfg).unwrap()));
    });
    group.bench_function("scaled_disparate_impact", |b| {
        b.iter(|| black_box(scaled_disparate_impact_at_k(&view, &ranking, 0.05).unwrap()));
    });
    group.bench_function("ndcg_at_k", |b| {
        b.iter(|| black_box(ndcg_at_k(&view, &rubric, &ranking, 0.05).unwrap()));
    });
    group.bench_function("ddp_exposure", |b| {
        b.iter(|| black_box(ddp_for_binary_attributes(&view, &ranking).unwrap()));
    });
    group.finish();
}

fn sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset/sample");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let (dataset, _) = ranked(50_000);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng;
    for &size in &[500usize, 2_000] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let view = dataset.sample(&mut rng, size).unwrap();
                black_box(view.fairness_centroid().unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ranking_construction,
    partial_vs_full_selection,
    aos_vs_soa_scoring,
    disparity_metrics,
    sampling
);
criterion_main!(benches);
