//! Out-of-core evaluation: the same whole-cohort metrics and Full DCA run
//! over the on-disk `fair-store` shard file at several cache budgets, against
//! the in-memory sharded engine.
//!
//! The experiment streams the school cohort **directly onto disk**
//! (`fair_data::store::school_to_store` — the cohort is never materialized
//! in RAM on the write side), then opens the store at three cache budgets:
//! everything resident, roughly a quarter of the column bytes, and a
//! two-shard sliver that forces eviction on nearly every access. For each
//! budget it times disparity@k and nDCG@k, records the cache counters
//! (hits/misses/evictions/peak bytes), and checks the paged results and a
//! Full-DCA bonus trajectory **bit-for-bit** against the in-memory
//! `ShardedDataset` engine — the acceptance claim of the storage subsystem.

use crate::datasets::ExperimentScale;
use crate::table::TextTable;
use fair_core::metrics::sharded as shmetrics;
use fair_core::prelude::*;
use fair_data::store::school_to_store;
use fair_data::{SchoolConfig, SchoolGenerator};
use fair_store::{column_bytes, CacheStats, ShardStore};
use std::time::Instant;

/// One cache budget's timings and cache behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRow {
    /// Human-readable budget label.
    pub label: String,
    /// Cache byte budget used.
    pub budget_bytes: usize,
    /// disparity@k end-to-end over the store (ms).
    pub disparity_ms: f64,
    /// nDCG@k end-to-end over the store (ms).
    pub ndcg_ms: f64,
    /// Cache counters after the timed runs.
    pub stats: CacheStats,
    /// Max |paged − in-memory| across both metric vectors (must be exactly
    /// zero: paged shards decode to identical bits).
    pub max_abs_diff: f64,
}

/// Result of the out-of-core experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct OutOfCoreResult {
    /// Cohort size.
    pub n: usize,
    /// Shard size used.
    pub shard_size: usize,
    /// Number of shards.
    pub num_shards: usize,
    /// Store file size in bytes.
    pub file_bytes: u64,
    /// Total column bytes (what the cache budget is measured against).
    pub column_bytes_total: usize,
    /// In-memory sharded timings for the same two metrics (ms).
    pub memory_disparity_ms: f64,
    /// In-memory nDCG timing (ms).
    pub memory_ndcg_ms: f64,
    /// Per-budget rows.
    pub rows: Vec<BudgetRow>,
    /// Max |paged − in-memory| over the Full-DCA bonus trajectory (tightest
    /// budget; must be exactly zero).
    pub full_dca_bonus_diff: f64,
}

impl OutOfCoreResult {
    /// Render the comparison table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            format!(
                "Out-of-core store — paged vs in-memory evaluation (n = {}, {} shards x {}, {} KiB columns)",
                self.n,
                self.num_shards,
                self.shard_size,
                self.column_bytes_total / 1024
            ),
            &[
                "Cache budget",
                "disparity ms",
                "nDCG ms",
                "hit/miss",
                "evict",
                "peak KiB",
                "Max |diff|",
            ],
        );
        table.add_row(vec![
            "in-memory engine".to_string(),
            format!("{:.3}", self.memory_disparity_ms),
            format!("{:.3}", self.memory_ndcg_ms),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.label.clone(),
                format!("{:.3}", row.disparity_ms),
                format!("{:.3}", row.ndcg_ms),
                format!("{}/{}", row.stats.hits, row.stats.misses),
                format!("{}", row.stats.evictions),
                format!("{}", row.stats.peak_bytes / 1024),
                format!("{:.2e}", row.max_abs_diff),
            ]);
        }
        table.add_row(vec![
            "full-DCA bonus traj.".to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.2e}", self.full_dca_bonus_diff),
        ]);
        table.render()
    }
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

fn time_ms<T>(mut routine: impl FnMut() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = routine();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Run the out-of-core experiment.
///
/// # Errors
/// Returns an error if any evaluation fails.
///
/// # Panics
/// Panics if the store file cannot be written to the temp directory.
pub fn run_out_of_core(scale: &ExperimentScale) -> Result<OutOfCoreResult> {
    let k = 0.05;
    // Enough shards that even the widest worker pool's pinned working set
    // (one shard per worker) stays well below the cohort, so the tight
    // budgets genuinely evict.
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let target_shards = (8 * workers).max(16);
    let shard_size =
        fair_core::default_shard_size().min((scale.school_cohort_size / target_shards).max(1));
    let generator = SchoolGenerator::new(SchoolConfig {
        num_students: scale.school_cohort_size,
        seed: scale.seed,
        ..SchoolConfig::default()
    });
    let path = std::env::temp_dir().join(format!(
        "fair_bench_out_of_core_{}_{}.fss",
        scale.school_cohort_size,
        std::process::id()
    ));
    let summary =
        school_to_store(&generator, shard_size, &path).expect("write the cohort store file");

    let mem = generator.generate_sharded(shard_size)?.into_dataset();
    let rubric = SchoolGenerator::rubric();
    let bonus = vec![1.0, 10.0, 12.0, 12.0];
    let shard_bytes = column_bytes(mem.shard(0).data());
    let column_bytes_total: usize = (0..mem.num_shards())
        .map(|i| column_bytes(mem.shard(i).data()))
        .sum();

    let (mem_disp, memory_disparity_ms) =
        time_ms(|| shmetrics::disparity_at_k(&mem, &rubric, &bonus, k));
    let mem_disp = mem_disp?;
    let (mem_ndcg, memory_ndcg_ms) = time_ms(|| shmetrics::ndcg_at_k(&mem, &rubric, &bonus, k));
    let mem_ndcg = mem_ndcg?;

    let budgets = [
        ("unbounded".to_string(), usize::MAX),
        (
            "quarter cohort".to_string(),
            (column_bytes_total / 4).max((workers + 1) * shard_bytes),
        ),
        ("pinned minimum".to_string(), (workers + 1) * shard_bytes),
    ];

    let mut rows = Vec::new();
    let mut tightest: Option<ShardStore> = None;
    for (label, budget) in budgets {
        let store = ShardStore::open_with_budget(&path, budget)
            .expect("the store file just written must open");
        let (disp, disparity_ms) =
            time_ms(|| shmetrics::disparity_at_k(&store, &rubric, &bonus, k));
        let disp = disp?;
        let (ndcg, ndcg_ms) = time_ms(|| shmetrics::ndcg_at_k(&store, &rubric, &bonus, k));
        let ndcg = ndcg?;
        let stats = store.cache_stats();
        rows.push(BudgetRow {
            label,
            budget_bytes: budget,
            disparity_ms,
            ndcg_ms,
            stats,
            max_abs_diff: max_abs_diff(&disp, &mem_disp).max((ndcg - mem_ndcg).abs()),
        });
        tightest = Some(store);
    }

    // Full DCA through the tightest-budget store: the bonus trajectory must
    // be bit-for-bit the in-memory trajectory.
    let store = tightest.expect("three budgets ran");
    let dca_config = DcaConfig {
        learning_rates: vec![1.0],
        iterations_per_rate: 3,
        refinement_iterations: 0,
        seed: scale.seed,
        ..DcaConfig::default()
    };
    let objective = TopKDisparity::new(k);
    let mem_full = run_full_dca_sharded(&mem, &rubric, &objective, &dca_config, None, false)?;
    let store_full = run_full_dca_sharded(&store, &rubric, &objective, &dca_config, None, false)?;
    let full_dca_bonus_diff = max_abs_diff(&mem_full.bonus, &store_full.bonus);

    std::fs::remove_file(&path).ok();
    Ok(OutOfCoreResult {
        n: mem.len(),
        shard_size,
        num_shards: mem.num_shards(),
        file_bytes: summary.file_bytes,
        column_bytes_total,
        memory_disparity_ms,
        memory_ndcg_ms,
        rows,
        full_dca_bonus_diff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paged_evaluation_is_exact_at_tiny_scale() {
        let result = run_out_of_core(&ExperimentScale::tiny()).unwrap();
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            assert_eq!(
                row.max_abs_diff, 0.0,
                "{}: paged metrics must match the in-memory engine exactly",
                row.label
            );
        }
        assert_eq!(result.full_dca_bonus_diff, 0.0);
        let tight = result.rows.last().unwrap();
        assert!(
            tight.stats.evictions > 0,
            "the pinned-minimum budget must evict: {:?}",
            tight.stats
        );
        assert!(tight.stats.peak_bytes <= tight.budget_bytes);
        let text = result.render();
        assert!(text.contains("Out-of-core store"));
        assert!(text.contains("pinned minimum"));
    }
}
