//! Figures 1–3 — utility of the corrected ranking and the bonus-proportion
//! trade-off.
//!
//! * **Figure 1**: nDCG@k of the DCA-corrected ranking for k from 5% to 50%.
//! * **Figure 2**: disparity norm and nDCG when only a proportion of the
//!   recommended bonus points is applied (0 → no intervention, 1 → full DCA).
//! * **Figure 3**: the same sweep broken down per fairness dimension — the
//!   step shape comes from the 0.5-point granularity.

use crate::datasets::{standard_school_pair, ExperimentScale};
use crate::table::TextTable;
use crate::{
    disparity_curve, eval_disparity, eval_ndcg, experiment_dca_config, k_grid, CurvePoint,
};
use fair_core::prelude::*;
use fair_data::SchoolGenerator;

/// Result of the Figure 1 experiment: nDCG@k across selection fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// The bonus vector learned at k = 5%.
    pub bonus: Vec<f64>,
    /// Per-k evaluation points on the test cohort.
    pub points: Vec<CurvePoint>,
}

impl Fig1Result {
    /// Render the nDCG@k series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Figure 1 — nDCG@k on the test cohort",
            &["k", "nDCG", "Disparity norm"],
        );
        for p in &self.points {
            table.add_row(vec![
                format!("{:.2}", p.k),
                format!("{:.4}", p.ndcg),
                format!("{:.3}", p.norm),
            ]);
        }
        table.render()
    }
}

/// One point of the bonus-proportion sweep (Figures 2 and 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ProportionPoint {
    /// Fraction of the recommended bonus applied.
    pub proportion: f64,
    /// The scaled (and re-rounded) bonus values actually applied.
    pub bonus: Vec<f64>,
    /// Per-dimension disparity at the evaluation fraction.
    pub disparity: Vec<f64>,
    /// Disparity norm.
    pub norm: f64,
    /// nDCG at the evaluation fraction.
    pub ndcg: f64,
}

/// Result of the Figures 2–3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProportionSweepResult {
    /// Fairness-attribute names.
    pub names: Vec<String>,
    /// Evaluation selection fraction (5%).
    pub k: f64,
    /// The full recommended bonus vector.
    pub full_bonus: Vec<f64>,
    /// Sweep points from 0.1 to 1.0.
    pub points: Vec<ProportionPoint>,
}

impl ProportionSweepResult {
    /// Render both the norm/nDCG trade-off (Fig. 2) and the per-dimension
    /// breakdown (Fig. 3).
    #[must_use]
    pub fn render(&self) -> String {
        let mut header = vec!["Proportion", "Norm", "nDCG"];
        let names: Vec<String> = self.names.clone();
        header.extend(names.iter().map(String::as_str));
        let mut table = TextTable::new(
            format!(
                "Figures 2-3 — bonus-proportion sweep (evaluated at k = {:.0}%)",
                self.k * 100.0
            ),
            &header,
        );
        for p in &self.points {
            let mut cells = vec![
                format!("{:.1}", p.proportion),
                format!("{:.3}", p.norm),
                format!("{:.4}", p.ndcg),
            ];
            cells.extend(p.disparity.iter().map(|v| format!("{v:+.3}")));
            table.add_row(cells);
        }
        table.render()
    }
}

/// Run Figure 1: learn bonus points at k = 5% on the training cohort and
/// report nDCG@k on the test cohort for the k grid.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_fig1(scale: &ExperimentScale) -> Result<Fig1Result> {
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let config = experiment_dca_config(scale, scale.seed);
    let dca = Dca::new(config).run(train.dataset(), &rubric, &TopKDisparity::new(0.05))?;
    let points = disparity_curve(test.dataset(), &rubric, dca.bonus.values(), &k_grid())?;
    Ok(Fig1Result {
        bonus: dca.bonus.values().to_vec(),
        points,
    })
}

/// Run Figures 2–3: sweep the proportion of recommended bonus points.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_proportion_sweep(scale: &ExperimentScale) -> Result<ProportionSweepResult> {
    let k = 0.05;
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let names: Vec<String> = train
        .dataset()
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();

    let config = experiment_dca_config(scale, scale.seed);
    let dca = Dca::new(config).run(train.dataset(), &rubric, &TopKDisparity::new(k))?;
    let full = dca.bonus.clone();

    let mut points = Vec::new();
    for step in 1..=10 {
        let proportion = step as f64 / 10.0;
        // Scale and re-round to the 0.5-point granularity, as the paper does —
        // this is what produces the step shape of Figure 3.
        let scaled = full.scaled(proportion)?.rounded_to(0.5)?;
        let disparity = eval_disparity(test.dataset(), &rubric, scaled.values(), k)?;
        let ndcg = eval_ndcg(test.dataset(), &rubric, scaled.values(), k)?;
        points.push(ProportionPoint {
            proportion,
            bonus: scaled.values().to_vec(),
            norm: norm(&disparity),
            disparity,
            ndcg,
        });
    }
    Ok(ProportionSweepResult {
        names,
        k,
        full_bonus: full.values().to_vec(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_ndcg_stays_high_across_k() {
        let result = run_fig1(&ExperimentScale::tiny()).unwrap();
        assert_eq!(result.points.len(), 10);
        // The paper reports nDCG@0.05 ≈ 0.957 and > 0.9 everywhere.
        assert!(
            result.points.iter().all(|p| p.ndcg > 0.85),
            "{:?}",
            result.points.iter().map(|p| p.ndcg).collect::<Vec<_>>()
        );
        assert!(result.points.iter().all(|p| p.ndcg <= 1.0));
        assert!(result.render().contains("Figure 1"));
    }

    #[test]
    fn proportion_sweep_is_monotone_in_the_expected_directions() {
        let result = run_proportion_sweep(&ExperimentScale::tiny()).unwrap();
        assert_eq!(result.points.len(), 10);
        let first = &result.points[0];
        let last = &result.points[result.points.len() - 1];
        // Applying the full bonus reduces disparity relative to 10% of it.
        assert!(last.norm < first.norm, "{} vs {}", last.norm, first.norm);
        // Utility decreases (or stays equal) as more bonus points are applied.
        assert!(last.ndcg <= first.ndcg + 1e-9);
        // The full-proportion point applies the recommended bonus exactly.
        assert_eq!(last.bonus, result.full_bonus);
        assert!(result.render().contains("Figures 2-3"));
    }
}
