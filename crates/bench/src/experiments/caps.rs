//! Figure 5 — maximum bonus limits.
//!
//! DCA is run in log-discounted mode with the bonus magnitude capped at an
//! increasing maximum; the resulting (log-discounted) disparity shrinks as the
//! cap is relaxed and approaches the uncapped optimum.

use crate::datasets::{standard_school_pair, ExperimentScale};
use crate::experiment_dca_config;
use crate::table::TextTable;
use fair_core::prelude::*;
use fair_data::SchoolGenerator;

/// One cap level of the Figure 5 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CapPoint {
    /// Maximum bonus allowed per dimension.
    pub max_bonus: f64,
    /// The capped bonus vector DCA produced.
    pub bonus: Vec<f64>,
    /// Log-discounted disparity (per dimension) on the test cohort.
    pub disparity: Vec<f64>,
    /// Norm of the log-discounted disparity.
    pub norm: f64,
}

/// Result of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CapsResult {
    /// Fairness-attribute names.
    pub names: Vec<String>,
    /// Sweep points, in increasing cap order.
    pub points: Vec<CapPoint>,
}

impl CapsResult {
    /// Render the cap sweep.
    #[must_use]
    pub fn render(&self) -> String {
        let mut header = vec!["Max bonus"];
        let names: Vec<String> = self.names.clone();
        header.extend(names.iter().map(String::as_str));
        header.push("Norm");
        let mut table = TextTable::new(
            "Figure 5 — log-discounted disparity under maximum bonus limits",
            &header,
        );
        for p in &self.points {
            let mut cells = vec![format!("{:.1}", p.max_bonus)];
            cells.extend(p.disparity.iter().map(|v| format!("{v:+.3}")));
            cells.push(format!("{:.3}", p.norm));
            table.add_row(cells);
        }
        table.render()
    }
}

/// Run the Figure 5 experiment over the given cap levels (the paper sweeps 0
/// to 20 points; pass `None` to use `[0, 2.5, 5, …, 20]`).
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_caps(scale: &ExperimentScale, cap_levels: Option<Vec<f64>>) -> Result<CapsResult> {
    let caps = cap_levels.unwrap_or_else(|| (0..=8).map(|i| i as f64 * 2.5).collect());
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let names: Vec<String> = train
        .dataset()
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    // Figure 5 uses the log-discounted disparity restricted to small k.
    let discount = LogDiscountConfig {
        step: 10,
        max_fraction: 0.05,
    };
    let objective = LogDiscountedObjective::new(discount);

    let mut points = Vec::with_capacity(caps.len());
    for &max_bonus in &caps {
        let mut config = experiment_dca_config(scale, scale.seed);
        config.caps = Some(BonusCaps::uniform(dims, max_bonus)?);
        let dca = Dca::new(config).run(train.dataset(), &rubric, &objective)?;
        // Evaluate the log-discounted disparity on the test cohort.
        let view = test.dataset().full_view();
        let ranking =
            RankedSelection::from_scores(effective_scores(&view, &rubric, dca.bonus.values()));
        let disparity = log_discounted_disparity(&view, &ranking, &discount)?;
        points.push(CapPoint {
            max_bonus,
            bonus: dca.bonus.values().to_vec(),
            norm: norm(&disparity),
            disparity,
        });
    }
    Ok(CapsResult { names, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxing_the_cap_reduces_disparity() {
        let scale = ExperimentScale {
            dca_iterations: 25,
            ..ExperimentScale::tiny()
        };
        let result = run_caps(&scale, Some(vec![0.0, 5.0, 20.0])).unwrap();
        assert_eq!(result.points.len(), 3);
        let zero_cap = &result.points[0];
        let large_cap = &result.points[2];
        // With a zero cap no bonus can be granted at all.
        assert!(zero_cap.bonus.iter().all(|b| *b == 0.0));
        // A generous cap must do clearly better than no intervention.
        assert!(
            large_cap.norm < zero_cap.norm * 0.8,
            "large-cap norm {} vs zero-cap {}",
            large_cap.norm,
            zero_cap.norm
        );
        // Caps are honoured.
        for p in &result.points {
            assert!(p.bonus.iter().all(|b| *b <= p.max_bonus + 1e-9));
        }
        assert!(result.render().contains("Figure 5"));
    }
}
