//! Table I — disparity vectors for the school data before and after bonus
//! points, for Core DCA (Algorithm 1 alone) and full DCA (with the refinement
//! step), on both the training and the test cohort.

use crate::datasets::{standard_school_pair, ExperimentScale};
use crate::table::TextTable;
use crate::{eval_disparity, experiment_dca_config};
use fair_core::prelude::*;
use fair_data::SchoolGenerator;

/// One evaluated setting of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Setting label ("Baseline", "Core DCA", "DCA").
    pub setting: String,
    /// Bonus values (empty for the baseline).
    pub bonus: Vec<f64>,
    /// Disparity on the training cohort.
    pub train_disparity: Vec<f64>,
    /// Disparity on the test cohort.
    pub test_disparity: Vec<f64>,
}

/// The full Table I result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// Fairness-attribute names (column order).
    pub names: Vec<String>,
    /// Selection fraction used (the paper's default of 5%).
    pub k: f64,
    /// Rows: baseline, Core DCA, DCA.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Render in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut header: Vec<&str> = vec!["Setting", "Cohort"];
        let names: Vec<String> = self.names.clone();
        header.extend(names.iter().map(String::as_str));
        header.push("Norm");
        let mut table = TextTable::new(
            format!(
                "Table I — school disparity before/after bonus points (k = {:.0}%)",
                self.k * 100.0
            ),
            &header,
        );
        for row in &self.rows {
            if !row.bonus.is_empty() {
                let mut cells = vec![row.setting.clone(), "Bonus pts".to_string()];
                cells.extend(row.bonus.iter().map(|v| format!("{v:.1}")));
                cells.push(String::new());
                table.add_row(cells);
            }
            for (cohort, disp) in [
                ("Training", &row.train_disparity),
                ("Test", &row.test_disparity),
            ] {
                let mut cells = vec![row.setting.clone(), cohort.to_string()];
                cells.extend(disp.iter().map(|v| format!("{v:+.3}")));
                cells.push(format!("{:.3}", norm(disp)));
                table.add_row(cells);
            }
        }
        table.render()
    }
}

/// Run the Table I experiment.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails (e.g. invalid scale).
pub fn run_table1(scale: &ExperimentScale) -> Result<Table1Result> {
    let k = 0.05;
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let names: Vec<String> = train
        .dataset()
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    let zero = vec![0.0; dims];

    let baseline = Table1Row {
        setting: "Baseline".into(),
        bonus: Vec::new(),
        train_disparity: eval_disparity(train.dataset(), &rubric, &zero, k)?,
        test_disparity: eval_disparity(test.dataset(), &rubric, &zero, k)?,
    };

    // Core DCA: no refinement step.
    let mut core_config = experiment_dca_config(scale, scale.seed);
    core_config.refinement_iterations = 0;
    let core = Dca::new(core_config).run(train.dataset(), &rubric, &TopKDisparity::new(k))?;
    let core_row = Table1Row {
        setting: "Core DCA".into(),
        bonus: core.bonus.values().to_vec(),
        train_disparity: eval_disparity(train.dataset(), &rubric, core.bonus.values(), k)?,
        test_disparity: eval_disparity(test.dataset(), &rubric, core.bonus.values(), k)?,
    };

    // DCA with refinement.
    let config = experiment_dca_config(scale, scale.seed);
    let dca = Dca::new(config).run(train.dataset(), &rubric, &TopKDisparity::new(k))?;
    let dca_row = Table1Row {
        setting: "DCA".into(),
        bonus: dca.bonus.values().to_vec(),
        train_disparity: eval_disparity(train.dataset(), &rubric, dca.bonus.values(), k)?,
        test_disparity: eval_disparity(test.dataset(), &rubric, dca.bonus.values(), k)?,
    };

    Ok(Table1Result {
        names,
        k,
        rows: vec![baseline, core_row, dca_row],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper_shape() {
        let result = run_table1(&ExperimentScale::tiny()).unwrap();
        assert_eq!(result.rows.len(), 3);
        let baseline = &result.rows[0];
        let dca = &result.rows[2];
        // Baseline: every dimension under-represented, norm clearly positive.
        assert!(baseline.train_disparity.iter().all(|v| *v < 0.0));
        assert!(norm(&baseline.train_disparity) > 0.15);
        // DCA: the norm collapses on both cohorts (paper: 0.377 -> 0.023).
        assert!(
            norm(&dca.train_disparity) < norm(&baseline.train_disparity) * 0.55,
            "train: {:?} vs baseline {:?}",
            dca.train_disparity,
            baseline.train_disparity
        );
        assert!(
            norm(&dca.test_disparity) < norm(&baseline.test_disparity) * 0.6,
            "test: {:?} vs baseline {:?}",
            dca.test_disparity,
            baseline.test_disparity
        );
        // Bonus points are non-negative and on the 0.5 grid.
        assert!(dca
            .bonus
            .iter()
            .all(|b| *b >= 0.0 && (b * 2.0).fract().abs() < 1e-9));
        // Rendering mentions every setting.
        let text = result.render();
        assert!(text.contains("Baseline") && text.contains("Core DCA") && text.contains("DCA"));
    }
}
