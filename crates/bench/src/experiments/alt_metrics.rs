//! Figure 9 — DCA driven by Disparity vs by (scaled) Disparate Impact.
//!
//! The same descent is run twice per selection fraction, once against each
//! metric; both the resulting disparity norm and the disparate-impact measure
//! are reported, showing the two objectives behave similarly (Section VI-C5).

use crate::datasets::{standard_school_pair, ExperimentScale};
use crate::experiment_dca_config;
use crate::table::TextTable;
use fair_core::metrics::scaled_disparate_impact_at_k;
use fair_core::prelude::*;
use fair_data::SchoolGenerator;
use std::time::Duration;

/// One per-k row of the Figure 9 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Selection fraction.
    pub k: f64,
    /// Disparity norm when optimizing Disparity.
    pub disparity_norm_with_disparity: f64,
    /// Disparity norm when optimizing Disparate Impact.
    pub disparity_norm_with_di: f64,
    /// Scaled-DI norm when optimizing Disparity.
    pub di_norm_with_disparity: f64,
    /// Scaled-DI norm when optimizing Disparate Impact.
    pub di_norm_with_di: f64,
}

/// Result of the Figure 9 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Per-k rows.
    pub rows: Vec<Fig9Row>,
    /// Wall-clock time of all Disparity-driven runs.
    pub disparity_time: Duration,
    /// Wall-clock time of all DI-driven runs.
    pub di_time: Duration,
}

impl Fig9Result {
    /// Render the comparison.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Figure 9 — DCA optimizing Disparity vs Disparate Impact",
            &[
                "k",
                "Disp norm (Disp obj)",
                "Disp norm (DI obj)",
                "DI norm (Disp obj)",
                "DI norm (DI obj)",
            ],
        );
        for r in &self.rows {
            table.add_row(vec![
                format!("{:.2}", r.k),
                format!("{:.3}", r.disparity_norm_with_disparity),
                format!("{:.3}", r.disparity_norm_with_di),
                format!("{:.3}", r.di_norm_with_disparity),
                format!("{:.3}", r.di_norm_with_di),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "Disparity-driven total time: {} ms, DI-driven total time: {} ms\n",
            self.disparity_time.as_millis(),
            self.di_time.as_millis()
        ));
        out
    }
}

/// Run the Figure 9 comparison over the given selection fractions (defaults
/// to `{0.05, 0.1, 0.2, 0.3, 0.4, 0.5}`).
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_disparate_impact_comparison(
    scale: &ExperimentScale,
    ks: Option<Vec<f64>>,
) -> Result<Fig9Result> {
    let ks = ks.unwrap_or_else(|| vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5]);
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let test_view = test.dataset().full_view();

    let evaluate = |bonus: &[f64], k: f64| -> Result<(f64, f64)> {
        let ranking = RankedSelection::from_scores(effective_scores(&test_view, &rubric, bonus));
        let disp = disparity_at_k(&test_view, &ranking, k)?;
        let di = scaled_disparate_impact_at_k(&test_view, &ranking, k)?;
        Ok((norm(&disp), norm(&di)))
    };

    let mut rows = Vec::new();
    let mut disparity_time = Duration::ZERO;
    let mut di_time = Duration::ZERO;
    for &k in &ks {
        let config = experiment_dca_config(scale, scale.seed);
        let t = std::time::Instant::now();
        let with_disparity =
            Dca::new(config.clone()).run(train.dataset(), &rubric, &TopKDisparity::new(k))?;
        disparity_time += t.elapsed();
        let t = std::time::Instant::now();
        let with_di =
            Dca::new(config).run(train.dataset(), &rubric, &ScaledDisparateImpact::new(k))?;
        di_time += t.elapsed();

        let (disp_a, di_a) = evaluate(with_disparity.bonus.values(), k)?;
        let (disp_b, di_b) = evaluate(with_di.bonus.values(), k)?;
        rows.push(Fig9Row {
            k,
            disparity_norm_with_disparity: disp_a,
            disparity_norm_with_di: disp_b,
            di_norm_with_disparity: di_a,
            di_norm_with_di: di_b,
        });
    }
    Ok(Fig9Result {
        rows,
        disparity_time,
        di_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::standard_school_pair;
    use crate::eval_disparity;

    #[test]
    fn both_objectives_reduce_disparity_similarly() {
        let scale = ExperimentScale {
            dca_iterations: 30,
            ..ExperimentScale::tiny()
        };
        let result = run_disparate_impact_comparison(&scale, Some(vec![0.05, 0.2])).unwrap();
        assert_eq!(result.rows.len(), 2);
        let (_, test) = standard_school_pair(&scale);
        let rubric = SchoolGenerator::rubric();
        for row in &result.rows {
            let baseline =
                norm(&eval_disparity(test.dataset(), &rubric, &[0.0; 4], row.k).unwrap());
            assert!(row.disparity_norm_with_disparity < baseline);
            assert!(row.disparity_norm_with_di < baseline);
            // The two objectives land in the same neighbourhood.
            assert!(
                (row.disparity_norm_with_disparity - row.disparity_norm_with_di).abs() < 0.2,
                "{row:?}"
            );
        }
        assert!(result.render().contains("Figure 9"));
    }
}
