//! Comparisons with the baseline interventions: the single-quota system
//! (Figure 6), the (Δ+2)-approximation (Figure 7), Multinomial FA\*IR
//! (Table II), and the exposure/DDP evaluation of Section VI-C4.

use crate::datasets::{standard_school_pair, ExperimentScale};
use crate::table::TextTable;
use crate::{eval_disparity, eval_ndcg, experiment_dca_config, k_grid};
use fair_baselines::{
    caps_excluding_group, celis_rerank, most_disadvantaged_subgroups, quota_select, FaStarConfig,
    FaStarRanker, ProtectedGroup, QuotaConfig,
};
use fair_core::metrics::disparity_of_selection;
use fair_core::prelude::*;
use fair_data::SchoolGenerator;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Figure 6 — single-quota baseline
// ---------------------------------------------------------------------------

/// Result of the quota baseline across the k grid.
#[derive(Debug, Clone, PartialEq)]
pub struct QuotaResult {
    /// Fairness-attribute names.
    pub names: Vec<String>,
    /// Reserve fraction used.
    pub reserve_fraction: f64,
    /// `(k, disparity, norm)` of the quota selection on the test cohort.
    pub points: Vec<(f64, Vec<f64>, f64)>,
    /// `(k, norm)` of the uncorrected selection, for reference.
    pub baseline_norms: Vec<(f64, f64)>,
}

impl QuotaResult {
    /// Render the per-k series.
    #[must_use]
    pub fn render(&self) -> String {
        let mut header = vec!["k", "Baseline norm", "Quota norm"];
        let names: Vec<String> = self.names.clone();
        header.extend(names.iter().map(String::as_str));
        let mut table = TextTable::new(
            format!(
                "Figure 6 — single quota ({}% of seats reserved for any protected group)",
                (self.reserve_fraction * 100.0).round()
            ),
            &header,
        );
        for ((k, disp, n), (_, base)) in self.points.iter().zip(&self.baseline_norms) {
            let mut cells = vec![format!("{k:.2}"), format!("{base:.3}"), format!("{n:.3}")];
            cells.extend(disp.iter().map(|v| format!("{v:+.3}")));
            table.add_row(cells);
        }
        table.render()
    }
}

/// Run the Figure 6 quota baseline: one soft quota reserving a share of the
/// seats for students belonging to any binary protected group.
///
/// # Errors
/// Returns an error if the selection or evaluation fails.
pub fn run_quota(scale: &ExperimentScale, reserve_fraction: f64) -> Result<QuotaResult> {
    let (_, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let dataset = test.dataset();
    let names: Vec<String> = dataset
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    let zero = vec![0.0; dims];
    // Protected = any of the binary dimensions (low-income, ELL, special-ed).
    let binary_dims: Vec<usize> = dataset
        .schema()
        .fairness()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind() == FairnessKind::Binary)
        .map(|(i, _)| i)
        .collect();
    let config = QuotaConfig::new(reserve_fraction, binary_dims)?;

    let view = dataset.full_view();
    let mut points = Vec::new();
    let mut baseline_norms = Vec::new();
    for k in k_grid() {
        let selected = quota_select(&view, &rubric, k, &config)?;
        let disparity = disparity_of_selection(&view, &selected)?;
        points.push((k, disparity.clone(), norm(&disparity)));
        let base = eval_disparity(dataset, &rubric, &zero, k)?;
        baseline_norms.push((k, norm(&base)));
    }
    Ok(QuotaResult {
        names,
        reserve_fraction,
        points,
        baseline_norms,
    })
}

// ---------------------------------------------------------------------------
// Figure 7 — (Δ+2)-approximation vs DCA
// ---------------------------------------------------------------------------

/// One proportion point of the Figure 7 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Point {
    /// Proportion of the recommended DCA bonus applied.
    pub proportion: f64,
    /// DCA disparity norm at k = 5%.
    pub dca_norm: f64,
    /// DCA nDCG at k = 5%.
    pub dca_ndcg: f64,
    /// (Δ+2) disparity norm with constraints derived from the DCA outcome.
    pub delta2_norm: f64,
    /// (Δ+2) nDCG.
    pub delta2_ndcg: f64,
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Sweep points.
    pub points: Vec<Fig7Point>,
    /// Wall-clock time spent inside the (Δ+2) re-ranker.
    pub delta2_time: Duration,
    /// Wall-clock time spent computing the DCA bonus (once).
    pub dca_time: Duration,
}

impl Fig7Result {
    /// Render the comparison.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Figure 7 — accuracy vs disparity, DCA and the (Δ+2)-approximation (training cohort)",
            &[
                "Proportion",
                "DCA norm",
                "DCA nDCG",
                "(Δ+2) norm",
                "(Δ+2) nDCG",
            ],
        );
        for p in &self.points {
            table.add_row(vec![
                format!("{:.1}", p.proportion),
                format!("{:.3}", p.dca_norm),
                format!("{:.4}", p.dca_ndcg),
                format!("{:.3}", p.delta2_norm),
                format!("{:.4}", p.delta2_ndcg),
            ]);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "DCA time: {} ms, (Δ+2) total time: {} ms\n",
            self.dca_time.as_millis(),
            self.delta2_time.as_millis()
        ));
        out
    }
}

/// Run the Figure 7 comparison on the training cohort.
///
/// # Errors
/// Returns an error if DCA, the re-ranker, or the evaluation fails.
pub fn run_delta2_comparison(scale: &ExperimentScale) -> Result<Fig7Result> {
    let k = 0.05;
    let (train, _) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let dataset = train.dataset();
    let view = dataset.full_view();
    let binary_dims: Vec<usize> = dataset
        .schema()
        .fairness()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind() == FairnessKind::Binary)
        .map(|(i, _)| i)
        .collect();
    let selection = selection_size(dataset.len(), k)?;

    let dca_start = Instant::now();
    let config = experiment_dca_config(scale, scale.seed);
    let dca = Dca::new(config).run(dataset, &rubric, &TopKDisparity::new(k))?;
    let dca_time = dca_start.elapsed();
    let full = dca.bonus.clone();

    let mut delta2_time = Duration::ZERO;
    let mut points = Vec::new();
    for step in [2, 4, 6, 8, 10] {
        let proportion = step as f64 / 10.0;
        let scaled = full.scaled(proportion)?.rounded_to(0.5)?;
        let dca_disp = eval_disparity(dataset, &rubric, scaled.values(), k)?;
        let dca_ndcg = eval_ndcg(dataset, &rubric, scaled.values(), k)?;

        // Hand (Δ+2) the disparity DCA achieved as its constraint slack.
        let slack = norm(&dca_disp);
        let constraints = caps_excluding_group(&view, &binary_dims, selection, slack)?;
        let t = Instant::now();
        let selected = celis_rerank(&view, &rubric, selection, &constraints)?;
        delta2_time += t.elapsed();
        let delta2_disp = disparity_of_selection(&view, &selected)?;
        // nDCG of the constrained selection: rebuild a ranking that puts the
        // selected items first, in their greedy order.
        let mut scores = vec![f64::MIN; view.len()];
        for (rank, &pos) in selected.iter().enumerate() {
            scores[pos] = (view.len() - rank) as f64;
        }
        let constrained = RankedSelection::from_scores(scores);
        let delta2_ndcg = ndcg_at_k(&view, &rubric, &constrained, k)?;

        points.push(Fig7Point {
            proportion,
            dca_norm: norm(&dca_disp),
            dca_ndcg,
            delta2_norm: norm(&delta2_disp),
            delta2_ndcg,
        });
    }
    Ok(Fig7Result {
        points,
        delta2_time,
        dca_time,
    })
}

// ---------------------------------------------------------------------------
// Table II — Multinomial FA*IR on a single district
// ---------------------------------------------------------------------------

/// One row of the Table II comparison (binary dimensions only, as in the
/// paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Setting label.
    pub setting: String,
    /// Disparity over the binary fairness dimensions.
    pub disparity: Vec<f64>,
    /// Norm over those dimensions.
    pub norm: f64,
}

/// Result of the Table II experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Names of the binary fairness dimensions compared.
    pub names: Vec<String>,
    /// Districts whose students form the comparison population.
    pub districts: Vec<u16>,
    /// Number of students in that population.
    pub district_size: usize,
    /// Selection fraction used.
    pub k: f64,
    /// DCA bonus points (binary dimensions only shown in the render).
    pub dca_bonus: Vec<f64>,
    /// Labels of the subgroups FA\*IR protected.
    pub fastar_groups: Vec<String>,
    /// Rows: baseline, DCA, Multinomial FA\*IR.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Render in the paper's layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut header = vec!["Setting"];
        let names: Vec<String> = self.names.clone();
        header.extend(names.iter().map(String::as_str));
        header.push("Norm");
        let mut table = TextTable::new(
            format!(
                "Table II — DCA vs Multinomial FA*IR on districts {:?} ({} students, k = {:.0}%)",
                self.districts,
                self.district_size,
                self.k * 100.0
            ),
            &header,
        );
        for row in &self.rows {
            let mut cells = vec![row.setting.clone()];
            cells.extend(row.disparity.iter().map(|v| format!("{v:+.3}")));
            cells.push(format!("{:.3}", row.norm));
            table.add_row(cells);
        }
        let mut out = table.render();
        out.push_str(&format!(
            "FA*IR protected subgroups: {}\n",
            self.fastar_groups.join(" | ")
        ));
        out
    }
}

/// Run the Table II comparison on a subset of districts of the training
/// cohort (the paper runs FA\*IR on one ~2,500-student district; pass as many
/// districts as needed to reach a comparable population at the chosen scale).
///
/// # Errors
/// Returns an error if DCA, FA\*IR, or the evaluation fails.
pub fn run_fastar_comparison(
    scale: &ExperimentScale,
    districts: &[u16],
    k: f64,
) -> Result<Table2Result> {
    let (train, _) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let wanted: std::collections::HashSet<u16> = districts.iter().copied().collect();
    let district_of = train.districts().to_vec();
    let mut position = 0;
    let dataset = train.dataset().filter(|_| {
        let keep = wanted.contains(&district_of[position]);
        position += 1;
        keep
    });
    if dataset.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let schema = dataset.schema().clone();
    let binary_dims: Vec<usize> = schema
        .fairness()
        .iter()
        .enumerate()
        .filter(|(_, a)| a.kind() == FairnessKind::Binary)
        .map(|(i, _)| i)
        .collect();
    let names: Vec<String> = binary_dims
        .iter()
        .map(|&d| schema.fairness()[d].name().to_string())
        .collect();
    let project = |full: &[f64]| -> Vec<f64> { binary_dims.iter().map(|&d| full[d]).collect() };

    let dims = schema.num_fairness();
    let zero = vec![0.0; dims];
    let baseline_full = eval_disparity(&dataset, &rubric, &zero, k)?;
    let baseline = project(&baseline_full);

    // DCA on the district.
    let mut config = experiment_dca_config(scale, scale.seed);
    config.sample_size = config.sample_size.min(dataset.len());
    let dca = Dca::new(config).run(&dataset, &rubric, &TopKDisparity::new(k))?;
    let dca_full = eval_disparity(&dataset, &rubric, dca.bonus.values(), k)?;
    let dca_disp = project(&dca_full);

    // Multinomial FA*IR on the 3 most-disadvantaged Cartesian subgroups.
    let view = dataset.full_view();
    let worst = most_disadvantaged_subgroups(&view, &rubric, &binary_dims, k, 3)?;
    let groups: Vec<ProtectedGroup> = worst
        .iter()
        .map(|(g, _)| ProtectedGroup::from_subgroup(&view, g))
        .collect();
    let group_labels: Vec<String> = worst.iter().map(|(g, _)| g.label(&schema)).collect();
    let selection = selection_size(dataset.len(), k)?;
    let fastar = FaStarRanker::new(FaStarConfig::new(0.1, selection)?, groups)?;
    let order = fastar.rerank(&view, &rubric)?;
    let fastar_full = disparity_of_selection(&view, &order)?;
    let fastar_disp = project(&fastar_full);

    let rows = vec![
        Table2Row {
            setting: "Baseline".into(),
            norm: norm(&baseline),
            disparity: baseline,
        },
        Table2Row {
            setting: "DCA".into(),
            norm: norm(&dca_disp),
            disparity: dca_disp,
        },
        Table2Row {
            setting: "Mult. FA*IR".into(),
            norm: norm(&fastar_disp),
            disparity: fastar_disp,
        },
    ];
    Ok(Table2Result {
        names,
        districts: districts.to_vec(),
        district_size: dataset.len(),
        k,
        dca_bonus: dca.bonus.values().to_vec(),
        fastar_groups: group_labels,
        rows,
    })
}

// ---------------------------------------------------------------------------
// Section VI-C4 — exposure / DDP
// ---------------------------------------------------------------------------

/// Result of the exposure/DDP evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureResult {
    /// DDP of the uncorrected ranking.
    pub ddp_before: f64,
    /// DDP after applying the log-discounted DCA bonus.
    pub ddp_after: f64,
    /// The bonus vector used.
    pub bonus: Vec<f64>,
}

impl ExposureResult {
    /// Render the before/after DDP values.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            "Section VI-C4 — exposure / demographic disparity (DDP)",
            &["Setting", "DDP"],
        );
        table.add_row(vec!["Baseline".into(), format!("{:.5}", self.ddp_before)]);
        table.add_row(vec![
            "DCA (log-discounted)".into(),
            format!("{:.5}", self.ddp_after),
        ]);
        let mut out = table.render();
        out.push_str(&format!(
            "Improvement factor: {:.1}x\n",
            if self.ddp_after > 0.0 {
                self.ddp_before / self.ddp_after
            } else {
                f64::INFINITY
            }
        ));
        out
    }
}

/// Run the exposure/DDP evaluation on the test cohort using a log-discounted
/// DCA bonus learned on the training cohort.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_exposure(scale: &ExperimentScale) -> Result<ExposureResult> {
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let config = experiment_dca_config(scale, scale.seed);
    let objective = LogDiscountedObjective::new(LogDiscountConfig {
        step: 10,
        max_fraction: 0.5,
    });
    let dca = Dca::new(config).run(train.dataset(), &rubric, &objective)?;

    let view = test.dataset().full_view();
    let dims = view.schema().num_fairness();
    let before_ranking =
        RankedSelection::from_scores(effective_scores(&view, &rubric, &vec![0.0; dims]));
    let after_ranking =
        RankedSelection::from_scores(effective_scores(&view, &rubric, dca.bonus.values()));
    Ok(ExposureResult {
        ddp_before: ddp_for_binary_attributes(&view, &before_ranking)?,
        ddp_after: ddp_for_binary_attributes(&view, &after_ranking)?,
        bonus: dca.bonus.values().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ExperimentScale {
        ExperimentScale {
            dca_iterations: 30,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn quota_reduces_disparity_but_less_than_perfectly() {
        let result = run_quota(&scale(), 0.7).unwrap();
        assert_eq!(result.points.len(), 10);
        for ((_, _, quota_norm), (_, base_norm)) in result.points.iter().zip(&result.baseline_norms)
        {
            assert!(
                *quota_norm <= base_norm + 1e-9,
                "quota must not worsen disparity"
            );
        }
        // The quota helps at the smallest k, where the baseline is worst.
        assert!(result.points[0].2 < result.baseline_norms[0].1);
        assert!(result.render().contains("Figure 6"));
    }

    #[test]
    fn delta2_matches_dca_quality_at_full_proportion() {
        let result = run_delta2_comparison(&scale()).unwrap();
        assert_eq!(result.points.len(), 5);
        let last = result.points.last().unwrap();
        // Both methods achieve low disparity and high utility at the full
        // intervention level.
        assert!(last.dca_norm < 0.25, "dca norm {}", last.dca_norm);
        assert!(last.delta2_norm < 0.30, "(Δ+2) norm {}", last.delta2_norm);
        assert!(last.dca_ndcg > 0.85 && last.delta2_ndcg > 0.7);
        assert!(result.render().contains("Figure 7"));
    }

    #[test]
    fn fastar_comparison_favours_dca_on_overlapping_groups() {
        // Merge half the districts so the comparison population and selection
        // are large enough for the FA*IR mtables to bind at test scale.
        let districts: Vec<u16> = (0..16).collect();
        let result = run_fastar_comparison(&scale(), &districts, 0.1).unwrap();
        assert_eq!(result.rows.len(), 3);
        let baseline = &result.rows[0];
        let dca = &result.rows[1];
        let fastar = &result.rows[2];
        assert!(baseline.norm > 0.1);
        assert!(dca.norm < baseline.norm, "DCA improves over the baseline");
        assert!(
            fastar.norm <= baseline.norm + 1e-9,
            "FA*IR must not worsen the baseline: {} vs {}",
            fastar.norm,
            baseline.norm
        );
        // The paper finds DCA at least as good as FA*IR thanks to overlap
        // handling; allow a small tolerance for the synthetic cohort.
        assert!(
            dca.norm <= fastar.norm + 0.05,
            "dca {} vs fastar {}",
            dca.norm,
            fastar.norm
        );
        assert_eq!(result.fastar_groups.len(), 3);
        assert!(result.render().contains("Table II"));
    }

    #[test]
    fn ddp_improves_after_log_discounted_dca() {
        let result = run_exposure(&scale()).unwrap();
        assert!(result.ddp_before > 0.0);
        assert!(
            result.ddp_after < result.ddp_before,
            "DDP should improve: {} vs {}",
            result.ddp_after,
            result.ddp_before
        );
        assert!(result.render().contains("DDP"));
    }
}
