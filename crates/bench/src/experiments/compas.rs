//! Figures 10a–10c — DCA on the COMPAS-like recidivism data.
//!
//! Being selected (flagged as high risk by the decile score) is the
//! *unfavorable* outcome, so DCA runs with non-positive bonus points that
//! subtract from the effective decile of over-flagged groups.
//!
//! * **Figure 10a**: per-k disparity of the flagged set by race, before and
//!   after bonus points optimized for each `k`.
//! * **Figure 10b**: per-k false-positive rates by race after FPR-driven DCA.
//! * **Figure 10c**: a single log-discounted DCA run evaluated across `k` —
//!   coarse decile scores make the curve move in steps.

use crate::datasets::{standard_compas, ExperimentScale};
use crate::table::TextTable;
use crate::{eval_disparity, experiment_dca_config, k_grid};
use fair_core::metrics::group_fpr_at_k;
use fair_core::prelude::*;
use fair_data::CompasGenerator;

/// Per-k before/after disparity rows (Figure 10a) or FPR rows (Figure 10b).
#[derive(Debug, Clone, PartialEq)]
pub struct CompasRow {
    /// Selection (flagging) fraction.
    pub k: f64,
    /// Per-group values before the intervention.
    pub before: Vec<f64>,
    /// Per-group values after the intervention.
    pub after: Vec<f64>,
    /// The (non-positive) bonus vector used.
    pub bonus: Vec<f64>,
}

/// Result of a COMPAS per-k experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct CompasResult {
    /// Race-group names (fairness dimensions).
    pub names: Vec<String>,
    /// What the values measure ("disparity" or "FPR").
    pub measure: String,
    /// Per-k rows.
    pub rows: Vec<CompasRow>,
}

impl CompasResult {
    /// Render before/after norms per k.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let mut header = vec![
            "k".to_string(),
            "Norm before".to_string(),
            "Norm after".to_string(),
        ];
        header.extend(self.names.iter().map(|n| format!("{n} (after)")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(title, &header_refs);
        for row in &self.rows {
            let mut cells = vec![
                format!("{:.2}", row.k),
                format!("{:.3}", norm(&row.before)),
                format!("{:.3}", norm(&row.after)),
            ];
            cells.extend(row.after.iter().map(|v| format!("{v:+.3}")));
            table.add_row(cells);
        }
        table.render()
    }
}

/// Shared COMPAS DCA configuration: non-positive bonuses, decile-scale steps.
fn compas_config(scale: &ExperimentScale) -> DcaConfig {
    DcaConfig {
        polarity: BonusPolarity::NonPositive,
        // Decile scores span 1..10, so the bonus magnitudes are small; a finer
        // granularity keeps the intervention meaningful.
        granularity: Some(0.5),
        ..experiment_dca_config(scale, scale.seed)
    }
}

/// Run Figure 10a: disparity of the flagged set by race, per k, before and
/// after a per-k optimized (non-positive) bonus.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_fig10a(scale: &ExperimentScale) -> Result<CompasResult> {
    let dataset = standard_compas(scale);
    let ranker = CompasGenerator::decile_ranker();
    let names: Vec<String> = dataset
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    let zero = vec![0.0; dims];

    let mut rows = Vec::new();
    for k in k_grid() {
        let dca = Dca::new(compas_config(scale)).run(&dataset, &ranker, &TopKDisparity::new(k))?;
        rows.push(CompasRow {
            k,
            before: eval_disparity(&dataset, &ranker, &zero, k)?,
            after: eval_disparity(&dataset, &ranker, dca.bonus.values(), k)?,
            bonus: dca.bonus.values().to_vec(),
        });
    }
    Ok(CompasResult {
        names,
        measure: "disparity".into(),
        rows,
    })
}

/// Run Figure 10b: per-group false-positive rates, per k, before and after an
/// FPR-difference-driven (non-positive) bonus.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_fig10b(scale: &ExperimentScale) -> Result<CompasResult> {
    let dataset = standard_compas(scale);
    let ranker = CompasGenerator::decile_ranker();
    let names: Vec<String> = dataset
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    let zero = vec![0.0; dims];
    let view = dataset.full_view();

    let fpr_diff = |bonus: &[f64], k: f64| -> Result<Vec<f64>> {
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, bonus));
        let (per_group, overall) = group_fpr_at_k(&view, &ranking, k)?;
        Ok(per_group.into_iter().map(|f| f - overall).collect())
    };

    let mut rows = Vec::new();
    for k in k_grid() {
        let dca = Dca::new(compas_config(scale)).run(
            &dataset,
            &ranker,
            &FprDifferenceObjective::new(k),
        )?;
        rows.push(CompasRow {
            k,
            before: fpr_diff(&zero, k)?,
            after: fpr_diff(dca.bonus.values(), k)?,
            bonus: dca.bonus.values().to_vec(),
        });
    }
    Ok(CompasResult {
        names,
        measure: "FPR difference".into(),
        rows,
    })
}

/// Run Figure 10c: one log-discounted DCA run, evaluated across the k grid.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_fig10c(scale: &ExperimentScale) -> Result<CompasResult> {
    let dataset = standard_compas(scale);
    let ranker = CompasGenerator::decile_ranker();
    let names: Vec<String> = dataset
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    let zero = vec![0.0; dims];

    let objective = LogDiscountedObjective::new(LogDiscountConfig {
        step: 10,
        max_fraction: 0.5,
    });
    let dca = Dca::new(compas_config(scale)).run(&dataset, &ranker, &objective)?;

    let mut rows = Vec::new();
    for k in k_grid() {
        rows.push(CompasRow {
            k,
            before: eval_disparity(&dataset, &ranker, &zero, k)?,
            after: eval_disparity(&dataset, &ranker, dca.bonus.values(), k)?,
            bonus: dca.bonus.values().to_vec(),
        });
    }
    Ok(CompasResult {
        names,
        measure: "disparity (log-discounted bonus)".into(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scale() -> ExperimentScale {
        ExperimentScale {
            dca_iterations: 30,
            compas_size: 4_000,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn fig10a_reduces_racial_disparity_of_the_flagged_set() {
        let result = run_fig10a(&scale()).unwrap();
        assert_eq!(result.rows.len(), 10);
        // Before: African-American (dim 0) over-flagged, Caucasian (dim 1)
        // under-flagged, at moderate k.
        let row = result
            .rows
            .iter()
            .find(|r| (r.k - 0.25).abs() < 1e-9)
            .unwrap();
        assert!(row.before[0] > 0.03, "{:?}", row.before);
        assert!(row.before[1] < -0.03, "{:?}", row.before);
        // After: the norm shrinks and bonuses are non-positive.
        assert!(norm(&row.after) < norm(&row.before), "{:?}", row);
        assert!(row.bonus.iter().all(|b| *b <= 0.0));
        assert!(result.render("Fig 10a").contains("Norm after"));
    }

    #[test]
    fn fig10b_reduces_fpr_gaps() {
        let result = run_fig10b(&scale()).unwrap();
        let row = result
            .rows
            .iter()
            .find(|r| (r.k - 0.3).abs() < 1e-9)
            .unwrap();
        assert!(
            norm(&row.after) <= norm(&row.before) + 1e-9,
            "FPR gaps should not grow: {:?}",
            row
        );
        assert!(
            row.before[0] > 0.0,
            "African-American FPR above average before correction"
        );
    }

    #[test]
    fn fig10c_single_bonus_vector_helps_across_k() {
        let result = run_fig10c(&scale()).unwrap();
        let avg_before: f64 =
            result.rows.iter().map(|r| norm(&r.before)).sum::<f64>() / result.rows.len() as f64;
        let avg_after: f64 =
            result.rows.iter().map(|r| norm(&r.after)).sum::<f64>() / result.rows.len() as f64;
        assert!(avg_after < avg_before, "{avg_after} vs {avg_before}");
        // A single bonus vector is shared by every row.
        let first = &result.rows[0].bonus;
        assert!(result.rows.iter().all(|r| &r.bonus == first));
    }
}
