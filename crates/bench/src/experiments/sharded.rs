//! Sharded-engine parity and timing: every whole-cohort metric evaluated
//! through the shard-wise parallel engine against its serial counterpart.
//!
//! The experiment generates the school cohort **directly into shards**
//! (`SchoolGenerator::generate_sharded`), evaluates disparity@k, nDCG@k and
//! the log-discounted disparity both serially (score → full/partial sort →
//! measure on the contiguous dataset) and shard-wise, reports the maximum
//! absolute deviation per metric (exactly 0 for binary attributes; at worst
//! reassociation ulps on the continuous ENI dimension), and times both
//! paths. It also runs sharded Full DCA against serial Full DCA as the
//! centroid-accumulation parity check.

use crate::datasets::ExperimentScale;
use crate::disparity_curve;
use crate::table::TextTable;
use fair_core::metrics::sharded as shmetrics;
use fair_core::prelude::*;
use fair_data::{SchoolConfig, SchoolGenerator};
use std::time::Instant;

/// One metric's serial-vs-sharded comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedMetricRow {
    /// Metric name.
    pub metric: String,
    /// Serial end-to-end evaluation time (ms).
    pub serial_ms: f64,
    /// Sharded end-to-end evaluation time (ms).
    pub sharded_ms: f64,
    /// Maximum absolute deviation between the two results.
    pub max_abs_diff: f64,
}

/// Result of the sharded-engine parity experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedParityResult {
    /// Cohort size.
    pub n: usize,
    /// Shard size used.
    pub shard_size: usize,
    /// Number of shards.
    pub num_shards: usize,
    /// Per-metric comparisons.
    pub rows: Vec<ShardedMetricRow>,
    /// Max absolute deviation of the sharded Full-DCA bonus trajectory from
    /// the serial one (0 for the binary dimensions; ulps via ENI otherwise).
    pub full_dca_bonus_diff: f64,
    /// Norm of the disparity left after sharded-sampled Core DCA.
    pub core_sharded_residual: f64,
}

impl ShardedParityResult {
    /// Render the comparison table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = TextTable::new(
            format!(
                "Sharded engine — serial vs shard-wise evaluation (n = {}, {} shards x {})",
                self.n, self.num_shards, self.shard_size
            ),
            &["Metric", "Serial ms", "Sharded ms", "Max |diff|"],
        );
        for row in &self.rows {
            table.add_row(vec![
                row.metric.clone(),
                format!("{:.3}", row.serial_ms),
                format!("{:.3}", row.sharded_ms),
                format!("{:.2e}", row.max_abs_diff),
            ]);
        }
        table.add_row(vec![
            "full-DCA bonus traj.".to_string(),
            String::new(),
            String::new(),
            format!("{:.2e}", self.full_dca_bonus_diff),
        ]);
        table.add_row(vec![
            "core DCA residual".to_string(),
            String::new(),
            String::new(),
            format!("{:.3}", self.core_sharded_residual),
        ]);
        table.render()
    }
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Run the sharded parity experiment.
///
/// # Errors
/// Returns an error if any evaluation fails.
pub fn run_sharded_parity(scale: &ExperimentScale) -> Result<ShardedParityResult> {
    let k = 0.05;
    let shard_size =
        fair_core::default_shard_size().min(scale.school_cohort_size.div_ceil(4).max(1));
    let generator = SchoolGenerator::new(SchoolConfig {
        num_students: scale.school_cohort_size,
        seed: scale.seed,
        ..SchoolConfig::default()
    });
    let sharded = generator.generate_sharded(shard_size)?.into_dataset();
    let flat = generator.generate().into_dataset();
    let rubric = SchoolGenerator::rubric();
    let bonus = vec![1.0, 10.0, 12.0, 12.0];

    let mut rows = Vec::new();

    // disparity@k.
    let start = Instant::now();
    let serial_disp = crate::eval_disparity(&flat, &rubric, &bonus, k)?;
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sharded_disp = shmetrics::disparity_at_k(&sharded, &rubric, &bonus, k)?;
    rows.push(ShardedMetricRow {
        metric: "disparity@k".to_string(),
        serial_ms,
        sharded_ms: start.elapsed().as_secs_f64() * 1e3,
        max_abs_diff: max_abs_diff(&serial_disp, &sharded_disp),
    });

    // nDCG@k.
    let start = Instant::now();
    let serial_ndcg = crate::eval_ndcg(&flat, &rubric, &bonus, k)?;
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sharded_ndcg = shmetrics::ndcg_at_k(&sharded, &rubric, &bonus, k)?;
    rows.push(ShardedMetricRow {
        metric: "nDCG@k".to_string(),
        serial_ms,
        sharded_ms: start.elapsed().as_secs_f64() * 1e3,
        max_abs_diff: (serial_ndcg - sharded_ndcg).abs(),
    });

    // Log-discounted disparity.
    let log_cfg = LogDiscountConfig::default();
    let start = Instant::now();
    let view = flat.full_view();
    let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &bonus));
    let serial_log = log_discounted_disparity(&view, &ranking, &log_cfg)?;
    let serial_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let sharded_log = shmetrics::log_discounted_disparity(&sharded, &rubric, &bonus, &log_cfg)?;
    rows.push(ShardedMetricRow {
        metric: "log-discounted".to_string(),
        serial_ms,
        sharded_ms: start.elapsed().as_secs_f64() * 1e3,
        max_abs_diff: max_abs_diff(&serial_log, &sharded_log),
    });

    // Full DCA: the sharded engine must walk the serial trajectory.
    let dca_config = DcaConfig {
        learning_rates: vec![1.0],
        iterations_per_rate: 3,
        refinement_iterations: 0,
        seed: scale.seed,
        ..DcaConfig::default()
    };
    let objective = TopKDisparity::new(k);
    let serial_full = run_full_dca(&flat, &rubric, &objective, &dca_config, None, false)?;
    let sharded_full =
        run_full_dca_sharded(&sharded, &rubric, &objective, &dca_config, None, false)?;
    let full_dca_bonus_diff = max_abs_diff(&serial_full.bonus, &sharded_full.bonus);

    // Core DCA with per-shard sampling: must converge like the serial one.
    let core_config = DcaConfig {
        sample_size: scale.dca_sample_size,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: scale.dca_iterations,
        refinement_iterations: 0,
        seed: scale.seed,
        ..DcaConfig::default()
    };
    let core = run_core_dca_sharded(&sharded, &rubric, &objective, &core_config, None, false)?;
    let residual = shmetrics::disparity_at_k(&sharded, &rubric, &core.bonus, k)?;
    let core_sharded_residual = norm(&residual);

    // The disparity curve on the flat cohort sanity-checks that the shared
    // datasets agree end to end (same generator stream).
    let point = &disparity_curve(&flat, &rubric, &bonus, &[k])?[0];
    debug_assert!((norm(&point.disparity) - norm(&serial_disp)).abs() < 1e-12);

    Ok(ShardedParityResult {
        n: flat.len(),
        shard_size,
        num_shards: sharded.num_shards(),
        rows,
        full_dca_bonus_diff,
        core_sharded_residual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_holds_at_tiny_scale() {
        let result = run_sharded_parity(&ExperimentScale::tiny()).unwrap();
        assert_eq!(result.rows.len(), 3);
        for row in &result.rows {
            // Binary dimensions agree exactly; the continuous ENI dimension
            // may differ by reassociation ulps only.
            assert!(
                row.max_abs_diff < 1e-9,
                "{}: diff {}",
                row.metric,
                row.max_abs_diff
            );
        }
        assert!(result.full_dca_bonus_diff < 1e-9);
        assert!(
            result.core_sharded_residual < 0.2,
            "sharded-sampled DCA must converge: {}",
            result.core_sharded_residual
        );
        let text = result.render();
        assert!(text.contains("Sharded engine"));
        assert!(text.contains("nDCG@k"));
    }
}
