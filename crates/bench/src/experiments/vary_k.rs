//! Figures 4a–4c and 8a/8b — behaviour across selection fractions and the
//! refinement-step ablation.
//!
//! * **Figure 4a**: DCA re-optimized for every `k` essentially eliminates the
//!   disparity at that `k`.
//! * **Figure 4b**: a bonus vector optimized for k = 5% evaluated across all
//!   `k` — excellent at 5%, degrading away from it.
//! * **Figure 4c**: the log-discounted mode — good (if slightly worse at any
//!   single `k`) across the whole range.
//! * **Figure 8a**: Core DCA (no refinement) re-optimized per `k` — noisier
//!   than Figure 4a.
//! * **Figure 8b**: wall-clock time of the unrefined vs refined runs per `k`.

use crate::datasets::{standard_school_pair, ExperimentScale};
use crate::table::TextTable;
use crate::{disparity_curve, eval_disparity, experiment_dca_config, k_grid};
use fair_core::prelude::*;
use fair_data::SchoolGenerator;
use std::time::Duration;

/// One per-k row of the Figure 4a / 8a style experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct PerKRow {
    /// Selection fraction.
    pub k: f64,
    /// Disparity before correction at this `k` (test cohort).
    pub before: Vec<f64>,
    /// Disparity after correction at this `k` (test cohort).
    pub after: Vec<f64>,
    /// The bonus vector used.
    pub bonus: Vec<f64>,
    /// Wall-clock time of the bonus computation.
    pub elapsed: Duration,
}

/// Result of an experiment that re-optimizes DCA for every `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerKResult {
    /// Fairness-attribute names.
    pub names: Vec<String>,
    /// Whether the refinement step was enabled.
    pub refined: bool,
    /// Per-k rows.
    pub rows: Vec<PerKRow>,
}

impl PerKResult {
    /// Render before/after norms and timing per `k`.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let mut table = TextTable::new(title, &["k", "Norm before", "Norm after", "Time (ms)"]);
        for row in &self.rows {
            table.add_row(vec![
                format!("{:.2}", row.k),
                format!("{:.3}", norm(&row.before)),
                format!("{:.3}", norm(&row.after)),
                format!("{}", row.elapsed.as_millis()),
            ]);
        }
        table.render()
    }
}

/// Result of evaluating one fixed bonus vector across the k grid
/// (Figures 4b and 4c).
#[derive(Debug, Clone, PartialEq)]
pub struct FixedBonusAcrossK {
    /// Fairness-attribute names.
    pub names: Vec<String>,
    /// The bonus vector being evaluated.
    pub bonus: Vec<f64>,
    /// Per-k points: `(k, disparity vector, norm)` on the test cohort.
    pub points: Vec<(f64, Vec<f64>, f64)>,
}

impl FixedBonusAcrossK {
    /// Render the per-k disparity series.
    #[must_use]
    pub fn render(&self, title: &str) -> String {
        let mut header = vec!["k"];
        let names: Vec<String> = self.names.clone();
        header.extend(names.iter().map(String::as_str));
        header.push("Norm");
        let mut table = TextTable::new(title, &header);
        for (k, disp, n) in &self.points {
            let mut cells = vec![format!("{k:.2}")];
            cells.extend(disp.iter().map(|v| format!("{v:+.3}")));
            cells.push(format!("{n:.3}"));
            table.add_row(cells);
        }
        table.render()
    }
}

/// Run the per-k re-optimization experiment (Figure 4a with `refined = true`,
/// Figure 8a with `refined = false`; the timing column is Figure 8b).
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_per_k(scale: &ExperimentScale, refined: bool) -> Result<PerKResult> {
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let names: Vec<String> = train
        .dataset()
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let dims = names.len();
    let zero = vec![0.0; dims];

    // Every k is an independent DCA run plus its own full-dataset
    // evaluations, so the sweep maps cleanly onto scoped worker threads.
    // Per-k seeds and configs are unchanged, so bonuses and disparities are
    // identical to a sequential sweep; the per-row `elapsed` wall-clock is
    // measured under concurrent execution, so it carries scheduler
    // contention (fine for the Figure 8b shape, not for absolute per-run
    // comparisons across machines).
    let ks = k_grid();
    let rows = parallel_map(&ks, |&k| -> Result<PerKRow> {
        let mut config = experiment_dca_config(scale, scale.seed);
        if !refined {
            config.refinement_iterations = 0;
        }
        let start = std::time::Instant::now();
        let dca = Dca::new(config).run(train.dataset(), &rubric, &TopKDisparity::new(k))?;
        let elapsed = start.elapsed();
        Ok(PerKRow {
            k,
            before: eval_disparity(test.dataset(), &rubric, &zero, k)?,
            after: eval_disparity(test.dataset(), &rubric, dca.bonus.values(), k)?,
            bonus: dca.bonus.values().to_vec(),
            elapsed,
        })
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;
    Ok(PerKResult {
        names,
        refined,
        rows,
    })
}

/// Run Figure 4b: optimize at `opt_k` (5% in the paper) and evaluate the
/// resulting bonus across the whole k grid.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_fixed_k(scale: &ExperimentScale, opt_k: f64) -> Result<FixedBonusAcrossK> {
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let names: Vec<String> = train
        .dataset()
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let config = experiment_dca_config(scale, scale.seed);
    let dca = Dca::new(config).run(train.dataset(), &rubric, &TopKDisparity::new(opt_k))?;
    let curve = disparity_curve(test.dataset(), &rubric, dca.bonus.values(), &k_grid())?;
    Ok(FixedBonusAcrossK {
        names,
        bonus: dca.bonus.values().to_vec(),
        points: curve
            .into_iter()
            .map(|p| (p.k, p.disparity, p.norm))
            .collect(),
    })
}

/// Run Figure 4c: the logarithmically discounted mode, evaluated across the k
/// grid.
///
/// # Errors
/// Returns an error if DCA or the evaluation fails.
pub fn run_log_discounted(scale: &ExperimentScale) -> Result<FixedBonusAcrossK> {
    let (train, test) = standard_school_pair(scale);
    let rubric = SchoolGenerator::rubric();
    let names: Vec<String> = train
        .dataset()
        .schema()
        .fairness_names()
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let config = experiment_dca_config(scale, scale.seed);
    let objective = LogDiscountedObjective::new(LogDiscountConfig {
        step: 10,
        max_fraction: 0.5,
    });
    let dca = Dca::new(config).run(train.dataset(), &rubric, &objective)?;
    let curve = disparity_curve(test.dataset(), &rubric, dca.bonus.values(), &k_grid())?;
    Ok(FixedBonusAcrossK {
        names,
        bonus: dca.bonus.values().to_vec(),
        points: curve
            .into_iter()
            .map(|p| (p.k, p.disparity, p.norm))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_with_fewer_ks() -> ExperimentScale {
        // Smaller iteration counts keep the 10-point grid affordable in tests.
        ExperimentScale {
            dca_iterations: 25,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn per_k_reoptimization_essentially_eliminates_disparity() {
        let result = run_per_k(&tiny_with_fewer_ks(), true).unwrap();
        assert_eq!(result.rows.len(), 10);
        for row in &result.rows {
            // Every k improves; the small-k region (where the baseline gap is
            // largest) improves by a wide margin. Larger k values start from a
            // small baseline where the 0.5-point rounding limits the gain.
            assert!(
                norm(&row.after) < norm(&row.before),
                "k = {}: {} vs {}",
                row.k,
                norm(&row.after),
                norm(&row.before)
            );
            if row.k <= 0.25 {
                assert!(
                    norm(&row.after) < norm(&row.before) * 0.7,
                    "k = {}: {} vs {}",
                    row.k,
                    norm(&row.after),
                    norm(&row.before)
                );
            }
        }
        assert!(result.render("Fig 4a").contains("Norm after"));
    }

    #[test]
    fn fixed_k_bonus_is_best_near_its_target() {
        let scale = tiny_with_fewer_ks();
        let result = run_fixed_k(&scale, 0.05).unwrap();
        assert_eq!(result.points.len(), 10);
        // The bonus optimized for k = 5% must clearly beat the uncorrected
        // baseline at k = 5%.
        let (_, test) = standard_school_pair(&scale);
        let rubric = SchoolGenerator::rubric();
        let baseline = norm(&eval_disparity(test.dataset(), &rubric, &[0.0; 4], 0.05).unwrap());
        let at_target = result.points[0].2;
        assert!(
            at_target < baseline * 0.6,
            "target-k disparity {at_target} vs uncorrected {baseline}"
        );
        assert!(result.render("Fig 4b").contains("Norm"));
    }

    #[test]
    fn log_discounted_mode_is_reasonable_across_all_k() {
        let scale = tiny_with_fewer_ks();
        let result = run_log_discounted(&scale).unwrap();
        // Compare against the uncorrected curve: the log-discounted bonus must
        // improve the average norm over the k grid.
        let (_, test) = standard_school_pair(&scale);
        let rubric = SchoolGenerator::rubric();
        let baseline = disparity_curve(test.dataset(), &rubric, &[0.0; 4], &k_grid()).unwrap();
        let base_avg: f64 = baseline.iter().map(|p| p.norm).sum::<f64>() / baseline.len() as f64;
        let corrected_avg: f64 =
            result.points.iter().map(|(_, _, n)| n).sum::<f64>() / result.points.len() as f64;
        assert!(
            corrected_avg < base_avg * 0.7,
            "log-discounted DCA should improve the average norm: {corrected_avg} vs {base_avg}"
        );
    }

    #[test]
    fn unrefined_runs_are_faster_but_noisier_or_similar() {
        let scale = tiny_with_fewer_ks();
        let unrefined = run_per_k(&scale, false).unwrap();
        assert!(!unrefined.refined);
        // Core DCA still reduces disparity everywhere.
        for row in &unrefined.rows {
            assert!(norm(&row.after) < norm(&row.before));
        }
        // Unrefined runs do strictly less work.
        let total_unrefined: u128 = unrefined.rows.iter().map(|r| r.elapsed.as_micros()).sum();
        assert!(total_unrefined > 0);
    }
}
