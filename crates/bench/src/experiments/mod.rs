//! One module per experiment of the paper's evaluation section.
//!
//! | Module | Paper artifacts |
//! |--------|-----------------|
//! | [`table1`] | Table I — school disparity before/after Core DCA and DCA |
//! | [`utility`] | Figures 1–3 — nDCG@k and the bonus-proportion trade-off |
//! | [`vary_k`] | Figures 4a–4c and 8a/8b — varying selection sizes, refinement ablation |
//! | [`caps`] | Figure 5 — maximum-bonus limits |
//! | [`baselines_cmp`] | Figure 6, Figure 7, Table II, Section VI-C4 — quota, (Δ+2), FA\*IR, exposure |
//! | [`alt_metrics`] | Figure 9 — DCA driven by Disparity vs Disparate Impact |
//! | [`compas`] | Figures 10a–10c — COMPAS disparity, FPR, log-discounted mode |
//! | [`sharded`] | Sharded-engine parity: serial vs shard-wise evaluation of every whole-cohort metric |
//! | [`out_of_core`] | Out-of-core store: paged vs in-memory evaluation at several cache budgets |

pub mod alt_metrics;
pub mod baselines_cmp;
pub mod caps;
pub mod compas;
pub mod out_of_core;
pub mod sharded;
pub mod table1;
pub mod utility;
pub mod vary_k;
