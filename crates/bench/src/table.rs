//! Plain-text table rendering for experiment output.
//!
//! The experiment binaries print results in the same row/column layout as the
//! paper's tables and figure series, so a reader can compare shapes directly.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of pre-formatted cells.
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row length must match the header"
        );
        self.rows.push(cells);
    }

    /// Append a row of labelled numeric values formatted to three decimals.
    ///
    /// # Panics
    /// Panics if `1 + values.len()` differs from the header length.
    pub fn add_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:+.3}")));
        self.add_row(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as fixed-width text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_and_rows_aligned() {
        let mut t = TextTable::new("Demo", &["Setting", "Low-Income", "Norm"]);
        t.add_numeric_row("Baseline", &[-0.252, 0.377]);
        t.add_row(vec!["DCA".into(), "-0.018".into(), "0.023".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("Setting"));
        assert!(text.contains("-0.252"));
        assert!(text.contains("DCA"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every data line has the same column layout (separator present).
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].chars().all(|c| c == '-'));
    }

    #[test]
    fn display_matches_render() {
        let t = TextTable::new("x", &["a"]);
        assert_eq!(t.to_string(), t.render());
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }
}
