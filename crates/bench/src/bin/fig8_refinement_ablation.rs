//! Regenerates Figures 8a/8b: Core DCA (without refinement) across k, and the
//! wall-clock cost of the unrefined vs refined variants.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::vary_k::run_per_k;

fn main() {
    let scale = ExperimentScale::from_env();
    let unrefined = run_per_k(&scale, false).expect("Figure 8a experiment failed");
    println!(
        "{}",
        unrefined.render("Figure 8a — Core DCA (no refinement) re-optimized per k")
    );
    let refined = run_per_k(&scale, true).expect("Figure 8b experiment failed");
    println!(
        "{}",
        refined.render("Figure 8b reference — refined DCA per k (compare the Time column)")
    );
}
