//! Regenerates the Section VI-C4 exposure / DDP evaluation.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::baselines_cmp::run_exposure;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_exposure(&scale).expect("Exposure/DDP experiment failed");
    println!("{}", result.render());
    println!("Log-discounted bonus vector: {:?}", result.bonus);
}
