//! Regenerates Figure 4a: disparity before/after DCA when k is known and the
//! bonus is re-optimized for every k.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::vary_k::run_per_k;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_per_k(&scale, true).expect("Figure 4a experiment failed");
    println!(
        "{}",
        result.render("Figure 4a — DCA re-optimized for every k (test cohort)")
    );
}
