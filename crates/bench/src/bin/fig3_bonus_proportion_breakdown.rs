//! Regenerates Figure 3: per-dimension disparity for varying proportions of
//! the recommended bonus points (same sweep as Figure 2, per-attribute view).
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::utility::run_proportion_sweep;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_proportion_sweep(&scale).expect("Figure 3 experiment failed");
    println!("{}", result.render());
    println!("Full recommended bonus vector: {:?}", result.full_bonus);
}
