//! Regenerates Figure 5: log-discounted disparity under maximum bonus limits.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::caps::run_caps;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_caps(&scale, None).expect("Figure 5 experiment failed");
    println!("{}", result.render());
}
