//! Regenerates Figure 4c: the logarithmically discounted DCA mode evaluated
//! across all selection fractions.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::vary_k::run_log_discounted;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_log_discounted(&scale).expect("Figure 4c experiment failed");
    println!(
        "{}",
        result.render("Figure 4c — log-discounted DCA evaluated across k")
    );
    println!("Bonus vector: {:?}", result.bonus);
}
