//! Performance report for the DCA data plane — seeds and extends the
//! `BENCH_DCA.json` perf trajectory at the repository root.
//!
//! ```text
//! cargo run --release -p fair-bench --bin perf_report              # 10k/100k/1M
//! cargo run --release -p fair-bench --bin perf_report -- --quick   # 10k only (CI)
//! cargo run --release -p fair-bench --bin perf_report -- --out p.json
//! cargo run --release -p fair-bench --bin perf_report -- --repeats 5
//! ```
//!
//! For each synthetic school cohort the report times:
//!
//! * **Core DCA** (Algorithm 1, sampled; the paper's sub-linearity claim is
//!   that its per-step cost does not grow with the cohort),
//! * **Full DCA** (non-sampled; linear per step, for contrast),
//! * the **metric evaluations** a single step pays (disparity@k,
//!   log-discounted disparity, nDCG@k) on the full cohort,
//! * the same whole-cohort metrics **end to end** (score → rank → measure)
//!   through the serial path and through the shard-wise parallel engine
//!   (`metrics_serial_e2e_ms` / `metrics_sharded_ms` /
//!   `metrics_sharded_speedup`, plus the shard layout and worker count),
//! * the **out-of-core path**: the cohort written to an on-disk `fair-store`
//!   file and the same metrics evaluated through the paged shard cache at a
//!   quarter-cohort budget, with the cache hit/miss/eviction/peak counters
//!   recorded alongside (`out_of_core` in the JSON).
//!
//! Every timing is the **median of `--repeats` runs** (default 3; recorded
//! in the JSON as `repeats`), preceded by one untimed warm-up pass — the 1M
//! Core-DCA timing is bimodal ±30% run-to-run on some boxes, and a median
//! absorbs that where a single run or a best-of can land on either mode,
//! while the warm-up keeps one-off allocation/page-fault costs out of every
//! sample.
//!
//! Schema v4 adds a **serving-layer measurement**: a `fair-serve` instance
//! on an ephemeral port answering the synchronous metrics endpoint
//! (disparity@k over a 10k in-memory cohort) at three client concurrency
//! levels, reported as requests/sec (`serve` in the JSON).
//!
//! Schema v5 reworks the out-of-core section around the one-sweep audit
//! planner and shard readahead: the paged disparity is timed with the
//! readahead thread on *and* off, the cache counters now include
//! prefetch hits/wasted, small cohorts page through deliberately small
//! shards so even `--quick` exercises eviction, and a `multi_metric`
//! sub-section times one five-metric `MetricPlan` sweep against five
//! sequential per-metric paged sweeps on a fully labelled COMPAS store.
//!
//! Schema v6 adds a **fleet measurement** (`fleet` in the JSON): the same
//! cohort served by one vs three `fair-serve` workers behind a
//! `FleetCoordinator`, timing the distributed Full-DCA per-step cost against
//! the local sharded runner (the coordinator + wire overhead), the 3-worker
//! vs 1-worker speedup, and distributed disparity sweeps/sec — with a
//! one-off bit-identity check against the local trajectory.
//!
//! Schema v7 adds a **kernel measurement** (`kernel` in the JSON): the same
//! Core DCA descent timed with the scalar reference loops and with the
//! chunked f64x4 kernels (see `fair_core::kernel`) forced in-process, per
//! cohort size, reported as objects/sec each plus the chunked/scalar
//! speedup.
//!
//! Schema v8 adds an **observability measurement** (`obs` in the JSON): the
//! same sharded Core DCA descent driven through `RunControl` with no
//! progress hook vs with the per-step duration histogram hook the job
//! manager installs (`fair_core::dca::step_duration_hook`), reported as
//! per-step cost each plus the instrumented/plain ratio — the acceptance
//! budget is < 5% overhead — together with a one-off bit-identity check of
//! the two trajectories and the latency and size of one `GET /metrics`
//! scrape against a live server.
//!
//! Schema v9 adds a **profile measurement** (`profile` in the JSON): the
//! same paged Core DCA descent run plain vs with a `JobProfile` installed
//! (the per-job phase profiler the job manager wires up), reported as
//! per-step cost each, the profiled/plain ratio (budget ≤ 1.05x, enforced
//! as a non-zero exit in full mode together with the v8 hook overhead), and
//! the per-phase breakdown of one profiled run — where the descent's time
//! actually went (`page_in`/`decode`/`score`/`sample`/`combine`/`wire`).
//! The `/metrics` scrape is now timed twice: cache off and with
//! `FAIR_SCRAPE_CACHE_MS` serving a cached rendering.
//!
//! The summary line checks the headline claim directly: Core DCA's per-step
//! time at the largest cohort must stay within 2x of the 10k per-step time.

use fair_bench::datasets::ExperimentScale;
use fair_core::metrics::sharded::{self as shmetrics, MetricKind, MetricPlan};
use fair_core::metrics::{disparity_at_k, log_discounted_disparity, ndcg_at_k, LogDiscountConfig};
use fair_core::prelude::*;
use fair_data::store::{compas_to_store, school_to_store};
use fair_data::{CompasConfig, CompasGenerator, SchoolConfig, SchoolGenerator};
use fair_serve::{
    serve, AuditService, Client, FleetConfig, FleetCoordinator, MetricsRequest, ServerHandle,
};
use fair_store::{CacheStats, ShardStore};
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

/// Timed numbers for one cohort size.
struct CohortReport {
    n: usize,
    sample_size: usize,
    generate_ms: f64,
    core_total_ms: f64,
    core_steps: usize,
    core_per_step_us: f64,
    core_objects_scored: usize,
    core_objects_per_sec: f64,
    full_total_ms: f64,
    full_steps: usize,
    full_per_step_ms: f64,
    disparity_ms: f64,
    log_discounted_ms: f64,
    ndcg_ms: f64,
    /// Shard layout used by the shard-wise engine timings.
    shard_size: usize,
    num_shards: usize,
    /// Serial end-to-end (score → sort → measure) per metric, ms.
    serial_e2e: MetricTriple,
    /// Shard-wise end-to-end per metric, ms.
    sharded_e2e: MetricTriple,
    /// Out-of-core numbers: the cohort evaluated from its on-disk store.
    out_of_core: OutOfCoreReport,
}

/// Timings and cache behaviour of the paged (on-disk) evaluation.
struct OutOfCoreReport {
    /// One-off cost of streaming the cohort onto disk.
    store_write_ms: f64,
    /// Cache byte budget the paged evaluation ran under.
    budget_bytes: usize,
    /// Shard size of the on-disk layout (small cohorts deliberately page
    /// through small shards so even `--quick` exercises eviction).
    shard_size: usize,
    /// Readahead depth the prefetch-on timings ran with.
    prefetch: usize,
    /// disparity@k end-to-end over the store with readahead on, ms (median).
    disparity_ms: f64,
    /// disparity@k with the readahead thread disabled, ms (median).
    disparity_no_prefetch_ms: f64,
    /// nDCG@k end-to-end over the store, ms (median).
    ndcg_ms: f64,
    /// Cumulative cache counters after the readahead-on timed runs.
    cache: CacheStats,
    /// One-sweep multi-metric plan vs sequential per-metric paged sweeps.
    multi_metric: MultiMetricReport,
}

/// One five-metric `MetricPlan` sweep vs five sequential per-metric paged
/// sweeps, on a fully labelled COMPAS store (the school cohort leaves rows
/// unlabelled, which the FPR metric rejects).
struct MultiMetricReport {
    rows: usize,
    one_sweep_ms: f64,
    sequential_ms: f64,
    speedup: f64,
    cache: CacheStats,
}

/// `(disparity@k, log-discounted, nDCG@k)` timings in milliseconds.
#[derive(Clone, Copy)]
struct MetricTriple {
    disparity_ms: f64,
    log_discounted_ms: f64,
    ndcg_ms: f64,
}

fn core_config(sample_size: usize) -> DcaConfig {
    DcaConfig {
        sample_size,
        learning_rates: vec![1.0, 0.1],
        // 500 steps per timed run: long enough that per-step timings are not
        // dominated by timer granularity and scheduler jitter.
        iterations_per_rate: 250,
        refinement_iterations: 0,
        seed: 7,
        ..DcaConfig::default()
    }
}

fn full_config() -> DcaConfig {
    DcaConfig {
        learning_rates: vec![1.0],
        iterations_per_rate: 3,
        refinement_iterations: 0,
        seed: 7,
        ..DcaConfig::default()
    }
}

/// Median-of-`reps` wall-clock time of `routine`, in milliseconds. A median
/// (unlike a best-of) is stable when a timing is bimodal — the 1M Core-DCA
/// run flips between two modes ±30% apart on some boxes — while still
/// shrugging off one-off scheduler stalls.
fn time_median<T>(reps: usize, mut routine: impl FnMut() -> T) -> f64 {
    assert!(reps > 0, "at least one repetition required");
    // One untimed warm-up pass before the timed repetitions: the first
    // execution pays one-off costs (cold instruction/data caches, lazy
    // allocations, page faults on freshly mapped buffers) that the
    // steady-state median should not include.
    std::hint::black_box(routine());
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(routine());
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn measure_cohort(n: usize, reps: usize) -> CohortReport {
    let rubric = SchoolGenerator::rubric();
    let objective = TopKDisparity::new(0.05);
    let sample_size = ExperimentScale::default_scale().dca_sample_size;

    let gen_start = Instant::now();
    let dataset = SchoolGenerator::new(SchoolConfig::small(n, 42))
        .generate()
        .into_dataset();
    let generate_ms = gen_start.elapsed().as_secs_f64() * 1e3;

    // Core DCA: one untimed warm-up run primes the scratch buffers and
    // caches, then median-of-`reps` timed runs (each a complete 500-step
    // descent) — the median filters scheduler noise and bimodal flips, which
    // otherwise dominate a few-ms measurement.
    let mut scratch = DcaScratch::new();
    let config = core_config(sample_size);
    let mut run_core = || {
        run_core_dca_with(
            &dataset,
            &rubric,
            &objective,
            &config,
            None,
            false,
            &mut scratch,
        )
        .expect("core DCA run")
    };
    let outcome = run_core();
    let core_total_ms = time_median(reps, &mut run_core);
    let core_steps = outcome.steps;
    let core_objects_scored = outcome.objects_scored;

    // Full DCA: 3 steps over the whole cohort (linear per step — kept short
    // so the 1M cohort stays affordable).
    let fcfg = full_config();
    let mut run_full = || {
        run_full_dca_with(
            &dataset,
            &rubric,
            &objective,
            &fcfg,
            None,
            false,
            &mut scratch,
        )
        .expect("full DCA run")
    };
    let full_outcome = run_full();
    let full_total_ms = time_median(reps, &mut run_full);
    let full_steps = full_outcome.steps;

    // Single-metric evaluations on the full cohort.
    let view = dataset.full_view();
    let bonus = vec![1.0, 10.0, 12.0, 12.0];
    let scores = effective_scores(&view, &rubric, &bonus);
    let ranking = RankedSelection::from_scores(scores);
    let disparity_ms = time_median(reps, || disparity_at_k(&view, &ranking, 0.05).unwrap());
    let log_cfg = LogDiscountConfig::default();
    let log_discounted_ms = time_median(reps, || {
        log_discounted_disparity(&view, &ranking, &log_cfg).unwrap()
    });
    let ndcg_ms = time_median(reps, || ndcg_at_k(&view, &rubric, &ranking, 0.05).unwrap());

    // Serial vs shard-wise end-to-end metric evaluation (score → rank →
    // measure). The serial side is the pre-refactor whole-cohort path: a
    // full sort of the effective scores feeding each metric. The sharded
    // side is the shard-wise engine (per-shard scoring kernels + partial
    // selection + ordered combine).
    let serial_e2e = MetricTriple {
        disparity_ms: time_median(reps, || {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &bonus));
            disparity_at_k(&view, &ranking, 0.05).unwrap()
        }),
        log_discounted_ms: time_median(reps, || {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &bonus));
            log_discounted_disparity(&view, &ranking, &log_cfg).unwrap()
        }),
        ndcg_ms: time_median(reps, || {
            let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &bonus));
            ndcg_at_k(&view, &rubric, &ranking, 0.05).unwrap()
        }),
    };
    let shard_size = fair_core::default_shard_size();
    let sharded = ShardedDataset::from_dataset(&dataset, shard_size).expect("positive shard size");
    let sharded_e2e = MetricTriple {
        disparity_ms: time_median(reps, || {
            shmetrics::disparity_at_k(&sharded, &rubric, &bonus, 0.05).unwrap()
        }),
        log_discounted_ms: time_median(reps, || {
            shmetrics::log_discounted_disparity(&sharded, &rubric, &bonus, &log_cfg).unwrap()
        }),
        ndcg_ms: time_median(reps, || {
            shmetrics::ndcg_at_k(&sharded, &rubric, &bonus, 0.05).unwrap()
        }),
    };

    // Out-of-core: stream the same cohort onto disk, then evaluate through
    // the paged shard cache at a quarter-cohort budget (clamped so the
    // worker pool's pinned working set always fits). Small cohorts get a
    // small shard layout so paging and eviction genuinely happen even in
    // `--quick` mode, where one 64k shard would swallow the whole cohort.
    let generator = SchoolGenerator::new(SchoolConfig::small(n, 42));
    let store_path =
        std::env::temp_dir().join(format!("fair_perf_report_{n}_{}.fss", std::process::id()));
    let oo_shard_size = if n <= 16 * 1024 { 1024 } else { shard_size };
    let write_start = Instant::now();
    school_to_store(&generator, oo_shard_size, &store_path).expect("write cohort store");
    let store_write_ms = write_start.elapsed().as_secs_f64() * 1e3;
    let per_row = 8 * (dataset.schema().num_features() + dataset.schema().num_fairness()) + 8 + 1;
    let shard_bytes = oo_shard_size.min(n) * per_row;
    let total_column_bytes = n * per_row;
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let budget_bytes = (total_column_bytes / 4).max((workers + 1) * shard_bytes);
    let prefetch = fair_store::default_prefetch();
    let store = ShardStore::open_with_options(&store_path, budget_bytes, prefetch)
        .expect("open cohort store");
    let oo_disparity_ms = time_median(reps, || {
        shmetrics::disparity_at_k(&store, &rubric, &bonus, 0.05).unwrap()
    });
    let oo_ndcg_ms = time_median(reps, || {
        shmetrics::ndcg_at_k(&store, &rubric, &bonus, 0.05).unwrap()
    });
    let cache = store.cache_stats();
    drop(store);
    // Same store, readahead thread off: what the prefetcher is worth.
    let store = ShardStore::open_with_options(&store_path, budget_bytes, 0)
        .expect("open cohort store without readahead");
    let disparity_no_prefetch_ms = time_median(reps, || {
        shmetrics::disparity_at_k(&store, &rubric, &bonus, 0.05).unwrap()
    });
    drop(store);
    std::fs::remove_file(&store_path).ok();
    let multi_metric = measure_multi_metric(n, oo_shard_size, budget_bytes, prefetch, reps);
    let out_of_core = OutOfCoreReport {
        store_write_ms,
        budget_bytes,
        shard_size: oo_shard_size,
        prefetch,
        disparity_ms: oo_disparity_ms,
        disparity_no_prefetch_ms,
        ndcg_ms: oo_ndcg_ms,
        cache,
        multi_metric,
    };

    CohortReport {
        n,
        sample_size,
        generate_ms,
        core_total_ms,
        core_steps,
        core_per_step_us: core_total_ms * 1e3 / core_steps as f64,
        core_objects_scored,
        core_objects_per_sec: core_objects_scored as f64 / (core_total_ms / 1e3),
        full_total_ms,
        full_steps,
        full_per_step_ms: full_total_ms / full_steps as f64,
        disparity_ms,
        log_discounted_ms,
        ndcg_ms,
        shard_size,
        num_shards: sharded.num_shards(),
        serial_e2e,
        sharded_e2e,
        out_of_core,
    }
}

/// Time one five-metric `MetricPlan` sweep against five sequential
/// per-metric paged sweeps — the before/after of the `POST /stores/{name}/
/// metrics` rewiring. Runs on a COMPAS store (every row labelled, so the
/// FPR metric is measurable) of the same size, same shard layout, same
/// quarter-cohort budget.
fn measure_multi_metric(
    n: usize,
    shard_size: usize,
    budget_bytes: usize,
    prefetch: usize,
    reps: usize,
) -> MultiMetricReport {
    let generator = CompasGenerator::new(CompasConfig::small(n, 42));
    let store_path = std::env::temp_dir().join(format!(
        "fair_perf_report_compas_{n}_{}.fss",
        std::process::id()
    ));
    compas_to_store(&generator, shard_size, &store_path).expect("write compas store");
    let dims = CompasGenerator::schema().num_fairness();
    let ranker = WeightedSumRanker::new(vec![1.0]).expect("one weight");
    let bonus = vec![0.0; dims];
    let k = 0.05;
    let log_cfg = LogDiscountConfig::default();

    let store = ShardStore::open_with_options(&store_path, budget_bytes, prefetch)
        .expect("open compas store");
    let plan = MetricPlan::new(&MetricKind::ALL, k);
    let one_sweep_ms = time_median(reps, || plan.evaluate(&store, &ranker, &bonus).unwrap());
    // The pre-planner serving path: one full paged sweep per metric.
    let sequential_ms = time_median(reps, || {
        shmetrics::disparity_at_k(&store, &ranker, &bonus, k).unwrap();
        shmetrics::ndcg_at_k(&store, &ranker, &bonus, k).unwrap();
        shmetrics::log_discounted_disparity(&store, &ranker, &bonus, &log_cfg).unwrap();
        shmetrics::fpr_difference_at_k(&store, &ranker, &bonus, k).unwrap();
        shmetrics::scaled_disparate_impact_at_k(&store, &ranker, &bonus, k).unwrap();
    });
    let cache = store.cache_stats();
    drop(store);
    std::fs::remove_file(&store_path).ok();
    MultiMetricReport {
        rows: n,
        one_sweep_ms,
        sequential_ms,
        speedup: sequential_ms / one_sweep_ms,
        cache,
    }
}

/// Core DCA throughput under each kernel family, forced in-process.
struct KernelBench {
    n: usize,
    scalar_objects_per_sec: f64,
    chunked_objects_per_sec: f64,
    /// `chunked / scalar` objects-per-second ratio.
    speedup: f64,
}

/// Time the complete Core DCA descent (scoring-dominated) on an `n`-row
/// cohort under the scalar reference kernels and again under the chunked
/// f64x4 kernels, forcing the family in-process around each timing and
/// restoring the environment's selection afterwards.
fn measure_kernel(n: usize, reps: usize) -> KernelBench {
    use fair_core::kernel::{self, Kernel};
    let rubric = SchoolGenerator::rubric();
    let objective = TopKDisparity::new(0.05);
    let sample_size = ExperimentScale::default_scale().dca_sample_size;
    let dataset = SchoolGenerator::new(SchoolConfig::small(n, 42))
        .generate()
        .into_dataset();
    let mut scratch = DcaScratch::new();
    let config = core_config(sample_size);
    let mut throughput = |family: Kernel| {
        kernel::force(family);
        let outcome = run_core_dca_with(
            &dataset,
            &rubric,
            &objective,
            &config,
            None,
            false,
            &mut scratch,
        )
        .expect("core DCA run");
        let total_ms = time_median(reps, || {
            run_core_dca_with(
                &dataset,
                &rubric,
                &objective,
                &config,
                None,
                false,
                &mut scratch,
            )
            .expect("core DCA run")
        });
        outcome.objects_scored as f64 / (total_ms / 1e3)
    };
    let scalar_objects_per_sec = throughput(Kernel::Scalar);
    let chunked_objects_per_sec = throughput(Kernel::Chunked);
    kernel::force(kernel::from_env());
    KernelBench {
        n,
        scalar_objects_per_sec,
        chunked_objects_per_sec,
        speedup: chunked_objects_per_sec / scalar_objects_per_sec,
    }
}

/// Throughput of the synchronous metrics endpoint at one client concurrency
/// level.
struct ServeLevel {
    concurrency: usize,
    requests: usize,
    requests_per_sec: f64,
}

/// The serving-layer measurement: requests/sec on `POST
/// /stores/{name}/metrics` (disparity@k) at three concurrency levels.
struct ServeReport {
    store_rows: usize,
    workers: usize,
    levels: Vec<ServeLevel>,
}

/// Stand up a `fair-serve` instance on an ephemeral port with an in-memory
/// 10k school cohort and hammer the metrics endpoint from `concurrency`
/// client threads (each request a fresh connection, exactly as the wire
/// protocol prescribes). Median-of-`reps` wall clock per burst.
fn measure_serve(reps: usize) -> ServeReport {
    let store_rows = 10_000;
    let data = SchoolGenerator::new(SchoolConfig::small(store_rows, 42))
        .generate_sharded(fair_core::default_shard_size())
        .expect("positive shard size")
        .into_dataset();
    let service = AuditService::new();
    service
        .catalog
        .register_memory("bench", data)
        .expect("register bench cohort");
    let workers = fair_core::max_workers().clamp(2, 8);
    let server = serve(service, "127.0.0.1:0", workers).expect("bind bench server");
    let addr = server.addr();
    let request = MetricsRequest {
        k: 0.05,
        bonus: None,
        weights: None,
        metrics: Some(vec!["disparity".to_string()]),
    };

    // Warm the connection path and the metric scratch buffers.
    let warm = Client::new(addr);
    for _ in 0..4 {
        warm.metrics("bench", &request).expect("warm-up request");
    }

    let mut levels = Vec::new();
    for &concurrency in &[1_usize, 4, 8] {
        let total_requests = 96; // divisible by every level
        let per_client = total_requests / concurrency;
        let burst_ms = time_median(reps, || {
            std::thread::scope(|scope| {
                for _ in 0..concurrency {
                    let client = Client::new(addr);
                    let request = &request;
                    scope.spawn(move || {
                        for _ in 0..per_client {
                            let result = client.metrics("bench", request).expect("metrics request");
                            assert!(result.disparity.is_some());
                        }
                    });
                }
            });
        });
        levels.push(ServeLevel {
            concurrency,
            requests: total_requests,
            requests_per_sec: total_requests as f64 / (burst_ms / 1e3),
        });
    }
    server.shutdown();
    ServeReport {
        store_rows,
        workers,
        levels,
    }
}

/// The fleet measurement: one cohort, one vs three workers behind a
/// `FleetCoordinator`, against the local sharded runner as the baseline.
struct FleetBench {
    rows: usize,
    shard_size: usize,
    num_shards: usize,
    k: f64,
    /// Local `run_full_dca_sharded` per-step time, ms (the no-wire baseline).
    local_full_step_ms: f64,
    /// Distributed per-step time with a single worker, ms.
    single_full_step_ms: f64,
    /// Distributed per-step time with three workers, ms.
    fleet3_full_step_ms: f64,
    /// `single / local`: what the coordinator + wire round trip costs.
    coordinator_overhead: f64,
    /// `single / fleet3`: what two extra workers buy.
    speedup_3_vs_1: f64,
    /// Distributed disparity@k sweeps per second on the 3-worker fleet.
    disparity_sweeps_per_sec: f64,
    /// Partial-reduce requests the coordinator issued across the timed runs.
    requests: u64,
}

/// Time the fleet layer on a `rows`-row school cohort: local sharded runner
/// vs 1-worker fleet vs 3-worker fleet, plus distributed disparity sweeps.
/// The shard layout is explicit (`rows / 16`-row shards) so the placement
/// genuinely spreads work across three workers regardless of cohort size,
/// and the reference runner shards identically.
fn measure_fleet(rows: usize, reps: usize) -> FleetBench {
    let k = 0.01; // small k keeps per-range partial responses compact
    let shard_size = (rows / 16).max(1024);
    let data = SchoolGenerator::new(SchoolConfig::small(rows, 42))
        .generate_sharded(shard_size)
        .expect("positive shard size")
        .into_dataset();
    let weights = [0.55, 0.45];
    let ranker = WeightedSumRanker::new(weights.to_vec()).expect("rubric weights");
    let objective = TopKDisparity::new(k);
    let config = DcaConfig {
        learning_rates: vec![1.0],
        iterations_per_rate: 5,
        refinement_iterations: 0,
        seed: 7,
        ..DcaConfig::default()
    };

    let local_outcome =
        run_full_dca_sharded(&data, &ranker, &objective, &config, None, false).expect("local DCA");
    let steps = local_outcome.steps as f64;
    let local_full_ms = time_median(reps, || {
        run_full_dca_sharded(&data, &ranker, &objective, &config, None, false).expect("local DCA")
    });

    let spawn = |n: usize| -> (Vec<ServerHandle>, Vec<SocketAddr>) {
        (0..n)
            .map(|_| {
                let service = AuditService::new();
                service
                    .catalog
                    .register_memory("bench", data.clone())
                    .expect("register bench cohort");
                let server = serve(service, "127.0.0.1:0", 4).expect("bind fleet worker");
                let addr = server.addr();
                (server, addr)
            })
            .unzip()
    };

    let (handles1, addrs1) = spawn(1);
    let fleet1 =
        FleetCoordinator::connect("bench", &addrs1, FleetConfig::default()).expect("connect 1w");
    let single_outcome = fleet1
        .run_full_dca(k, Some(&weights), &config, None, false)
        .expect("1-worker DCA");
    assert_eq!(
        single_outcome
            .bonus
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        local_outcome
            .bonus
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "the fleet trajectory must match the local runner bit for bit"
    );
    let single_full_ms = time_median(reps, || {
        fleet1
            .run_full_dca(k, Some(&weights), &config, None, false)
            .expect("1-worker DCA")
    });
    let mut requests = fleet1.report().requests;
    for h in handles1 {
        h.shutdown();
    }

    let (handles3, addrs3) = spawn(3);
    let fleet3 =
        FleetCoordinator::connect("bench", &addrs3, FleetConfig::default()).expect("connect 3w");
    let fleet3_full_ms = time_median(reps, || {
        fleet3
            .run_full_dca(k, Some(&weights), &config, None, false)
            .expect("3-worker DCA")
    });
    let bonus = vec![1.0, 10.0, 12.0, 12.0];
    let sweeps = 20;
    let sweep_burst_ms = time_median(reps, || {
        for _ in 0..sweeps {
            fleet3
                .disparity(k, &bonus, Some(&weights))
                .expect("fleet disparity");
        }
    });
    requests += fleet3.report().requests;
    let num_shards = fleet3.placement().num_shards();
    for h in handles3 {
        h.shutdown();
    }

    FleetBench {
        rows,
        shard_size,
        num_shards,
        k,
        local_full_step_ms: local_full_ms / steps,
        single_full_step_ms: single_full_ms / steps,
        fleet3_full_step_ms: fleet3_full_ms / steps,
        coordinator_overhead: single_full_ms / local_full_ms,
        speedup_3_vs_1: single_full_ms / fleet3_full_ms,
        disparity_sweeps_per_sec: sweeps as f64 / (sweep_burst_ms / 1e3),
        requests,
    }
}

/// The observability tax: instrumented vs plain Core DCA, plus one
/// `/metrics` scrape.
struct ObsBench {
    rows: usize,
    /// Per-step cost through `RunControl` with no progress hook, µs.
    plain_per_step_us: f64,
    /// Per-step cost with the job manager's step-duration histogram hook, µs.
    instrumented_per_step_us: f64,
    /// `instrumented / plain` — the acceptance budget is < 1.05.
    per_step_overhead: f64,
    /// Median latency of one `GET /metrics` scrape, ms.
    scrape_ms: f64,
    /// Median scrape latency with the snapshot cache holding the rendering.
    scrape_cached_ms: f64,
    /// Size of the rendered exposition at scrape time, bytes.
    scrape_bytes: usize,
}

/// Time the same sharded Core DCA descent with and without the per-step
/// observability hook, verify the trajectories are bit-identical, and time
/// a `/metrics` scrape against a live server that has seen traffic.
fn measure_obs(rows: usize, reps: usize) -> ObsBench {
    use fair_core::dca::{run_core_dca_sharded_controlled, step_duration_hook, RunControl};
    use fair_core::obs;

    let rubric = SchoolGenerator::rubric();
    let objective = TopKDisparity::new(0.05);
    let sample_size = ExperimentScale::default_scale().dca_sample_size;
    let data = SchoolGenerator::new(SchoolConfig::small(rows, 42))
        .generate_sharded(fair_core::default_shard_size())
        .expect("positive shard size")
        .into_dataset();
    let config = core_config(sample_size);

    let plain_control = RunControl::new();
    let mut run_plain = || {
        run_core_dca_sharded_controlled(
            &data,
            &rubric,
            &objective,
            &config,
            None,
            false,
            &plain_control,
        )
        .expect("plain core DCA run")
    };
    let hook = step_duration_hook(obs::histogram("fair_bench_obs_step_duration_us", &[]));
    let hooked_control = RunControl::with_progress(move |p| {
        std::hint::black_box(&p);
        hook(p);
    });
    let mut run_hooked = || {
        run_core_dca_sharded_controlled(
            &data,
            &rubric,
            &objective,
            &config,
            None,
            false,
            &hooked_control,
        )
        .expect("instrumented core DCA run")
    };

    let plain = run_plain();
    let hooked = run_hooked();
    assert_eq!(
        plain.bonus.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        hooked.bonus.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "the instrumented descent must stay bit-identical"
    );
    let steps = plain.steps as f64;
    let plain_ms = time_median(reps, &mut run_plain);
    let instrumented_ms = time_median(reps, &mut run_hooked);

    // A live server that has seen traffic, so the scrape renders a populated
    // registry (route series, job counters, store counters from this very
    // process), not an empty page.
    let service = AuditService::new();
    let small = SchoolGenerator::new(SchoolConfig::small(2_000, 42))
        .generate_sharded(fair_core::default_shard_size())
        .expect("positive shard size")
        .into_dataset();
    service
        .catalog
        .register_memory("obs-bench", small)
        .expect("register obs cohort");
    let server = serve(service, "127.0.0.1:0", 2).expect("bind obs server");
    let client = Client::new(server.addr());
    let request = MetricsRequest {
        k: 0.05,
        bonus: None,
        weights: None,
        metrics: Some(vec!["disparity".to_string()]),
    };
    for _ in 0..8 {
        client.metrics("obs-bench", &request).expect("obs traffic");
    }
    let scrape_bytes = client.metrics_text().expect("scrape").len();
    let scrape_ms = time_median(reps, || client.metrics_text().expect("scrape"));
    server.shutdown();

    // The same scrape behind the snapshot cache: a window far longer than
    // the timing loop, so every scrape after the first serves the cached
    // rendering — the latency floor `FAIR_SCRAPE_CACHE_MS` buys.
    let cached_service = AuditService::with_scrape_cache_ms(60_000);
    let small = SchoolGenerator::new(SchoolConfig::small(2_000, 42))
        .generate_sharded(fair_core::default_shard_size())
        .expect("positive shard size")
        .into_dataset();
    cached_service
        .catalog
        .register_memory("obs-bench", small)
        .expect("register obs cohort");
    let server = serve(cached_service, "127.0.0.1:0", 2).expect("bind cached obs server");
    let client = Client::new(server.addr());
    for _ in 0..8 {
        client.metrics("obs-bench", &request).expect("obs traffic");
    }
    client.metrics_text().expect("prime the cache");
    let scrape_cached_ms = time_median(reps, || client.metrics_text().expect("cached scrape"));
    server.shutdown();

    ObsBench {
        rows,
        plain_per_step_us: plain_ms * 1e3 / steps,
        instrumented_per_step_us: instrumented_ms * 1e3 / steps,
        per_step_overhead: instrumented_ms / plain_ms,
        scrape_ms,
        scrape_cached_ms,
        scrape_bytes,
    }
}

/// Where a paged Core DCA descent's time goes, and what asking costs: the
/// same run plain vs with a [`fair_core::obs::JobProfile`] installed.
struct ProfileBench {
    rows: usize,
    steps: usize,
    plain_per_step_us: f64,
    profiled_per_step_us: f64,
    /// `profiled / plain` — same ≤ 1.05x budget as the v8 hook overhead.
    overhead: f64,
    /// Per-phase `(name, total_us, count, max_us)` of one profiled run.
    phases: Vec<(&'static str, u64, u64, u64)>,
}

/// Run the paged Core DCA descent (on-disk store, quarter-cohort cache
/// budget) once with a profile installed for the phase breakdown, then time
/// plain vs profiled, asserting the trajectories stay bit-identical.
fn measure_profile(rows: usize, reps: usize) -> ProfileBench {
    use fair_core::dca::{run_core_dca_sharded_controlled, RunControl};
    use fair_core::obs::{profile, JobProfile, Phase};

    let rubric = SchoolGenerator::rubric();
    let objective = TopKDisparity::new(0.05);
    let config = core_config(ExperimentScale::default_scale().dca_sample_size);
    let generator = SchoolGenerator::new(SchoolConfig::small(rows, 42));
    let store_path = std::env::temp_dir().join(format!(
        "fair_perf_profile_{rows}_{}.fss",
        std::process::id()
    ));
    let shard_size = if rows <= 16 * 1024 {
        1024
    } else {
        fair_core::default_shard_size()
    };
    school_to_store(&generator, shard_size, &store_path).expect("write profile store");
    let file_bytes = std::fs::metadata(&store_path)
        .expect("store metadata")
        .len() as usize;
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let budget_bytes =
        (file_bytes / 4).max((workers + 1) * (file_bytes / rows.div_ceil(shard_size)));
    let store =
        ShardStore::open_with_options(&store_path, budget_bytes, fair_store::default_prefetch())
            .expect("open profile store");

    let control = RunControl::new();
    let mut run = || {
        run_core_dca_sharded_controlled(&store, &rubric, &objective, &config, None, false, &control)
            .expect("profiled core DCA run")
    };

    // One profiled run for the breakdown (and as the bit-identity witness).
    let breakdown = JobProfile::new();
    let profiled_outcome = {
        let _guard = profile::install(breakdown.clone());
        run()
    };
    let plain_outcome = run();
    assert_eq!(
        plain_outcome
            .bonus
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        profiled_outcome
            .bonus
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        "the profiled descent must stay bit-identical"
    );

    let steps = plain_outcome.steps;
    let plain_ms = time_median(reps, &mut run);
    let timing_profile = JobProfile::new();
    let profiled_ms = {
        let _guard = profile::install(timing_profile);
        time_median(reps, &mut run)
    };
    drop(store);
    std::fs::remove_file(&store_path).ok();

    ProfileBench {
        rows,
        steps,
        plain_per_step_us: plain_ms * 1e3 / steps as f64,
        profiled_per_step_us: profiled_ms * 1e3 / steps as f64,
        overhead: profiled_ms / plain_ms,
        phases: Phase::ALL
            .iter()
            .zip(breakdown.stats())
            .map(|(p, s)| (p.name(), s.total_us, s.count, s.max_us))
            .collect(),
    }
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    mode: &str,
    reps: usize,
    reports: &[CohortReport],
    kernels: &[KernelBench],
    serve_report: &ServeReport,
    fleet: &FleetBench,
    obs: &ObsBench,
    profile: &ProfileBench,
    ratio: Option<f64>,
) -> String {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 9,");
    let _ = writeln!(s, "  \"generated_by\": \"perf_report\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"repeats\": {reps},");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let sample_size = reports.first().map_or(0, |r| r.sample_size);
    let _ = writeln!(s, "  \"core_sample_size\": {sample_size},");
    s.push_str("  \"cohorts\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"generate_ms\": {},", json_number(r.generate_ms));
        let _ = writeln!(
            s,
            "      \"core_dca\": {{ \"steps\": {}, \"total_ms\": {}, \"per_step_us\": {}, \"objects_scored\": {}, \"objects_per_sec\": {} }},",
            r.core_steps,
            json_number(r.core_total_ms),
            json_number(r.core_per_step_us),
            r.core_objects_scored,
            json_number(r.core_objects_per_sec),
        );
        let _ = writeln!(
            s,
            "      \"full_dca\": {{ \"steps\": {}, \"total_ms\": {}, \"per_step_ms\": {} }},",
            r.full_steps,
            json_number(r.full_total_ms),
            json_number(r.full_per_step_ms),
        );
        let _ = writeln!(
            s,
            "      \"metrics_ms\": {{ \"disparity_at_k\": {}, \"log_discounted\": {}, \"ndcg_at_k\": {} }},",
            json_number(r.disparity_ms),
            json_number(r.log_discounted_ms),
            json_number(r.ndcg_ms),
        );
        let _ = writeln!(
            s,
            "      \"shard_size\": {}, \"num_shards\": {},",
            r.shard_size, r.num_shards
        );
        let _ = writeln!(
            s,
            "      \"metrics_serial_e2e_ms\": {{ \"disparity_at_k\": {}, \"log_discounted\": {}, \"ndcg_at_k\": {} }},",
            json_number(r.serial_e2e.disparity_ms),
            json_number(r.serial_e2e.log_discounted_ms),
            json_number(r.serial_e2e.ndcg_ms),
        );
        let _ = writeln!(
            s,
            "      \"metrics_sharded_ms\": {{ \"disparity_at_k\": {}, \"log_discounted\": {}, \"ndcg_at_k\": {} }},",
            json_number(r.sharded_e2e.disparity_ms),
            json_number(r.sharded_e2e.log_discounted_ms),
            json_number(r.sharded_e2e.ndcg_ms),
        );
        let _ = writeln!(
            s,
            "      \"metrics_sharded_speedup\": {{ \"disparity_at_k\": {}, \"log_discounted\": {}, \"ndcg_at_k\": {} }},",
            json_number(r.serial_e2e.disparity_ms / r.sharded_e2e.disparity_ms),
            json_number(r.serial_e2e.log_discounted_ms / r.sharded_e2e.log_discounted_ms),
            json_number(r.serial_e2e.ndcg_ms / r.sharded_e2e.ndcg_ms),
        );
        let o = &r.out_of_core;
        let _ = writeln!(
            s,
            "      \"out_of_core\": {{ \"store_write_ms\": {}, \"budget_bytes\": {}, \"shard_size\": {}, \"prefetch\": {}, \"disparity_at_k_ms\": {}, \"disparity_at_k_no_prefetch_ms\": {}, \"ndcg_at_k_ms\": {},",
            json_number(o.store_write_ms),
            o.budget_bytes,
            o.shard_size,
            o.prefetch,
            json_number(o.disparity_ms),
            json_number(o.disparity_no_prefetch_ms),
            json_number(o.ndcg_ms),
        );
        let _ = writeln!(
            s,
            "        \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"peak_bytes\": {}, \"prefetch_hits\": {}, \"prefetch_wasted\": {} }},",
            o.cache.hits,
            o.cache.misses,
            o.cache.evictions,
            o.cache.peak_bytes,
            o.cache.prefetch_hits,
            o.cache.prefetch_wasted,
        );
        let m = &o.multi_metric;
        let _ = writeln!(
            s,
            "        \"multi_metric\": {{ \"store\": \"compas\", \"rows\": {}, \"metrics\": 5, \"one_sweep_ms\": {}, \"sequential_ms\": {}, \"speedup\": {}, \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"peak_bytes\": {}, \"prefetch_hits\": {}, \"prefetch_wasted\": {} }} }} }}",
            m.rows,
            json_number(m.one_sweep_ms),
            json_number(m.sequential_ms),
            json_number(m.speedup),
            m.cache.hits,
            m.cache.misses,
            m.cache.evictions,
            m.cache.peak_bytes,
            m.cache.prefetch_hits,
            m.cache.prefetch_wasted,
        );
        s.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"kernel\": { \"benchmark\": \"core_dca_objects_per_sec\", \"cohorts\": [\n");
    for (i, kb) in kernels.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"n\": {}, \"scalar_objects_per_sec\": {}, \"chunked_objects_per_sec\": {}, \"speedup\": {} }}{}",
            kb.n,
            json_number(kb.scalar_objects_per_sec),
            json_number(kb.chunked_objects_per_sec),
            json_number(kb.speedup),
            if i + 1 == kernels.len() { "" } else { "," }
        );
    }
    s.push_str("  ] },\n");
    let _ = writeln!(
        s,
        "  \"serve\": {{ \"store_rows\": {}, \"workers\": {}, \"endpoint\": \"POST /stores/{{name}}/metrics (disparity_at_k)\", \"levels\": [",
        serve_report.store_rows, serve_report.workers
    );
    for (i, level) in serve_report.levels.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"concurrency\": {}, \"requests\": {}, \"requests_per_sec\": {} }}{}",
            level.concurrency,
            level.requests,
            json_number(level.requests_per_sec),
            if i + 1 == serve_report.levels.len() {
                ""
            } else {
                ","
            }
        );
    }
    s.push_str("  ] },\n");
    let _ = writeln!(
        s,
        "  \"fleet\": {{ \"rows\": {}, \"shard_size\": {}, \"num_shards\": {}, \"k\": {}, \"local_full_step_ms\": {}, \"single_worker_full_step_ms\": {}, \"three_worker_full_step_ms\": {}, \"coordinator_overhead\": {}, \"speedup_3_vs_1\": {}, \"disparity_sweeps_per_sec\": {}, \"requests\": {} }},",
        fleet.rows,
        fleet.shard_size,
        fleet.num_shards,
        fleet.k,
        json_number(fleet.local_full_step_ms),
        json_number(fleet.single_full_step_ms),
        json_number(fleet.fleet3_full_step_ms),
        json_number(fleet.coordinator_overhead),
        json_number(fleet.speedup_3_vs_1),
        json_number(fleet.disparity_sweeps_per_sec),
        fleet.requests,
    );
    let _ = writeln!(
        s,
        "  \"obs\": {{ \"rows\": {}, \"core_plain_per_step_us\": {}, \"core_instrumented_per_step_us\": {}, \"per_step_overhead\": {}, \"metrics_scrape_ms\": {}, \"metrics_scrape_cached_ms\": {}, \"metrics_scrape_bytes\": {} }},",
        obs.rows,
        json_number(obs.plain_per_step_us),
        json_number(obs.instrumented_per_step_us),
        json_number(obs.per_step_overhead),
        json_number(obs.scrape_ms),
        json_number(obs.scrape_cached_ms),
        obs.scrape_bytes,
    );
    let _ = writeln!(
        s,
        "  \"profile\": {{ \"rows\": {}, \"steps\": {}, \"plain_per_step_us\": {}, \"profiled_per_step_us\": {}, \"overhead\": {}, \"phases\": {{",
        profile.rows,
        profile.steps,
        json_number(profile.plain_per_step_us),
        json_number(profile.profiled_per_step_us),
        json_number(profile.overhead),
    );
    for (i, (name, total_us, count, max_us)) in profile.phases.iter().enumerate() {
        let _ = writeln!(
            s,
            "    \"{name}\": {{ \"total_us\": {total_us}, \"count\": {count}, \"max_us\": {max_us} }}{}",
            if i + 1 == profile.phases.len() { "" } else { "," }
        );
    }
    s.push_str("  } },\n");
    match ratio {
        Some(v) => {
            let _ = writeln!(
                s,
                "  \"core_per_step_ratio_largest_vs_smallest\": {}",
                json_number(v)
            );
        }
        None => {
            s.push_str("  \"core_per_step_ratio_largest_vs_smallest\": null\n");
        }
    }
    s.push_str("}\n");
    s
}

fn default_output_path() -> std::path::PathBuf {
    // crates/bench -> repository root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_DCA.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let reps = args
        .iter()
        .position(|a| a == "--repeats")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(3);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
        .unwrap_or_else(default_output_path);

    let sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mode = if quick { "quick" } else { "full" };

    println!(
        "perf_report — Core DCA / Full DCA / metric timings ({mode} mode, median of {reps})\n"
    );
    println!(
        "{:>9}  {:>12} {:>14} {:>16}  {:>14}  {:>12} {:>14} {:>10}",
        "cohort",
        "core total",
        "core per-step",
        "objects/sec",
        "full per-step",
        "disparity@k",
        "log-discounted",
        "nDCG@k"
    );

    let mut reports = Vec::new();
    for &n in sizes {
        let r = measure_cohort(n, reps);
        println!(
            "{:>9}  {:>10.2}ms {:>12.2}us {:>14.0}/s  {:>12.2}ms  {:>10.3}ms {:>12.3}ms {:>8.3}ms",
            r.n,
            r.core_total_ms,
            r.core_per_step_us,
            r.core_objects_per_sec,
            r.full_per_step_ms,
            r.disparity_ms,
            r.log_discounted_ms,
            r.ndcg_ms
        );
        println!(
            "{:>9}  sharded engine ({} x {}): disparity {:.3}ms ({:.2}x), log-disc {:.3}ms ({:.2}x), nDCG {:.3}ms ({:.2}x) vs serial end-to-end",
            "",
            r.num_shards,
            r.shard_size,
            r.sharded_e2e.disparity_ms,
            r.serial_e2e.disparity_ms / r.sharded_e2e.disparity_ms,
            r.sharded_e2e.log_discounted_ms,
            r.serial_e2e.log_discounted_ms / r.sharded_e2e.log_discounted_ms,
            r.sharded_e2e.ndcg_ms,
            r.serial_e2e.ndcg_ms / r.sharded_e2e.ndcg_ms,
        );
        println!(
            "{:>9}  out-of-core (budget {} KiB, {} x {} shards, prefetch {}): write {:.1}ms, disparity {:.3}ms (no-prefetch {:.3}ms), nDCG {:.3}ms; cache {}h/{}m/{}e, {}ph/{}pw, peak {} KiB",
            "",
            r.out_of_core.budget_bytes / 1024,
            r.n.div_ceil(r.out_of_core.shard_size),
            r.out_of_core.shard_size,
            r.out_of_core.prefetch,
            r.out_of_core.store_write_ms,
            r.out_of_core.disparity_ms,
            r.out_of_core.disparity_no_prefetch_ms,
            r.out_of_core.ndcg_ms,
            r.out_of_core.cache.hits,
            r.out_of_core.cache.misses,
            r.out_of_core.cache.evictions,
            r.out_of_core.cache.prefetch_hits,
            r.out_of_core.cache.prefetch_wasted,
            r.out_of_core.cache.peak_bytes / 1024,
        );
        let m = &r.out_of_core.multi_metric;
        println!(
            "{:>9}  one-sweep audit plan (compas, 5 metrics): {:.3}ms vs {:.3}ms sequential ({:.2}x)",
            "", m.one_sweep_ms, m.sequential_ms, m.speedup,
        );
        reports.push(r);
    }

    // Kernel families head to head: scalar reference vs chunked f64x4, Core
    // DCA objects/sec at the smallest and largest cohort sizes.
    let kernel_sizes: &[usize] = if quick {
        &[10_000]
    } else {
        &[10_000, 1_000_000]
    };
    let mut kernels = Vec::new();
    println!("\nscoring kernels (Core DCA objects/sec, scalar reference vs chunked f64x4):");
    for &n in kernel_sizes {
        let kb = measure_kernel(n, reps);
        println!(
            "  {:>9} rows: scalar {:>12.0}/s, chunked {:>12.0}/s ({:.2}x)",
            kb.n, kb.scalar_objects_per_sec, kb.chunked_objects_per_sec, kb.speedup
        );
        kernels.push(kb);
    }

    let serve_report = measure_serve(reps);
    println!(
        "\naudit service ({} workers, {}-row store, one connection per request):",
        serve_report.workers, serve_report.store_rows
    );
    for level in &serve_report.levels {
        println!(
            "  {:>2} concurrent clients: {:>8.0} requests/sec ({} requests)",
            level.concurrency, level.requests_per_sec, level.requests
        );
    }

    let fleet_rows = if quick { 10_000 } else { 1_000_000 };
    let fleet = measure_fleet(fleet_rows, reps);
    println!(
        "\nfleet coordinator ({} rows, {} x {} shards, k={}):",
        fleet.rows, fleet.num_shards, fleet.shard_size, fleet.k
    );
    println!(
        "  full-DCA per step: local {:.3}ms, 1 worker {:.3}ms ({:.2}x overhead), 3 workers {:.3}ms ({:.2}x vs 1)",
        fleet.local_full_step_ms,
        fleet.single_full_step_ms,
        fleet.coordinator_overhead,
        fleet.fleet3_full_step_ms,
        fleet.speedup_3_vs_1,
    );
    println!(
        "  distributed disparity sweeps: {:.0}/sec on 3 workers ({} partial-reduce requests total)",
        fleet.disparity_sweeps_per_sec, fleet.requests,
    );

    let obs_rows = if quick { 10_000 } else { 100_000 };
    let obs = measure_obs(obs_rows, reps);
    println!(
        "\nobservability ({} rows): Core DCA per step {:.2}us plain vs {:.2}us instrumented \
         ({:.3}x, budget 1.05x); /metrics scrape {:.3}ms uncached / {:.3}ms cached ({} bytes)",
        obs.rows,
        obs.plain_per_step_us,
        obs.instrumented_per_step_us,
        obs.per_step_overhead,
        obs.scrape_ms,
        obs.scrape_cached_ms,
        obs.scrape_bytes,
    );

    let profile_rows = if quick { 10_000 } else { 1_000_000 };
    let profile = measure_profile(profile_rows, reps);
    println!(
        "\nphase profiler ({} rows, paged Core DCA, {} steps): {:.2}us/step plain vs {:.2}us \
         profiled ({:.3}x, budget 1.05x); where the profiled run's time went:",
        profile.rows,
        profile.steps,
        profile.plain_per_step_us,
        profile.profiled_per_step_us,
        profile.overhead,
    );
    for (name, total_us, count, max_us) in &profile.phases {
        if *count > 0 {
            println!(
                "  {name:>8}: {:>10.1}ms over {count} scopes (max {:.2}ms)",
                *total_us as f64 / 1e3,
                *max_us as f64 / 1e3,
            );
        }
    }

    let ratio = (reports.len() > 1).then(|| {
        reports.last().unwrap().core_per_step_us / reports.first().unwrap().core_per_step_us
    });
    if let Some(v) = ratio {
        let largest = reports.last().unwrap().n;
        let smallest = reports.first().unwrap().n;
        println!(
            "\nCore DCA per-step time at {largest} is {v:.2}x the {smallest} per-step time \
             (sample-bounded cost claim: must stay within 2x)."
        );
    }

    let json = render_json(
        mode,
        reps,
        &reports,
        &kernels,
        &serve_report,
        &fleet,
        &obs,
        &profile,
        ratio,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_DCA.json");
    println!("\nWrote {}", out_path.display());

    // The budgets are gates, not suggestions: fail the process so a
    // regressing change cannot sail through a full perf run. (Quick mode
    // skips the timing-ratio gates — CI boxes are too noisy for them.)
    if let Some(v) = ratio {
        if v > 2.0 {
            eprintln!("ERROR: per-step ratio {v:.2} exceeds the 2x sub-linearity budget");
            std::process::exit(1);
        }
    }
    if !quick {
        if obs.per_step_overhead > 1.05 {
            eprintln!(
                "ERROR: instrumented per-step overhead {:.3}x exceeds the 1.05x budget",
                obs.per_step_overhead
            );
            std::process::exit(1);
        }
        if profile.overhead > 1.05 {
            eprintln!(
                "ERROR: profiler per-step overhead {:.3}x exceeds the 1.05x budget",
                profile.overhead
            );
            std::process::exit(1);
        }
    }
}
