//! Regenerates Table II: DCA vs Multinomial FA*IR on a district-sized
//! population (~2,500 students at the default scale).
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::baselines_cmp::run_fastar_comparison;

fn main() {
    let scale = ExperimentScale::from_env();
    // Merge four districts so the population is ~2,500 students at the
    // default 20k-cohort scale, matching the paper's single-district size.
    let result =
        run_fastar_comparison(&scale, &[16, 17, 18, 19], 0.05).expect("Table II experiment failed");
    println!("{}", result.render());
}
