//! Regenerates Figure 10c: COMPAS disparity across k with a single
//! log-discounted bonus vector.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::compas::run_fig10c;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_fig10c(&scale).expect("Figure 10c experiment failed");
    println!(
        "{}",
        result.render("Figure 10c — COMPAS disparity per k, log-discounted bonus")
    );
}
