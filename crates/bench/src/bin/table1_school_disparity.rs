//! Regenerates Table I: school disparity before/after Core DCA and DCA.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::table1::run_table1;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_table1(&scale).expect("Table I experiment failed");
    println!("{}", result.render());
}
