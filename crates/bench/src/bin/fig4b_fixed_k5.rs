//! Regenerates Figure 4b: a bonus vector optimized for k = 5% evaluated
//! across all selection fractions.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::vary_k::run_fixed_k;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_fixed_k(&scale, 0.05).expect("Figure 4b experiment failed");
    println!(
        "{}",
        result.render("Figure 4b — bonus optimized at k = 5%, evaluated across k")
    );
    println!("Bonus vector: {:?}", result.bonus);
}
