//! Regenerates Figure 2: nDCG and disparity norm for varying proportions of
//! the recommended bonus points.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::utility::run_proportion_sweep;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_proportion_sweep(&scale).expect("Figure 2 experiment failed");
    println!("{}", result.render());
}
