//! Regenerates Figure 10a: COMPAS flagged-set disparity by race, per k,
//! before and after non-positive bonus points.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::compas::run_fig10a;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_fig10a(&scale).expect("Figure 10a experiment failed");
    println!(
        "{}",
        result.render("Figure 10a — COMPAS disparity per k (bonus re-optimized per k)")
    );
}
