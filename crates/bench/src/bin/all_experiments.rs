//! Runs every table and figure experiment in sequence and prints the full
//! report. Control the scale with FAIR_BENCH_SCALE=tiny|default|full.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::*;

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Experiment scale: {scale:?}\n");

    println!(
        "{}",
        table1::run_table1(&scale).expect("Table I failed").render()
    );
    println!(
        "{}",
        utility::run_fig1(&scale).expect("Fig 1 failed").render()
    );
    println!(
        "{}",
        utility::run_proportion_sweep(&scale)
            .expect("Figs 2-3 failed")
            .render()
    );
    println!(
        "{}",
        vary_k::run_per_k(&scale, true)
            .expect("Fig 4a failed")
            .render("Figure 4a — DCA re-optimized for every k")
    );
    println!(
        "{}",
        vary_k::run_fixed_k(&scale, 0.05)
            .expect("Fig 4b failed")
            .render("Figure 4b — bonus optimized at k = 5%, evaluated across k")
    );
    println!(
        "{}",
        vary_k::run_log_discounted(&scale)
            .expect("Fig 4c failed")
            .render("Figure 4c — log-discounted DCA evaluated across k")
    );
    println!(
        "{}",
        caps::run_caps(&scale, None).expect("Fig 5 failed").render()
    );
    println!(
        "{}",
        baselines_cmp::run_quota(&scale, 0.7)
            .expect("Fig 6 failed")
            .render()
    );
    println!(
        "{}",
        baselines_cmp::run_delta2_comparison(&scale)
            .expect("Fig 7 failed")
            .render()
    );
    println!(
        "{}",
        vary_k::run_per_k(&scale, false)
            .expect("Fig 8 failed")
            .render("Figure 8a/8b — Core DCA (no refinement) per k, with timings")
    );
    println!(
        "{}",
        alt_metrics::run_disparate_impact_comparison(&scale, None)
            .expect("Fig 9 failed")
            .render()
    );
    println!(
        "{}",
        compas::run_fig10a(&scale)
            .expect("Fig 10a failed")
            .render("Figure 10a — COMPAS disparity per k")
    );
    println!(
        "{}",
        compas::run_fig10b(&scale)
            .expect("Fig 10b failed")
            .render("Figure 10b — COMPAS FPR differences per k")
    );
    println!(
        "{}",
        compas::run_fig10c(&scale)
            .expect("Fig 10c failed")
            .render("Figure 10c — COMPAS disparity per k, log-discounted bonus")
    );
    println!(
        "{}",
        baselines_cmp::run_fastar_comparison(&scale, &[16, 17, 18, 19], 0.05)
            .expect("Table II failed")
            .render()
    );
    println!(
        "{}",
        baselines_cmp::run_exposure(&scale)
            .expect("Exposure failed")
            .render()
    );
}
