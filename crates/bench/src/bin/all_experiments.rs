//! Runs every table and figure experiment and prints the full report.
//! Control the scale with FAIR_BENCH_SCALE=tiny|default|full.
//!
//! The experiments are independent pure computations, so they run on a
//! scoped worker pool (`fair_core::parallel_map`). Reports are streamed to
//! stdout in the paper's order as soon as they (and their predecessors)
//! finish — a failure in a late experiment cannot discard earlier results —
//! and per-experiment completion is logged to stderr. Note that wall-clock
//! columns inside the reports (Figure 8b) are measured under this
//! concurrency, so they show the per-k shape, not isolated per-run cost;
//! run the `fig8_refinement_ablation` binary alone for uncontended timings.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::*;
use fair_core::parallel_map;
use std::sync::Mutex;

type Job<'a> = (&'a str, Box<dyn Fn() -> String + Send + Sync + 'a>);

fn main() {
    let scale = ExperimentScale::from_env();
    println!("Experiment scale: {scale:?}\n");

    let jobs: Vec<Job<'_>> = vec![
        (
            "Table I",
            Box::new(|| table1::run_table1(&scale).expect("Table I failed").render()),
        ),
        (
            "Fig 1",
            Box::new(|| utility::run_fig1(&scale).expect("Fig 1 failed").render()),
        ),
        (
            "Figs 2-3",
            Box::new(|| {
                utility::run_proportion_sweep(&scale)
                    .expect("Figs 2-3 failed")
                    .render()
            }),
        ),
        (
            "Fig 4a",
            Box::new(|| {
                vary_k::run_per_k(&scale, true)
                    .expect("Fig 4a failed")
                    .render("Figure 4a — DCA re-optimized for every k")
            }),
        ),
        (
            "Fig 4b",
            Box::new(|| {
                vary_k::run_fixed_k(&scale, 0.05)
                    .expect("Fig 4b failed")
                    .render("Figure 4b — bonus optimized at k = 5%, evaluated across k")
            }),
        ),
        (
            "Fig 4c",
            Box::new(|| {
                vary_k::run_log_discounted(&scale)
                    .expect("Fig 4c failed")
                    .render("Figure 4c — log-discounted DCA evaluated across k")
            }),
        ),
        (
            "Fig 5",
            Box::new(|| caps::run_caps(&scale, None).expect("Fig 5 failed").render()),
        ),
        (
            "Fig 6",
            Box::new(|| {
                baselines_cmp::run_quota(&scale, 0.7)
                    .expect("Fig 6 failed")
                    .render()
            }),
        ),
        (
            "Fig 7",
            Box::new(|| {
                baselines_cmp::run_delta2_comparison(&scale)
                    .expect("Fig 7 failed")
                    .render()
            }),
        ),
        (
            "Fig 8",
            Box::new(|| {
                vary_k::run_per_k(&scale, false)
                    .expect("Fig 8 failed")
                    .render("Figure 8a/8b — Core DCA (no refinement) per k, with timings")
            }),
        ),
        (
            "Fig 9",
            Box::new(|| {
                alt_metrics::run_disparate_impact_comparison(&scale, None)
                    .expect("Fig 9 failed")
                    .render()
            }),
        ),
        (
            "Fig 10a",
            Box::new(|| {
                compas::run_fig10a(&scale)
                    .expect("Fig 10a failed")
                    .render("Figure 10a — COMPAS disparity per k")
            }),
        ),
        (
            "Fig 10b",
            Box::new(|| {
                compas::run_fig10b(&scale)
                    .expect("Fig 10b failed")
                    .render("Figure 10b — COMPAS FPR differences per k")
            }),
        ),
        (
            "Fig 10c",
            Box::new(|| {
                compas::run_fig10c(&scale)
                    .expect("Fig 10c failed")
                    .render("Figure 10c — COMPAS disparity per k, log-discounted bonus")
            }),
        ),
        (
            "Table II",
            Box::new(|| {
                baselines_cmp::run_fastar_comparison(&scale, &[16, 17, 18, 19], 0.05)
                    .expect("Table II failed")
                    .render()
            }),
        ),
        (
            "Exposure",
            Box::new(|| {
                baselines_cmp::run_exposure(&scale)
                    .expect("Exposure failed")
                    .render()
            }),
        ),
        (
            "Sharded engine",
            Box::new(|| {
                sharded::run_sharded_parity(&scale)
                    .expect("Sharded engine failed")
                    .render()
            }),
        ),
        (
            "Out-of-core store",
            Box::new(|| {
                out_of_core::run_out_of_core(&scale)
                    .expect("Out-of-core store failed")
                    .render()
            }),
        ),
    ];

    // In-order streaming: slot results by index and advance a print
    // watermark, so each report is printed the moment it and every
    // predecessor are done.
    let slots: Vec<Mutex<Option<String>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let watermark = Mutex::new(0_usize);
    let indices: Vec<usize> = (0..jobs.len()).collect();
    parallel_map(&indices, |&i| {
        let (name, job) = &jobs[i];
        let report = job();
        eprintln!("[all_experiments] {name} done");
        *slots[i].lock().expect("report slot poisoned") = Some(report);
        let mut next = watermark.lock().expect("watermark poisoned");
        while *next < slots.len() {
            let mut slot = slots[*next].lock().expect("report slot poisoned");
            match slot.take() {
                Some(ready) => {
                    println!("{ready}");
                    *next += 1;
                }
                None => break,
            }
        }
    });
}
