//! Regenerates Figure 6: disparity reduction achieved by a single soft quota.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::baselines_cmp::run_quota;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_quota(&scale, 0.7).expect("Figure 6 experiment failed");
    println!("{}", result.render());
}
