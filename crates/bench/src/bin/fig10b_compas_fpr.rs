//! Regenerates Figure 10b: COMPAS per-group false-positive rates after
//! FPR-difference-driven DCA.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::compas::run_fig10b;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_fig10b(&scale).expect("Figure 10b experiment failed");
    println!(
        "{}",
        result.render("Figure 10b — COMPAS false-positive-rate differences per k")
    );
}
