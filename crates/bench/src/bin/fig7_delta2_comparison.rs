//! Regenerates Figure 7: accuracy vs disparity for DCA and the
//! (Δ+2)-approximation algorithm.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::baselines_cmp::run_delta2_comparison;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_delta2_comparison(&scale).expect("Figure 7 experiment failed");
    println!("{}", result.render());
}
