//! Regenerates Figure 1: nDCG@k on the test cohort for varying k.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::utility::run_fig1;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_fig1(&scale).expect("Figure 1 experiment failed");
    println!("{}", result.render());
    println!("Bonus vector learned at k = 5%: {:?}", result.bonus);
}
