//! Regenerates Figure 9: DCA optimizing Disparity vs Disparate Impact.
use fair_bench::datasets::ExperimentScale;
use fair_bench::experiments::alt_metrics::run_disparate_impact_comparison;

fn main() {
    let scale = ExperimentScale::from_env();
    let result = run_disparate_impact_comparison(&scale, None).expect("Figure 9 experiment failed");
    println!("{}", result.render());
}
