//! # fair-bench — experiment harness regenerating every table and figure
//!
//! One module (and one binary) per experiment of the paper's evaluation
//! section. Each experiment function is pure computation over the synthetic
//! datasets of [`fair_data`] and returns a structured result with a
//! plain-text rendering, so the same code backs:
//!
//! * the `cargo run -p fair-bench --release --bin <experiment>` binaries that
//!   print paper-style tables,
//! * the Criterion benchmarks in `benches/`,
//! * the cross-crate integration tests at the workspace root.
//!
//! The experiment scale (cohort sizes, DCA iteration counts) defaults to a
//! laptop-friendly setting and can be raised to the paper's full scale with
//! the `FAIR_BENCH_SCALE=full` environment variable (see [`ExperimentScale`]).

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod datasets;
pub mod experiments;
pub mod table;

pub use datasets::{standard_compas, standard_school_pair, ExperimentScale};
pub use table::TextTable;

use fair_core::prelude::*;

/// A per-`k` evaluation point used by most figures: the disparity vector, its
/// norm, and the nDCG utility at that selection fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePoint {
    /// Selection fraction.
    pub k: f64,
    /// Per-dimension disparity at `k`.
    pub disparity: Vec<f64>,
    /// L2 norm of the disparity.
    pub norm: f64,
    /// nDCG@k of the bonus-adjusted ranking against the original one.
    pub ndcg: f64,
}

/// Evaluate the disparity and utility of a bonus vector over a range of
/// selection fractions — the workhorse behind Figures 1, 4, 8 and 10.
///
/// # Errors
/// Returns an error on empty datasets or invalid fractions.
pub fn disparity_curve<R: Ranker + ?Sized>(
    dataset: &Dataset,
    ranker: &R,
    bonus: &[f64],
    ks: &[f64],
) -> Result<Vec<CurvePoint>> {
    let view = dataset.full_view();
    let ranking = RankedSelection::from_scores(effective_scores(&view, ranker, bonus));
    let mut points = Vec::with_capacity(ks.len());
    for &k in ks {
        let disparity = disparity_at_k(&view, &ranking, k)?;
        let ndcg = ndcg_at_k(&view, ranker, &ranking, k)?;
        points.push(CurvePoint {
            k,
            norm: norm(&disparity),
            disparity,
            ndcg,
        });
    }
    Ok(points)
}

/// Disparity vector of a bonus-adjusted top-`k` selection on a full dataset.
///
/// # Errors
/// Returns an error on empty datasets or invalid fractions.
pub fn eval_disparity<R: Ranker + ?Sized>(
    dataset: &Dataset,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let view = dataset.full_view();
    let ranking = RankedSelection::from_scores(effective_scores(&view, ranker, bonus));
    disparity_at_k(&view, &ranking, k)
}

/// nDCG@k of a bonus-adjusted ranking on a full dataset.
///
/// # Errors
/// Returns an error on empty datasets or invalid fractions.
pub fn eval_ndcg<R: Ranker + ?Sized>(
    dataset: &Dataset,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<f64> {
    let view = dataset.full_view();
    let ranking = RankedSelection::from_scores(effective_scores(&view, ranker, bonus));
    ndcg_at_k(&view, ranker, &ranking, k)
}

/// The default selection-fraction grid used by the paper's per-k figures
/// (0.05, 0.10, …, 0.50).
#[must_use]
pub fn k_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 * 0.05).collect()
}

/// A DCA configuration scaled for interactive experiments: the paper's
/// structure (two learning rates + Adam refinement + rolling average +
/// 0.5-point rounding) with iteration counts controlled by `scale`.
#[must_use]
pub fn experiment_dca_config(scale: &ExperimentScale, seed: u64) -> DcaConfig {
    DcaConfig {
        sample_size: scale.dca_sample_size,
        learning_rates: vec![1.0, 0.1],
        iterations_per_rate: scale.dca_iterations,
        refinement_iterations: scale.dca_iterations,
        rolling_window: scale.dca_iterations,
        seed,
        ..DcaConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_grid_covers_five_to_fifty_percent() {
        let ks = k_grid();
        assert_eq!(ks.len(), 10);
        assert!((ks[0] - 0.05).abs() < 1e-12);
        assert!((ks[9] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_matches_pointwise_evaluation() {
        let scale = ExperimentScale::tiny();
        let (train, _) = standard_school_pair(&scale);
        let ranker = fair_data::SchoolGenerator::rubric();
        let curve = disparity_curve(train.dataset(), &ranker, &[0.0; 4], &[0.05, 0.2]).unwrap();
        assert_eq!(curve.len(), 2);
        let direct = eval_disparity(train.dataset(), &ranker, &[0.0; 4], 0.05).unwrap();
        assert_eq!(curve[0].disparity, direct);
        assert!(
            (curve[0].ndcg - 1.0).abs() < 1e-12,
            "zero bonus leaves the ranking unchanged"
        );
        assert!(curve[0].norm > 0.0);
    }

    #[test]
    fn experiment_config_respects_scale() {
        let scale = ExperimentScale::tiny();
        let config = experiment_dca_config(&scale, 1);
        assert_eq!(config.sample_size, scale.dca_sample_size);
        assert_eq!(config.iterations_per_rate, scale.dca_iterations);
        assert!(config.validate(4).is_ok());
    }
}
