//! Standard experiment datasets and the scale knob.

use fair_data::{CompasConfig, CompasGenerator, SchoolConfig, SchoolGenerator};

/// Controls how large the experiment datasets and DCA iteration counts are.
///
/// * `tiny`    — unit/integration-test scale (seconds),
/// * `default` — laptop scale: 20,000 students per cohort, full-size COMPAS,
/// * `full`    — the paper's scale: 80,000 students per cohort.
///
/// The scale is normally chosen via the `FAIR_BENCH_SCALE` environment
/// variable (`tiny`, `default`, or `full`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// Students per school cohort.
    pub school_cohort_size: usize,
    /// Defendants in the COMPAS-like dataset.
    pub compas_size: usize,
    /// Objects per DCA sample.
    pub dca_sample_size: usize,
    /// Iterations per learning rate (and refinement iterations).
    pub dca_iterations: usize,
    /// Base RNG seed shared by the experiments.
    pub seed: u64,
}

impl ExperimentScale {
    /// Test scale: small cohorts, few iterations.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            school_cohort_size: 4_000,
            compas_size: 3_000,
            dca_sample_size: 300,
            dca_iterations: 60,
            seed: 2016,
        }
    }

    /// Laptop scale (the default for the experiment binaries).
    #[must_use]
    pub fn default_scale() -> Self {
        Self {
            school_cohort_size: 20_000,
            compas_size: 7_214,
            dca_sample_size: 500,
            dca_iterations: 100,
            seed: 2016,
        }
    }

    /// The paper's full scale (~80,000 students per cohort).
    #[must_use]
    pub fn full() -> Self {
        Self {
            school_cohort_size: 80_000,
            compas_size: 7_214,
            dca_sample_size: 500,
            dca_iterations: 100,
            seed: 2016,
        }
    }

    /// Resolve the scale from the `FAIR_BENCH_SCALE` environment variable
    /// (`tiny` / `default` / `full`); unknown or missing values use the
    /// default scale.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FAIR_BENCH_SCALE").as_deref() {
            Ok("tiny") => Self::tiny(),
            Ok("full") => Self::full(),
            _ => Self::default_scale(),
        }
    }
}

/// The standard school train/test cohort pair (2016-17 and 2017-18 analogues).
#[must_use]
pub fn standard_school_pair(
    scale: &ExperimentScale,
) -> (
    fair_data::school::SchoolCohort,
    fair_data::school::SchoolCohort,
) {
    SchoolGenerator::new(SchoolConfig {
        num_students: scale.school_cohort_size,
        seed: scale.seed,
        ..SchoolConfig::default()
    })
    .train_test_cohorts()
}

/// The standard COMPAS-like dataset.
#[must_use]
pub fn standard_compas(scale: &ExperimentScale) -> fair_core::Dataset {
    CompasGenerator::new(CompasConfig {
        num_defendants: scale.compas_size,
        seed: scale.seed,
        ..CompasConfig::default()
    })
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_in_cohort_size() {
        assert!(
            ExperimentScale::tiny().school_cohort_size < ExperimentScale::full().school_cohort_size
        );
        assert_eq!(ExperimentScale::full().school_cohort_size, 80_000);
        assert_eq!(ExperimentScale::default_scale().compas_size, 7_214);
    }

    #[test]
    fn standard_datasets_match_the_scale() {
        let scale = ExperimentScale::tiny();
        let (train, test) = standard_school_pair(&scale);
        assert_eq!(train.dataset().len(), scale.school_cohort_size);
        assert_eq!(test.dataset().len(), scale.school_cohort_size);
        let compas = standard_compas(&scale);
        assert_eq!(compas.len(), scale.compas_size);
    }

    #[test]
    fn from_env_defaults_to_default_scale() {
        // The test environment does not set FAIR_BENCH_SCALE to tiny/full.
        let s = ExperimentScale::from_env();
        assert!(
            s == ExperimentScale::default_scale()
                || s == ExperimentScale::tiny()
                || s == ExperimentScale::full()
        );
    }
}
