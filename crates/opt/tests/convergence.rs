//! Crate-level property tests for the optimizers: convergence on random
//! convex quadratics, projection correctness, and schedule/rolling-average
//! algebra.

use fair_opt::{
    Adam, AdamConfig, BoxProjection, DescentConfig, DescentDriver, DirectionOracle, LadderSchedule,
    LearningRateSchedule, NonNegativeProjection, Projection, RollingAverage, RollingWindow, Sgd,
    SgdConfig, Step,
};
use proptest::prelude::*;

/// Oracle returning the gradient of `0.5 * ||x - target||^2`.
struct Quadratic {
    target: Vec<f64>,
}

impl DirectionOracle for Quadratic {
    fn direction(&mut self, params: &[f64]) -> Vec<f64> {
        params
            .iter()
            .zip(&self.target)
            .map(|(p, t)| p - t)
            .collect()
    }
    fn dims(&self) -> usize {
        self.target.len()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adam converges to the minimizer of any well-scaled convex quadratic.
    #[test]
    fn adam_converges_on_random_quadratics(
        target in proptest::collection::vec(-20.0_f64..20.0, 1..5),
    ) {
        let mut adam = Adam::new(target.len(), AdamConfig { learning_rate: 0.2, ..Default::default() });
        let mut x = vec![0.0; target.len()];
        for _ in 0..4_000 {
            let grad: Vec<f64> = x.iter().zip(&target).map(|(a, t)| a - t).collect();
            adam.step(&mut x, &grad);
        }
        for (a, t) in x.iter().zip(&target) {
            prop_assert!((a - t).abs() < 0.05, "{a} vs {t}");
        }
    }

    /// SGD with a decreasing ladder converges too, and the projected variant
    /// converges to the projection of the target.
    #[test]
    fn projected_sgd_converges_to_the_projected_optimum(
        target in -30.0_f64..30.0,
    ) {
        let driver = DescentDriver::new(NonNegativeProjection, DescentConfig::default());
        let schedule = LadderSchedule::new(vec![0.5, 0.1, 0.01], 300);
        let mut oracle = Quadratic { target: vec![target] };
        let report = driver.run_scheduled(&mut oracle, &schedule, vec![0.0]);
        let expected = target.max(0.0);
        prop_assert!((report.params[0] - expected).abs() < 0.05,
            "{} vs projected target {expected}", report.params[0]);
    }

    /// Box projections clamp every coordinate into its interval and are
    /// idempotent.
    #[test]
    fn box_projection_is_idempotent(
        values in proptest::collection::vec(-100.0_f64..100.0, 1..6),
        max in 0.0_f64..50.0,
    ) {
        let projection = BoxProjection::zero_to(values.len(), max);
        let mut once = values.clone();
        projection.project(&mut once);
        prop_assert!(once.iter().all(|v| (0.0..=max).contains(v)));
        let mut twice = once.clone();
        projection.project(&mut twice);
        prop_assert_eq!(once, twice);
    }

    /// The ladder schedule is non-increasing when built from a sorted list,
    /// and covers exactly rates × steps_per_rate steps.
    #[test]
    fn ladder_schedule_is_non_increasing(
        mut rates in proptest::collection::vec(0.001_f64..10.0, 1..5),
        steps in 1_usize..50,
    ) {
        rates.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let schedule = LadderSchedule::new(rates.clone(), steps);
        prop_assert_eq!(schedule.total_steps(), Some(rates.len() * steps));
        let series: Vec<f64> = schedule.iter().map(|(_, lr)| lr).collect();
        prop_assert!(series.windows(2).all(|w| w[0] >= w[1]));
    }

    /// The rolling window mean equals the arithmetic mean of the retained
    /// entries, and the cumulative average equals the mean of everything.
    #[test]
    fn rolling_averages_match_direct_computation(
        values in proptest::collection::vec(-50.0_f64..50.0, 1..60),
        capacity in 1_usize..20,
    ) {
        let mut window = RollingWindow::new(1, capacity);
        let mut cumulative = RollingAverage::new(1);
        for v in &values {
            window.push(vec![*v]);
            cumulative.push(&[*v]);
        }
        let tail: Vec<f64> = values.iter().rev().take(capacity).copied().collect();
        let expected_window = tail.iter().sum::<f64>() / tail.len() as f64;
        let expected_total = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((window.mean().unwrap()[0] - expected_window).abs() < 1e-6);
        prop_assert!((cumulative.mean().unwrap()[0] - expected_total).abs() < 1e-6);
    }

    /// Momentum never changes the fixed point: at the optimum the velocity
    /// decays and parameters stay put.
    #[test]
    fn sgd_momentum_is_stable_at_the_optimum(momentum in 0.0_f64..0.95) {
        let mut sgd = Sgd::new(1, SgdConfig { learning_rate: 0.1, momentum });
        let mut x = vec![3.0];
        for _ in 0..200 {
            // Gradient of (x - 3)^2 / 2 at the optimum is zero.
            let grad = vec![x[0] - 3.0];
            sgd.step(&mut x, &grad);
        }
        prop_assert!((x[0] - 3.0).abs() < 1e-6, "{}", x[0]);
    }
}
