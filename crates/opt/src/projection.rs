//! Projections onto feasible sets.
//!
//! DCA constrains bonus points to be non-negative ("We require bonus points to
//! be positive… Negative bonus points would be perceived as a penalty") and,
//! optionally, bounded above by a stakeholder-chosen maximum (Section VI-A4,
//! "Maximum Bonus Limits"). After every descent step the bonus vector is
//! projected back onto this box.

/// A projection maps a parameter vector onto a feasible set, in place.
pub trait Projection {
    /// Project `params` onto the feasible set.
    fn project(&self, params: &mut [f64]);

    /// Whether `params` already lies in the feasible set (up to `tol`).
    fn is_feasible(&self, params: &[f64], tol: f64) -> bool {
        let mut copy = params.to_vec();
        self.project(&mut copy);
        params.iter().zip(&copy).all(|(a, b)| (a - b).abs() <= tol)
    }
}

/// Clamp every coordinate at zero: `b_i <- max(b_i, 0)`. This is the exact
/// inner loop of Algorithm 1 (`for D in B { D <- max(D, 0) }`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NonNegativeProjection;

impl Projection for NonNegativeProjection {
    fn project(&self, params: &mut [f64]) {
        for p in params.iter_mut() {
            if *p < 0.0 {
                *p = 0.0;
            }
        }
    }
}

/// Per-dimension box constraints `lo_i <= b_i <= hi_i`.
///
/// Used for the maximum-bonus experiments of Figure 5, where "the number of
/// bonus points can be capped at every refinement step".
#[derive(Debug, Clone, PartialEq)]
pub struct BoxProjection {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl BoxProjection {
    /// Build a box from per-dimension lower and upper bounds.
    ///
    /// # Panics
    /// Panics if the bounds have different lengths, are empty, or if any lower
    /// bound exceeds its upper bound.
    #[must_use]
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound length mismatch");
        assert!(
            !lower.is_empty(),
            "box projection requires at least one dimension"
        );
        for (i, (lo, hi)) in lower.iter().zip(&upper).enumerate() {
            assert!(
                lo <= hi,
                "lower bound {lo} exceeds upper bound {hi} in dimension {i}"
            );
        }
        Self { lower, upper }
    }

    /// The box `[0, max]` in every one of `dims` dimensions — the paper's
    /// "never give negative bonuses, cap at a maximum" setting.
    #[must_use]
    pub fn zero_to(dims: usize, max: f64) -> Self {
        assert!(max >= 0.0, "maximum bonus must be non-negative");
        Self::new(vec![0.0; dims], vec![max; dims])
    }

    /// The box `[0, +inf)` in every one of `dims` dimensions (equivalent to
    /// [`NonNegativeProjection`] but usable where a `BoxProjection` is expected).
    #[must_use]
    pub fn non_negative(dims: usize) -> Self {
        Self::new(vec![0.0; dims], vec![f64::INFINITY; dims])
    }

    /// Per-dimension lower bounds.
    #[must_use]
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Per-dimension upper bounds.
    #[must_use]
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.lower.len()
    }
}

impl Projection for BoxProjection {
    fn project(&self, params: &mut [f64]) {
        assert_eq!(params.len(), self.lower.len(), "dimensionality mismatch");
        for ((p, lo), hi) in params.iter_mut().zip(&self.lower).zip(&self.upper) {
            *p = p.clamp(*lo, *hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_negative_clamps_only_negatives() {
        let mut v = vec![-1.0, 0.0, 2.5];
        NonNegativeProjection.project(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn non_negative_feasibility() {
        assert!(NonNegativeProjection.is_feasible(&[0.0, 1.0], 1e-12));
        assert!(!NonNegativeProjection.is_feasible(&[-0.5, 1.0], 1e-12));
    }

    #[test]
    fn box_projection_clamps_both_sides() {
        let b = BoxProjection::zero_to(3, 20.0);
        let mut v = vec![-5.0, 10.0, 25.0];
        b.project(&mut v);
        assert_eq!(v, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn box_projection_with_per_dimension_bounds() {
        let b = BoxProjection::new(vec![1.0, 0.0], vec![2.0, 5.0]);
        let mut v = vec![0.0, 10.0];
        b.project(&mut v);
        assert_eq!(v, vec![1.0, 5.0]);
    }

    #[test]
    fn unbounded_box_behaves_like_non_negative() {
        let b = BoxProjection::non_negative(2);
        let mut v = vec![-1.0, 1e12];
        b.project(&mut v);
        assert_eq!(v, vec![0.0, 1e12]);
    }

    #[test]
    fn box_feasibility_checks_bounds() {
        let b = BoxProjection::zero_to(1, 10.0);
        assert!(b.is_feasible(&[5.0], 1e-9));
        assert!(!b.is_feasible(&[11.0], 1e-9));
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_bounds_rejected() {
        let _ = BoxProjection::new(vec![2.0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_bounds_rejected() {
        let _ = BoxProjection::new(vec![0.0, 0.0], vec![1.0]);
    }
}
