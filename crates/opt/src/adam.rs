//! Adam (adaptive moment estimation) optimizer.
//!
//! The DCA refinement step (Algorithm 2 of the paper) replaces the fixed
//! learning-rate ladder of Core DCA with Adam: "Instead of using a fixed
//! learning rate for all the parameters, the Adam method uses an individual
//! learning rate for each parameter which is individually optimized based on
//! the change in the gradient, or in our case the disparity."
//!
//! The implementation follows Kingma & Ba, *Adam: A Method for Stochastic
//! Optimization* (2017 revision), including bias correction of the first and
//! second moment estimates.

use crate::Step;

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Base step size `alpha`. The paper's refinement step uses Adam's
    /// conventional defaults with a moderate step size; `0.1` works well for
    /// bonus points expressed on a 0–100 score scale.
    pub learning_rate: f64,
    /// Exponential decay rate for the first-moment estimate (`beta_1`).
    pub beta1: f64,
    /// Exponential decay rate for the second-moment estimate (`beta_2`).
    pub beta2: f64,
    /// Numerical-stability constant added to the denominator.
    pub epsilon: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.1,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }
}

/// The Adam optimizer state: first/second moment estimates and step counter.
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    /// First-moment (mean) estimate per parameter.
    m: Vec<f64>,
    /// Second-moment (uncentered variance) estimate per parameter.
    v: Vec<f64>,
    /// Number of steps taken so far.
    t: u64,
}

impl Adam {
    /// Create an Adam optimizer for `dims` parameters.
    ///
    /// # Panics
    /// Panics if `dims == 0`, if any of the betas lie outside `[0, 1)`, or if
    /// the learning rate is not finite and positive.
    #[must_use]
    pub fn new(dims: usize, config: AdamConfig) -> Self {
        assert!(dims > 0, "Adam requires at least one parameter");
        assert!(
            config.learning_rate.is_finite() && config.learning_rate > 0.0,
            "learning rate must be positive and finite"
        );
        assert!(
            (0.0..1.0).contains(&config.beta1) && (0.0..1.0).contains(&config.beta2),
            "beta parameters must lie in [0, 1)"
        );
        Self {
            config,
            m: vec![0.0; dims],
            v: vec![0.0; dims],
            t: 0,
        }
    }

    /// Create an Adam optimizer with the default configuration.
    #[must_use]
    pub fn with_defaults(dims: usize) -> Self {
        Self::new(dims, AdamConfig::default())
    }

    /// The configuration this optimizer was created with.
    #[must_use]
    pub fn config(&self) -> AdamConfig {
        self.config
    }

    /// Number of steps taken since construction or the last [`Step::reset`].
    #[must_use]
    pub fn steps_taken(&self) -> u64 {
        self.t
    }
}

impl Step for Adam {
    fn step(&mut self, params: &mut [f64], direction: &[f64]) {
        assert_eq!(
            params.len(),
            self.m.len(),
            "parameter dimensionality mismatch"
        );
        assert_eq!(
            direction.len(),
            self.m.len(),
            "direction dimensionality mismatch"
        );

        self.t += 1;
        let AdamConfig {
            learning_rate,
            beta1,
            beta2,
            epsilon,
        } = self.config;
        // Bias-corrected decay factors for this step.
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);

        for i in 0..params.len() {
            let g = direction[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= learning_rate * m_hat / (v_hat.sqrt() + epsilon);
        }
    }

    fn dims(&self) -> usize {
        self.m.len()
    }

    fn reset(&mut self) {
        self.m.iter_mut().for_each(|x| *x = 0.0);
        self.v.iter_mut().for_each(|x| *x = 0.0);
        self.t = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Gradient of the convex quadratic f(x) = sum (x_i - target_i)^2.
    fn quad_grad(x: &[f64], target: &[f64]) -> Vec<f64> {
        x.iter().zip(target).map(|(a, b)| 2.0 * (a - b)).collect()
    }

    #[test]
    fn converges_on_quadratic() {
        let target = vec![3.0, -1.0, 0.5];
        let mut adam = Adam::with_defaults(3);
        let mut x = vec![0.0; 3];
        for _ in 0..5000 {
            let g = quad_grad(&x, &target);
            adam.step(&mut x, &g);
        }
        for (a, b) in x.iter().zip(&target) {
            assert!((a - b).abs() < 1e-3, "expected {b}, got {a}");
        }
    }

    #[test]
    fn first_step_moves_against_direction_by_learning_rate() {
        // With bias correction, the very first Adam step has magnitude close
        // to the learning rate regardless of the gradient scale.
        let mut adam = Adam::new(
            1,
            AdamConfig {
                learning_rate: 0.5,
                ..Default::default()
            },
        );
        let mut x = vec![0.0];
        adam.step(&mut x, &[1000.0]);
        assert!(x[0] < 0.0, "must move against a positive direction");
        assert!(
            (x[0].abs() - 0.5).abs() < 1e-6,
            "step magnitude ≈ lr, got {}",
            x[0]
        );
    }

    #[test]
    fn adapts_per_parameter() {
        // One coordinate gets a large, noisy direction; the other a small
        // consistent one. Adam should still make progress on both.
        let mut adam = Adam::with_defaults(2);
        let mut x = vec![0.0, 0.0];
        for i in 0..4000 {
            let noise = if i % 2 == 0 { 50.0 } else { -49.0 };
            let g = vec![2.0 * (x[0] - 1.0) + noise, 0.01 * (x[1] - 1.0)];
            adam.step(&mut x, &g);
        }
        assert!(
            (x[1] - 1.0).abs() < 0.2,
            "small-gradient coordinate converged: {}",
            x[1]
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut adam = Adam::with_defaults(2);
        let mut x = vec![0.0, 0.0];
        adam.step(&mut x, &[1.0, 1.0]);
        assert_eq!(adam.steps_taken(), 1);
        adam.reset();
        assert_eq!(adam.steps_taken(), 0);
        // After reset, behaviour matches a freshly built optimizer.
        let mut fresh = Adam::with_defaults(2);
        let mut a = vec![0.0, 0.0];
        let mut b = vec![0.0, 0.0];
        adam.step(&mut a, &[3.0, -2.0]);
        fresh.step(&mut b, &[3.0, -2.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn dims_reports_construction_size() {
        assert_eq!(Adam::with_defaults(4).dims(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one parameter")]
    fn zero_dims_rejected() {
        let _ = Adam::with_defaults(0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_direction_rejected() {
        let mut adam = Adam::with_defaults(2);
        let mut x = vec![0.0, 0.0];
        adam.step(&mut x, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn non_positive_learning_rate_rejected() {
        let _ = Adam::new(
            1,
            AdamConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
        );
    }
}
