//! # fair-opt — optimization substrate for the DCA fair-ranking library
//!
//! This crate contains the small, self-contained numerical-optimization
//! building blocks that the Disparity Compensation Algorithm (DCA) of
//! *Explainable Disparity Compensation for Efficient Fair Ranking* (ICDE 2024)
//! relies on:
//!
//! * [`Adam`] — the adaptive moment estimation optimizer (Kingma & Ba) used by
//!   the DCA refinement step (Algorithm 2 in the paper),
//! * [`LearningRateSchedule`] — the decreasing learning-rate ladders used by
//!   Core DCA (Algorithm 1),
//! * [`RollingAverage`] / [`RollingWindow`] — the rolling average of the last
//!   *n* bonus-vector guesses that the paper takes "to increase stability and
//!   avoid too many random effects of unusual samples near the end",
//! * [`Projection`] / [`BoxProjection`] — projections onto box constraints
//!   (`b_i >= 0`, optional per-dimension maxima) used to keep bonus points
//!   non-negative and optionally capped,
//! * [`DescentDriver`] — a generic projected "pseudo-gradient" descent loop
//!   that accepts any direction oracle (the disparity vector in DCA's case).
//!
//! The crate is deliberately dependency-free so it can be reused by any
//! vector-valued, derivative-free descent procedure.
//!
//! ## Example
//!
//! ```
//! use fair_opt::{Adam, AdamConfig, Step};
//!
//! // Minimize f(x) = (x0 - 3)^2 + (x1 + 1)^2 using its gradient as the
//! // direction oracle.
//! let mut adam = Adam::new(2, AdamConfig { learning_rate: 0.1, ..Default::default() });
//! let mut x = vec![0.0, 0.0];
//! for _ in 0..2000 {
//!     let grad = vec![2.0 * (x[0] - 3.0), 2.0 * (x[1] + 1.0)];
//!     adam.step(&mut x, &grad);
//! }
//! assert!((x[0] - 3.0).abs() < 1e-3);
//! assert!((x[1] + 1.0).abs() < 1e-3);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod adam;
pub mod descent;
pub mod projection;
pub mod rolling;
pub mod schedule;
pub mod sgd;
pub mod vector;

pub use adam::{Adam, AdamConfig};
pub use descent::{DescentConfig, DescentDriver, DescentReport, DirectionOracle, StepRecord};
pub use projection::{BoxProjection, NonNegativeProjection, Projection};
pub use rolling::{RollingAverage, RollingWindow};
pub use schedule::{ConstantSchedule, ExponentialDecay, LadderSchedule, LearningRateSchedule};
pub use sgd::{Sgd, SgdConfig};
pub use vector::{l1_norm, l2_norm, linf_norm, VectorOps};

/// Common interface implemented by every first-order stepper in this crate
/// ([`Adam`], [`Sgd`]).
///
/// A stepper mutates the parameter vector in place given a *direction* vector.
/// In classic optimization the direction is the gradient; in DCA it is the
/// (sampled) disparity vector, which is not a gradient but plays the same
/// role: parameters are moved *against* it.
pub trait Step {
    /// Apply one update of `params` against `direction`.
    ///
    /// # Panics
    /// Implementations panic if `params.len() != direction.len()` or if the
    /// dimensionality differs from the one the stepper was constructed with.
    fn step(&mut self, params: &mut [f64], direction: &[f64]);

    /// Dimensionality this stepper was constructed for.
    fn dims(&self) -> usize;

    /// Reset all internal state (moment estimates, step counters) so the
    /// stepper can be reused for a fresh run.
    fn reset(&mut self);
}
