//! Rolling averages over vector-valued iterates.
//!
//! The paper's refinement step ends with: "Finally, we take the rolling
//! average of the last 100 points to increase stability and avoid too many
//! random effects of unusual samples near the end." [`RollingWindow`] keeps a
//! bounded window of the most recent iterates and produces their element-wise
//! mean; [`RollingAverage`] is the unbounded (cumulative) variant that matches
//! Algorithm 2's `A <- A + B; return AVERAGE(A)` literally.

use std::collections::VecDeque;

/// Cumulative element-wise average of every vector ever pushed.
///
/// This is Algorithm 2's accumulator `A`: each refinement iteration adds the
/// current bonus guess, and the final answer is the average of all of them.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingAverage {
    sum: Vec<f64>,
    count: u64,
}

impl RollingAverage {
    /// Create an accumulator for vectors of length `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "RollingAverage requires at least one dimension");
        Self {
            sum: vec![0.0; dims],
            count: 0,
        }
    }

    /// Add one iterate.
    ///
    /// # Panics
    /// Panics if `v.len()` differs from the construction dimensionality.
    pub fn push(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.sum.len(), "dimensionality mismatch");
        for (s, x) in self.sum.iter_mut().zip(v) {
            *s += x;
        }
        self.count += 1;
    }

    /// Element-wise mean of everything pushed so far, or `None` if nothing was
    /// pushed.
    #[must_use]
    pub fn mean(&self) -> Option<Vec<f64>> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum.iter().map(|s| s / self.count as f64).collect())
    }

    /// Number of iterates accumulated.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Dimensionality of the accumulated vectors.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.sum.len()
    }

    /// Clear the accumulator.
    pub fn reset(&mut self) {
        self.sum.iter_mut().for_each(|x| *x = 0.0);
        self.count = 0;
    }
}

/// Element-wise average over a sliding window of the last `capacity` iterates.
///
/// Used by the experiment harness to reproduce "the rolling average of the
/// last 100 points".
#[derive(Debug, Clone)]
pub struct RollingWindow {
    window: VecDeque<Vec<f64>>,
    running_sum: Vec<f64>,
    capacity: usize,
}

impl RollingWindow {
    /// Create a window of at most `capacity` vectors of length `dims`.
    ///
    /// # Panics
    /// Panics if `dims == 0` or `capacity == 0`.
    #[must_use]
    pub fn new(dims: usize, capacity: usize) -> Self {
        assert!(dims > 0, "RollingWindow requires at least one dimension");
        assert!(capacity > 0, "RollingWindow requires a positive capacity");
        Self {
            window: VecDeque::with_capacity(capacity),
            running_sum: vec![0.0; dims],
            capacity,
        }
    }

    /// Push one iterate, evicting the oldest one when the window is full.
    ///
    /// # Panics
    /// Panics if `v.len()` differs from the construction dimensionality.
    pub fn push(&mut self, v: Vec<f64>) {
        assert_eq!(v.len(), self.running_sum.len(), "dimensionality mismatch");
        if self.window.len() == self.capacity {
            // Eviction keeps the running sum exact; with the tiny window sizes
            // DCA uses (<= a few hundred entries) floating-point drift is
            // negligible, and `mean` recomputes from the retained entries when
            // exactness matters.
            if let Some(old) = self.window.pop_front() {
                for (s, x) in self.running_sum.iter_mut().zip(&old) {
                    *s -= x;
                }
            }
        }
        for (s, x) in self.running_sum.iter_mut().zip(&v) {
            *s += x;
        }
        self.window.push_back(v);
    }

    /// Element-wise mean of the vectors currently in the window.
    #[must_use]
    pub fn mean(&self) -> Option<Vec<f64>> {
        if self.window.is_empty() {
            return None;
        }
        let n = self.window.len() as f64;
        Some(self.running_sum.iter().map(|s| s / n).collect())
    }

    /// Number of vectors currently held (at most `capacity`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Maximum number of vectors retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clear the window.
    pub fn reset(&mut self) {
        self.window.clear();
        self.running_sum.iter_mut().for_each(|x| *x = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_average_matches_hand_computation() {
        let mut acc = RollingAverage::new(2);
        assert_eq!(acc.mean(), None);
        acc.push(&[1.0, 2.0]);
        acc.push(&[3.0, 4.0]);
        acc.push(&[5.0, 6.0]);
        assert_eq!(acc.mean(), Some(vec![3.0, 4.0]));
        assert_eq!(acc.count(), 3);
    }

    #[test]
    fn cumulative_average_reset() {
        let mut acc = RollingAverage::new(1);
        acc.push(&[10.0]);
        acc.reset();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), None);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = RollingWindow::new(1, 2);
        w.push(vec![1.0]);
        w.push(vec![2.0]);
        w.push(vec![3.0]); // evicts 1.0
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(vec![2.5]));
    }

    #[test]
    fn window_mean_before_full() {
        let mut w = RollingWindow::new(2, 100);
        w.push(vec![1.0, 0.0]);
        w.push(vec![3.0, 2.0]);
        assert_eq!(w.mean(), Some(vec![2.0, 1.0]));
    }

    #[test]
    fn window_empty_mean_is_none() {
        let w = RollingWindow::new(3, 5);
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
    }

    #[test]
    fn window_reset_clears_state() {
        let mut w = RollingWindow::new(1, 3);
        w.push(vec![5.0]);
        w.reset();
        assert!(w.is_empty());
        w.push(vec![1.0]);
        assert_eq!(w.mean(), Some(vec![1.0]));
    }

    #[test]
    fn window_running_sum_stays_exact_over_many_evictions() {
        let mut w = RollingWindow::new(1, 10);
        for i in 0..1000 {
            w.push(vec![i as f64]);
        }
        // Last 10 values are 990..=999, mean 994.5.
        let mean = w.mean().unwrap()[0];
        assert!((mean - 994.5).abs() < 1e-9, "got {mean}");
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn mismatched_push_rejected() {
        let mut acc = RollingAverage::new(2);
        acc.push(&[1.0]);
    }
}
