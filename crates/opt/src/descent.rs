//! A generic projected descent loop over an arbitrary *direction oracle*.
//!
//! DCA cannot use gradient descent because the disparity-vs-bonus landscape is
//! a non-differentiable step function (Section IV-A of the paper). Instead it
//! moves the bonus vector against the (sampled) disparity vector, which acts as
//! a pseudo-gradient. [`DescentDriver`] packages this pattern — oracle, stepper,
//! projection, schedule — so that Core DCA, refined DCA and ablation variants
//! can all be expressed as configurations of the same loop.

use crate::projection::Projection;
use crate::schedule::LearningRateSchedule;
use crate::sgd::Sgd;
use crate::vector::l2_norm;
use crate::{Adam, Step};

/// Anything that can produce a descent direction for the current parameters.
///
/// Core DCA's oracle draws a fresh random sample and returns the disparity of
/// the top-k selection under the current bonus vector. The oracle is free to
/// be stochastic; the driver never assumes two calls with identical parameters
/// return identical directions.
pub trait DirectionOracle {
    /// Compute a direction for the given parameters. The driver moves
    /// parameters *against* this direction.
    fn direction(&mut self, params: &[f64]) -> Vec<f64>;

    /// Dimensionality of the parameter/direction vectors.
    fn dims(&self) -> usize;
}

impl<F> DirectionOracle for F
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    fn direction(&mut self, params: &[f64]) -> Vec<f64> {
        self(params)
    }

    fn dims(&self) -> usize {
        // Closures cannot know their dimensionality; the driver falls back to
        // the parameter vector's length, which is what matters in practice.
        0
    }
}

/// Configuration of a [`DescentDriver`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DescentConfig {
    /// Record the per-step trajectory (parameters and direction norms). Off by
    /// default because experiment sweeps run thousands of descents.
    pub record_trajectory: bool,
    /// Stop early once the direction norm stays below this threshold for
    /// `patience` consecutive steps. `None` disables early stopping (the paper
    /// always runs the full schedule).
    pub tolerance: Option<f64>,
    /// Number of consecutive below-tolerance steps required to stop early.
    pub patience: usize,
}

impl Default for DescentConfig {
    fn default() -> Self {
        Self {
            record_trajectory: false,
            tolerance: None,
            patience: 5,
        }
    }
}

/// One recorded step of a descent trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct StepRecord {
    /// Global step index.
    pub step: usize,
    /// Learning rate used at this step (for Adam phases this is the base rate).
    pub learning_rate: f64,
    /// L2 norm of the direction (disparity) observed at this step.
    pub direction_norm: f64,
    /// Parameters after the step and projection.
    pub params: Vec<f64>,
}

/// Summary of a completed descent run.
#[derive(Debug, Clone, PartialEq)]
pub struct DescentReport {
    /// Final parameter vector.
    pub params: Vec<f64>,
    /// Number of steps actually executed.
    pub steps: usize,
    /// Direction norm observed at the last step.
    pub final_direction_norm: f64,
    /// Whether the run stopped early due to the tolerance criterion.
    pub converged_early: bool,
    /// Optional per-step trajectory (empty unless requested).
    pub trajectory: Vec<StepRecord>,
}

/// Projected descent driver combining an oracle, a stepper, a projection and a
/// learning-rate schedule.
#[derive(Debug)]
pub struct DescentDriver<P: Projection> {
    projection: P,
    config: DescentConfig,
}

impl<P: Projection> DescentDriver<P> {
    /// Create a driver with the given projection and configuration.
    #[must_use]
    pub fn new(projection: P, config: DescentConfig) -> Self {
        Self { projection, config }
    }

    /// Run SGD-style descent following `schedule`, starting from `initial`.
    ///
    /// This is the skeleton of Core DCA: for each scheduled step, query the
    /// oracle, move against the returned direction scaled by the scheduled
    /// learning rate, then project.
    pub fn run_scheduled<O, S>(
        &self,
        oracle: &mut O,
        schedule: &S,
        initial: Vec<f64>,
    ) -> DescentReport
    where
        O: DirectionOracle,
        S: LearningRateSchedule,
    {
        let total = schedule
            .total_steps()
            .expect("run_scheduled requires a bounded schedule");
        let mut params = initial;
        let mut sgd = Sgd::with_learning_rate(params.len(), schedule.learning_rate(0));
        let mut trajectory = Vec::new();
        let mut last_norm = f64::INFINITY;
        let mut below = 0_usize;
        let mut executed = 0_usize;
        let mut converged_early = false;

        for step in 0..total {
            let lr = schedule.learning_rate(step);
            sgd.set_learning_rate(lr);
            let direction = oracle.direction(&params);
            assert_eq!(
                direction.len(),
                params.len(),
                "oracle direction dimensionality mismatch"
            );
            sgd.step(&mut params, &direction);
            self.projection.project(&mut params);
            last_norm = l2_norm(&direction);
            executed = step + 1;
            if self.config.record_trajectory {
                trajectory.push(StepRecord {
                    step,
                    learning_rate: lr,
                    direction_norm: last_norm,
                    params: params.clone(),
                });
            }
            if let Some(tol) = self.config.tolerance {
                if last_norm < tol {
                    below += 1;
                    if below >= self.config.patience {
                        converged_early = true;
                        break;
                    }
                } else {
                    below = 0;
                }
            }
        }

        DescentReport {
            params,
            steps: executed,
            final_direction_norm: last_norm,
            converged_early,
            trajectory,
        }
    }

    /// Run Adam-driven descent for `steps` iterations, starting from `initial`.
    ///
    /// This is the skeleton of the DCA refinement step (Algorithm 2): every
    /// iteration queries the oracle, performs one Adam step, projects, and
    /// yields the projected iterate to `on_iterate` (Algorithm 2 accumulates
    /// these into a rolling average).
    pub fn run_adam<O, F>(
        &self,
        oracle: &mut O,
        adam: &mut Adam,
        steps: usize,
        initial: Vec<f64>,
        mut on_iterate: F,
    ) -> DescentReport
    where
        O: DirectionOracle,
        F: FnMut(&[f64]),
    {
        let mut params = initial;
        assert_eq!(adam.dims(), params.len(), "Adam dimensionality mismatch");
        let mut trajectory = Vec::new();
        let mut last_norm = f64::INFINITY;
        let mut below = 0_usize;
        let mut executed = 0_usize;
        let mut converged_early = false;

        for step in 0..steps {
            let direction = oracle.direction(&params);
            assert_eq!(
                direction.len(),
                params.len(),
                "oracle direction dimensionality mismatch"
            );
            adam.step(&mut params, &direction);
            self.projection.project(&mut params);
            on_iterate(&params);
            last_norm = l2_norm(&direction);
            executed = step + 1;
            if self.config.record_trajectory {
                trajectory.push(StepRecord {
                    step,
                    learning_rate: adam.config().learning_rate,
                    direction_norm: last_norm,
                    params: params.clone(),
                });
            }
            if let Some(tol) = self.config.tolerance {
                if last_norm < tol {
                    below += 1;
                    if below >= self.config.patience {
                        converged_early = true;
                        break;
                    }
                } else {
                    below = 0;
                }
            }
        }

        DescentReport {
            params,
            steps: executed,
            final_direction_norm: last_norm,
            converged_early,
            trajectory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{BoxProjection, NonNegativeProjection};
    use crate::schedule::LadderSchedule;
    use crate::AdamConfig;

    /// Oracle whose direction is the gradient of ||x - target||^2 / 2, i.e.
    /// x - target. Descent should converge to the (projected) target.
    struct QuadraticOracle {
        target: Vec<f64>,
    }

    impl DirectionOracle for QuadraticOracle {
        fn direction(&mut self, params: &[f64]) -> Vec<f64> {
            params
                .iter()
                .zip(&self.target)
                .map(|(p, t)| p - t)
                .collect()
        }
        fn dims(&self) -> usize {
            self.target.len()
        }
    }

    #[test]
    fn scheduled_descent_reaches_target() {
        let driver = DescentDriver::new(NonNegativeProjection, DescentConfig::default());
        let mut oracle = QuadraticOracle {
            target: vec![2.0, 5.0],
        };
        let schedule = LadderSchedule::new(vec![0.5, 0.1, 0.01], 200);
        let report = driver.run_scheduled(&mut oracle, &schedule, vec![0.0, 0.0]);
        assert!((report.params[0] - 2.0).abs() < 1e-2, "{:?}", report.params);
        assert!((report.params[1] - 5.0).abs() < 1e-2, "{:?}", report.params);
        assert_eq!(report.steps, 600);
    }

    #[test]
    fn projection_keeps_parameters_feasible() {
        let driver = DescentDriver::new(NonNegativeProjection, DescentConfig::default());
        // Target is negative, so the projected optimum is 0.
        let mut oracle = QuadraticOracle { target: vec![-3.0] };
        let schedule = LadderSchedule::new(vec![0.5], 100);
        let report = driver.run_scheduled(&mut oracle, &schedule, vec![1.0]);
        assert_eq!(report.params[0], 0.0);
    }

    #[test]
    fn box_projection_caps_the_result() {
        let driver = DescentDriver::new(BoxProjection::zero_to(1, 2.0), DescentConfig::default());
        let mut oracle = QuadraticOracle { target: vec![10.0] };
        let schedule = LadderSchedule::new(vec![0.5], 200);
        let report = driver.run_scheduled(&mut oracle, &schedule, vec![0.0]);
        assert_eq!(report.params[0], 2.0);
    }

    #[test]
    fn early_stopping_respects_patience() {
        let config = DescentConfig {
            tolerance: Some(1e-6),
            patience: 3,
            ..Default::default()
        };
        let driver = DescentDriver::new(NonNegativeProjection, config);
        // Direction is always exactly zero: should stop after `patience` steps.
        let mut oracle = |_params: &[f64]| vec![0.0, 0.0];
        let schedule = LadderSchedule::new(vec![1.0], 1000);
        let report = driver.run_scheduled(&mut oracle, &schedule, vec![1.0, 1.0]);
        assert!(report.converged_early);
        assert_eq!(report.steps, 3);
    }

    #[test]
    fn trajectory_is_recorded_when_requested() {
        let config = DescentConfig {
            record_trajectory: true,
            ..Default::default()
        };
        let driver = DescentDriver::new(NonNegativeProjection, config);
        let mut oracle = QuadraticOracle { target: vec![1.0] };
        let schedule = LadderSchedule::new(vec![0.1], 5);
        let report = driver.run_scheduled(&mut oracle, &schedule, vec![0.0]);
        assert_eq!(report.trajectory.len(), 5);
        assert!(report.trajectory.windows(2).all(|w| w[0].step < w[1].step));
    }

    #[test]
    fn adam_descent_converges_and_yields_iterates() {
        let driver = DescentDriver::new(NonNegativeProjection, DescentConfig::default());
        let mut oracle = QuadraticOracle { target: vec![4.0] };
        let mut adam = Adam::new(
            1,
            AdamConfig {
                learning_rate: 0.05,
                ..Default::default()
            },
        );
        let mut seen = 0_usize;
        let report = driver.run_adam(&mut oracle, &mut adam, 3000, vec![0.0], |_p| seen += 1);
        assert_eq!(seen, 3000);
        assert!((report.params[0] - 4.0).abs() < 1e-2, "{:?}", report.params);
    }

    #[test]
    #[should_panic(expected = "bounded schedule")]
    fn unbounded_schedule_rejected() {
        let driver = DescentDriver::new(NonNegativeProjection, DescentConfig::default());
        let mut oracle = QuadraticOracle { target: vec![0.0] };
        let schedule = crate::schedule::ConstantSchedule::new(0.1, None);
        let _ = driver.run_scheduled(&mut oracle, &schedule, vec![0.0]);
    }
}
