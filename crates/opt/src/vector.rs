//! Small dense-vector helpers shared by the optimizers and by `fair-core`.
//!
//! The vectors manipulated by DCA are tiny (one entry per fairness attribute,
//! typically 1–10 dimensions), so everything here operates on plain `&[f64]`
//! slices and `Vec<f64>` values — no linear-algebra dependency is warranted.

/// Euclidean (L2) norm of a vector.
///
/// ```
/// assert!((fair_opt::l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn l2_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// L1 (Manhattan) norm of a vector.
#[must_use]
pub fn l1_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// L∞ (maximum-magnitude) norm of a vector.
#[must_use]
pub fn linf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
}

/// In-place element-wise operations on `f64` vectors.
///
/// Implemented for `Vec<f64>` and `[f64]`; all methods panic on length
/// mismatch because a mismatch always indicates a programming error (the
/// dimensionality of a bonus vector is fixed by the fairness schema).
pub trait VectorOps {
    /// `self += other`
    fn add_assign_vec(&mut self, other: &[f64]);
    /// `self -= other`
    fn sub_assign_vec(&mut self, other: &[f64]);
    /// `self *= scalar`
    fn scale_assign(&mut self, scalar: f64);
    /// `self += scalar * other` (axpy)
    fn axpy_assign(&mut self, scalar: f64, other: &[f64]);
    /// Dot product with another vector.
    fn dot(&self, other: &[f64]) -> f64;
}

impl VectorOps for [f64] {
    fn add_assign_vec(&mut self, other: &[f64]) {
        assert_eq!(self.len(), other.len(), "vector length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a += b;
        }
    }

    fn sub_assign_vec(&mut self, other: &[f64]) {
        assert_eq!(self.len(), other.len(), "vector length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a -= b;
        }
    }

    fn scale_assign(&mut self, scalar: f64) {
        for a in self.iter_mut() {
            *a *= scalar;
        }
    }

    fn axpy_assign(&mut self, scalar: f64, other: &[f64]) {
        assert_eq!(self.len(), other.len(), "vector length mismatch");
        for (a, b) in self.iter_mut().zip(other) {
            *a += scalar * b;
        }
    }

    fn dot(&self, other: &[f64]) -> f64 {
        assert_eq!(self.len(), other.len(), "vector length mismatch");
        self.iter().zip(other).map(|(a, b)| a * b).sum()
    }
}

impl VectorOps for Vec<f64> {
    fn add_assign_vec(&mut self, other: &[f64]) {
        self.as_mut_slice().add_assign_vec(other);
    }
    fn sub_assign_vec(&mut self, other: &[f64]) {
        self.as_mut_slice().sub_assign_vec(other);
    }
    fn scale_assign(&mut self, scalar: f64) {
        self.as_mut_slice().scale_assign(scalar);
    }
    fn axpy_assign(&mut self, scalar: f64, other: &[f64]) {
        self.as_mut_slice().axpy_assign(scalar, other);
    }
    fn dot(&self, other: &[f64]) -> f64 {
        self.as_slice().dot(other)
    }
}

/// Element-wise difference `a - b` returned as a new vector.
///
/// # Panics
/// Panics if the lengths differ.
#[must_use]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise mean of a set of equally sized vectors.
///
/// Returns `None` when `vectors` is empty.
#[must_use]
pub fn mean(vectors: &[Vec<f64>]) -> Option<Vec<f64>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0; first.len()];
    for v in vectors {
        acc.add_assign_vec(v);
    }
    acc.scale_assign(1.0 / vectors.len() as f64);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_norm_of_zero_vector_is_zero() {
        assert_eq!(l2_norm(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn l2_norm_matches_pythagoras() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn l1_and_linf_norms() {
        let v = [1.0, -2.0, 3.0];
        assert!((l1_norm(&v) - 6.0).abs() < 1e-12);
        assert!((linf_norm(&v) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_and_sub_assign() {
        let mut a = vec![1.0, 2.0];
        a.add_assign_vec(&[3.0, 4.0]);
        assert_eq!(a, vec![4.0, 6.0]);
        a.sub_assign_vec(&[1.0, 1.0]);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn scale_and_axpy() {
        let mut a = vec![1.0, 2.0];
        a.scale_assign(2.0);
        assert_eq!(a, vec![2.0, 4.0]);
        a.axpy_assign(0.5, &[2.0, 2.0]);
        assert_eq!(a, vec![3.0, 5.0]);
    }

    #[test]
    fn dot_product() {
        assert!((vec![1.0, 2.0, 3.0].dot(&[4.0, 5.0, 6.0]) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_vectors() {
        let vs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(mean(&vs), Some(vec![2.0, 3.0]));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = vec![1.0].dot(&[1.0, 2.0]);
    }

    #[test]
    fn sub_returns_difference() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 1.0]), vec![2.0, 0.0]);
    }
}
