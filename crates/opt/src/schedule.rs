//! Learning-rate schedules.
//!
//! Core DCA "loops through decreasing learning rates (step sizes)" — the paper
//! uses the ladder `[1.0, 0.1]` with 100 rounds each before handing over to
//! Adam. [`LadderSchedule`] models exactly that; [`ExponentialDecay`] and
//! [`ConstantSchedule`] are provided for ablation experiments.

/// A learning-rate schedule maps a global step index to a step size, and knows
/// its total length (if bounded).
pub trait LearningRateSchedule {
    /// Learning rate to use at global step `step` (0-based).
    ///
    /// Implementations must return a positive, finite value for every
    /// `step < total_steps()` (or every step, when unbounded).
    fn learning_rate(&self, step: usize) -> f64;

    /// Total number of steps this schedule prescribes, or `None` when the
    /// schedule is unbounded (e.g. a constant rate).
    fn total_steps(&self) -> Option<usize>;

    /// Iterate over all `(step, learning_rate)` pairs of a bounded schedule.
    fn iter(&self) -> ScheduleIter<'_, Self>
    where
        Self: Sized,
    {
        ScheduleIter {
            schedule: self,
            step: 0,
        }
    }
}

/// Iterator over a bounded schedule's `(step, learning_rate)` pairs.
#[derive(Debug)]
pub struct ScheduleIter<'a, S: LearningRateSchedule> {
    schedule: &'a S,
    step: usize,
}

impl<S: LearningRateSchedule> Iterator for ScheduleIter<'_, S> {
    type Item = (usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        match self.schedule.total_steps() {
            Some(total) if self.step >= total => None,
            _ => {
                let item = (self.step, self.schedule.learning_rate(self.step));
                self.step += 1;
                Some(item)
            }
        }
    }
}

/// The decreasing-ladder schedule of Core DCA: a sorted list of learning rates,
/// each applied for a fixed number of iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderSchedule {
    rates: Vec<f64>,
    steps_per_rate: usize,
}

impl LadderSchedule {
    /// Build a ladder from `rates` (applied in the given order) with
    /// `steps_per_rate` iterations each.
    ///
    /// # Panics
    /// Panics if `rates` is empty, contains a non-positive or non-finite rate,
    /// or if `steps_per_rate == 0`.
    #[must_use]
    pub fn new(rates: Vec<f64>, steps_per_rate: usize) -> Self {
        assert!(
            !rates.is_empty(),
            "ladder schedule requires at least one rate"
        );
        assert!(steps_per_rate > 0, "steps_per_rate must be positive");
        assert!(
            rates.iter().all(|r| r.is_finite() && *r > 0.0),
            "all learning rates must be positive and finite"
        );
        Self {
            rates,
            steps_per_rate,
        }
    }

    /// The ladder used in the paper's experiments: learning rates 1.0 then 0.1,
    /// 100 rounds each (Section V-B).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(vec![1.0, 0.1], 100)
    }

    /// The list of rates in application order.
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of iterations spent on each rate.
    #[must_use]
    pub fn steps_per_rate(&self) -> usize {
        self.steps_per_rate
    }
}

impl LearningRateSchedule for LadderSchedule {
    fn learning_rate(&self, step: usize) -> f64 {
        let idx = (step / self.steps_per_rate).min(self.rates.len() - 1);
        self.rates[idx]
    }

    fn total_steps(&self) -> Option<usize> {
        Some(self.rates.len() * self.steps_per_rate)
    }
}

/// A constant learning rate for `total` steps (unbounded when `total` is `None`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantSchedule {
    rate: f64,
    total: Option<usize>,
}

impl ConstantSchedule {
    /// Constant `rate` for `total` steps.
    ///
    /// # Panics
    /// Panics if `rate` is not positive and finite.
    #[must_use]
    pub fn new(rate: f64, total: Option<usize>) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "learning rate must be positive and finite"
        );
        Self { rate, total }
    }
}

impl LearningRateSchedule for ConstantSchedule {
    fn learning_rate(&self, _step: usize) -> f64 {
        self.rate
    }
    fn total_steps(&self) -> Option<usize> {
        self.total
    }
}

/// Exponentially decaying learning rate: `initial * decay^step`, floored at
/// `min_rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDecay {
    initial: f64,
    decay: f64,
    min_rate: f64,
    total: usize,
}

impl ExponentialDecay {
    /// Build an exponential-decay schedule.
    ///
    /// # Panics
    /// Panics on non-positive/non-finite `initial` or `min_rate`, a `decay`
    /// outside `(0, 1]`, or `total == 0`.
    #[must_use]
    pub fn new(initial: f64, decay: f64, min_rate: f64, total: usize) -> Self {
        assert!(
            initial.is_finite() && initial > 0.0,
            "initial rate must be positive"
        );
        assert!(decay > 0.0 && decay <= 1.0, "decay must lie in (0, 1]");
        assert!(
            min_rate.is_finite() && min_rate > 0.0,
            "min rate must be positive"
        );
        assert!(total > 0, "total steps must be positive");
        Self {
            initial,
            decay,
            min_rate,
            total,
        }
    }
}

impl LearningRateSchedule for ExponentialDecay {
    fn learning_rate(&self, step: usize) -> f64 {
        (self.initial * self.decay.powi(step as i32)).max(self.min_rate)
    }
    fn total_steps(&self) -> Option<usize> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_applies_each_rate_for_fixed_steps() {
        let s = LadderSchedule::new(vec![1.0, 0.1, 0.01], 10);
        assert_eq!(s.learning_rate(0), 1.0);
        assert_eq!(s.learning_rate(9), 1.0);
        assert_eq!(s.learning_rate(10), 0.1);
        assert_eq!(s.learning_rate(19), 0.1);
        assert_eq!(s.learning_rate(20), 0.01);
        assert_eq!(s.total_steps(), Some(30));
    }

    #[test]
    fn ladder_clamps_past_the_end() {
        let s = LadderSchedule::new(vec![1.0, 0.5], 5);
        assert_eq!(s.learning_rate(1000), 0.5);
    }

    #[test]
    fn paper_default_matches_section_v() {
        let s = LadderSchedule::paper_default();
        assert_eq!(s.rates(), &[1.0, 0.1]);
        assert_eq!(s.steps_per_rate(), 100);
        assert_eq!(s.total_steps(), Some(200));
    }

    #[test]
    fn iterator_covers_all_steps_in_order() {
        let s = LadderSchedule::new(vec![2.0, 1.0], 2);
        let collected: Vec<_> = s.iter().collect();
        assert_eq!(collected, vec![(0, 2.0), (1, 2.0), (2, 1.0), (3, 1.0)]);
    }

    #[test]
    fn constant_schedule_is_constant() {
        let s = ConstantSchedule::new(0.3, Some(4));
        assert_eq!(s.learning_rate(0), 0.3);
        assert_eq!(s.learning_rate(3), 0.3);
        assert_eq!(s.iter().count(), 4);
    }

    #[test]
    fn unbounded_constant_schedule_reports_none() {
        let s = ConstantSchedule::new(0.3, None);
        assert_eq!(s.total_steps(), None);
    }

    #[test]
    fn exponential_decay_decreases_and_floors() {
        let s = ExponentialDecay::new(1.0, 0.5, 0.1, 10);
        assert!(s.learning_rate(0) > s.learning_rate(1));
        assert_eq!(s.learning_rate(9), 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one rate")]
    fn empty_ladder_rejected() {
        let _ = LadderSchedule::new(vec![], 10);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn negative_rate_rejected() {
        let _ = LadderSchedule::new(vec![1.0, -0.1], 10);
    }
}
