//! Plain (projected) stochastic "gradient" descent with an optional momentum
//! term.
//!
//! Core DCA (Algorithm 1 of the paper) is exactly an SGD update applied to the
//! sampled disparity vector: `B <- B - L * D_k`, followed by clamping at zero.
//! [`Sgd`] implements the update; the clamping lives in
//! [`crate::projection`] so the same projection can be shared with [`crate::Adam`].

use crate::Step;

/// Hyper-parameters for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Step size `L` in the paper's notation.
    pub learning_rate: f64,
    /// Classical momentum coefficient; `0.0` reproduces the paper exactly.
    pub momentum: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1.0,
            momentum: 0.0,
        }
    }
}

/// Stochastic descent stepper used by Core DCA.
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<f64>,
    steps: u64,
}

impl Sgd {
    /// Create an SGD stepper for `dims` parameters.
    ///
    /// # Panics
    /// Panics if `dims == 0`, if the learning rate is not positive and finite,
    /// or if the momentum lies outside `[0, 1)`.
    #[must_use]
    pub fn new(dims: usize, config: SgdConfig) -> Self {
        assert!(dims > 0, "Sgd requires at least one parameter");
        assert!(
            config.learning_rate.is_finite() && config.learning_rate > 0.0,
            "learning rate must be positive and finite"
        );
        assert!(
            (0.0..1.0).contains(&config.momentum),
            "momentum must lie in [0, 1)"
        );
        Self {
            config,
            velocity: vec![0.0; dims],
            steps: 0,
        }
    }

    /// SGD with the given learning rate and no momentum — the exact update
    /// rule of Core DCA.
    #[must_use]
    pub fn with_learning_rate(dims: usize, learning_rate: f64) -> Self {
        Self::new(
            dims,
            SgdConfig {
                learning_rate,
                momentum: 0.0,
            },
        )
    }

    /// Change the learning rate in place. Used by the ladder schedule of Core
    /// DCA, which sweeps a decreasing list of learning rates while keeping the
    /// same parameter vector.
    pub fn set_learning_rate(&mut self, learning_rate: f64) {
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "learning rate must be positive and finite"
        );
        self.config.learning_rate = learning_rate;
    }

    /// Current learning rate.
    #[must_use]
    pub fn learning_rate(&self) -> f64 {
        self.config.learning_rate
    }

    /// Number of steps taken since construction or the last reset.
    #[must_use]
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }
}

impl Step for Sgd {
    fn step(&mut self, params: &mut [f64], direction: &[f64]) {
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "parameter dimensionality mismatch"
        );
        assert_eq!(
            direction.len(),
            self.velocity.len(),
            "direction dimensionality mismatch"
        );
        self.steps += 1;
        let SgdConfig {
            learning_rate,
            momentum,
        } = self.config;
        for i in 0..params.len() {
            self.velocity[i] = momentum * self.velocity[i] + learning_rate * direction[i];
            params[i] -= self.velocity[i];
        }
    }

    fn dims(&self) -> usize {
        self.velocity.len()
    }

    fn reset(&mut self) {
        self.velocity.iter_mut().for_each(|x| *x = 0.0);
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_core_dca_update_rule() {
        // B <- B - L * D with L = 0.2, D = (0.1, -0.05)
        let mut sgd = Sgd::with_learning_rate(2, 0.2);
        let mut b = vec![1.0, 2.0];
        sgd.step(&mut b, &[0.1, -0.05]);
        assert!((b[0] - (1.0 - 0.2 * 0.1)).abs() < 1e-12);
        assert!((b[1] - (2.0 + 0.2 * 0.05)).abs() < 1e-12);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut sgd = Sgd::with_learning_rate(1, 0.1);
        let mut x = vec![10.0];
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 4.0)];
            sgd.step(&mut x, &g);
        }
        assert!((x[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut plain = Sgd::new(
            1,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.0,
            },
        );
        let mut heavy = Sgd::new(
            1,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.9,
            },
        );
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        for _ in 0..10 {
            plain.step(&mut a, &[1.0]);
            heavy.step(&mut b, &[1.0]);
        }
        assert!(
            b[0] < a[0],
            "momentum should have travelled further: {b:?} vs {a:?}"
        );
    }

    #[test]
    fn set_learning_rate_changes_step_size() {
        let mut sgd = Sgd::with_learning_rate(1, 1.0);
        sgd.set_learning_rate(0.5);
        assert_eq!(sgd.learning_rate(), 0.5);
        let mut x = vec![0.0];
        sgd.step(&mut x, &[1.0]);
        assert!((x[0] + 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_velocity_and_counter() {
        let mut sgd = Sgd::new(
            1,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 0.9,
            },
        );
        let mut x = vec![0.0];
        sgd.step(&mut x, &[1.0]);
        sgd.reset();
        assert_eq!(sgd.steps_taken(), 0);
        let mut y = vec![0.0];
        sgd.step(&mut y, &[1.0]);
        assert!(
            (y[0] + 0.1).abs() < 1e-12,
            "velocity must start from zero after reset"
        );
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn invalid_momentum_rejected() {
        let _ = Sgd::new(
            1,
            SgdConfig {
                learning_rate: 0.1,
                momentum: 1.5,
            },
        );
    }
}
