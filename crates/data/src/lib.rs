//! # fair-data — dataset substrate for the DCA reproduction
//!
//! The paper evaluates DCA on two real-world datasets that cannot be
//! redistributed:
//!
//! 1. **NYC public-school student records** (obtained through a NYC DOE data
//!    request under IRB approval) — roughly 80,000 7th graders per academic
//!    year with grades, state test scores, and demographic flags;
//! 2. **COMPAS recidivism records** from Broward County, FL (the ProPublica
//!    extract) — 7,214 defendants with decile risk scores, race, and two-year
//!    recidivism outcomes.
//!
//! This crate provides *seeded synthetic generators* that reproduce the
//! published marginals and the bias structure that matters to DCA (group
//! frequencies, score shifts, attribute correlations), so every experiment in
//! the paper can be regenerated without access to restricted data. It also
//! provides plain-text CSV I/O and train/test splitting utilities so users can
//! run the same pipelines on their own data.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`distributions`] | seeded samplers (normal via Box–Muller, Bernoulli, clamped helpers) |
//! | [`school`] | the NYC-school-like cohort generator (Section V-A of the paper) |
//! | [`compas`] | the COMPAS-like defendant generator |
//! | [`csv`] | CSV writing plus streaming readers into [`fair_core::Dataset`] / [`fair_core::ShardedDataset`] |
//! | [`store`] | streaming converters into the on-disk shard store (`fair-store`) |
//! | [`split`] | train/test and per-district splitting |
//! | [`stats`] | dataset summary statistics used by reports and examples |

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod compas;
pub mod csv;
pub mod distributions;
pub mod school;
pub mod split;
pub mod stats;
pub mod store;

pub use compas::{CompasConfig, CompasGenerator, RACE_GROUPS};
pub use csv::{read_csv, read_csv_sharded, write_csv, CsvError};
pub use school::{SchoolConfig, SchoolGenerator, ShardedSchoolCohort, SCHOOL_DISTRICTS};
pub use split::{holdout_split, stratified_split};
pub use stats::DatasetSummary;
pub use store::{compas_to_store, csv_to_store, school_to_store, IngestError};
