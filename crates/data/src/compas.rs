//! Synthetic COMPAS-like recidivism data (Section V-A of the paper).
//!
//! The real data is the ProPublica extract of Broward County, FL records:
//! 7,214 defendants with a proprietary COMPAS decile score (1–10), race, and a
//! two-year recidivism outcome. This generator reproduces the structure DCA
//! interacts with:
//!
//! * the published race mix of the two-year-recidivism cohort,
//! * decile scores derived from an underlying risk estimate that is *shifted
//!   upward* for Black and Native American defendants and downward for white
//!   and Asian defendants — the disparate scoring behaviour ProPublica
//!   documented — then discretized into population deciles,
//! * a two-year recidivism label drawn from the *unshifted* risk, so that the
//!   false-positive rate of a top-k% flagging rule automatically differs
//!   across groups (the basis of Figure 10b).
//!
//! Being *selected* (flagged as high risk) is the unfavorable outcome here, so
//! DCA is run with [`fair_core::BonusPolarity::NonPositive`] bonuses that
//! subtract from the effective decile of over-flagged groups.

use crate::distributions::{bernoulli, categorical, clamped_normal, normal};
use fair_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The race groups used as fairness attributes (one-hot encoded), with their
/// approximate share of the ProPublica two-year cohort and the decile shift
/// applied by the synthetic scorer.
pub const RACE_GROUPS: [(&str, f64, f64); 6] = [
    ("african_american", 0.512, 0.13),
    ("caucasian", 0.340, -0.08),
    ("hispanic", 0.088, -0.02),
    ("other", 0.052, -0.03),
    ("asian", 0.005, -0.10),
    ("native_american", 0.003, 0.10),
];

/// Configuration of the COMPAS-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CompasConfig {
    /// Number of defendants (paper/ProPublica: 7,214).
    pub num_defendants: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mean of the underlying (true) recidivism risk.
    pub base_risk_mean: f64,
    /// Standard deviation of the underlying risk.
    pub base_risk_std: f64,
    /// Observation noise added to the risk before decile assignment.
    pub score_noise: f64,
}

impl Default for CompasConfig {
    fn default() -> Self {
        Self {
            num_defendants: 7_214,
            seed: 2016,
            base_risk_mean: 0.45,
            base_risk_std: 0.22,
            score_noise: 0.10,
        }
    }
}

impl CompasConfig {
    /// A smaller cohort for tests and quick experiments.
    #[must_use]
    pub fn small(num_defendants: usize, seed: u64) -> Self {
        Self {
            num_defendants,
            seed,
            ..Self::default()
        }
    }
}

/// The COMPAS-like dataset generator.
#[derive(Debug, Clone)]
pub struct CompasGenerator {
    config: CompasConfig,
}

impl CompasGenerator {
    /// Create a generator.
    #[must_use]
    pub fn new(config: CompasConfig) -> Self {
        Self { config }
    }

    /// Generator with the paper-scale defaults (7,214 defendants).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::new(CompasConfig::default())
    }

    /// The schema: one ranking feature `decile_score` and six one-hot binary
    /// race attributes.
    ///
    /// # Panics
    /// Never panics; the schema is statically valid.
    #[must_use]
    pub fn schema() -> SchemaRef {
        let race_names: Vec<&str> = RACE_GROUPS.iter().map(|(n, _, _)| *n).collect();
        Schema::from_names(&["decile_score"], &race_names, &[]).expect("static schema is valid")
    }

    /// The ranking function used in practice: the decile score itself (higher
    /// decile = flagged as higher risk).
    #[must_use]
    pub fn decile_ranker() -> SingleFeatureRanker {
        SingleFeatureRanker::new(0)
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &CompasConfig {
        &self.config
    }

    /// Drive the generator and hand each finished defendant row to `emit` —
    /// the shared code path behind the contiguous and shard-by-shard
    /// builders. Decile assignment needs the population rank of every
    /// observed score, so the primitive per-defendant draws (race, risk,
    /// observed score, outcome) are buffered as flat arrays; only the final
    /// emission pass materializes objects, one at a time.
    fn generate_rows(&self, mut emit: impl FnMut(DataObject)) {
        assert!(
            self.config.num_defendants > 0,
            "cohort must contain at least one defendant"
        );
        let c = &self.config;
        let mut rng = StdRng::seed_from_u64(c.seed);
        let weights: Vec<f64> = RACE_GROUPS.iter().map(|(_, share, _)| *share).collect();

        // First pass: latent risk, race, observed (biased) score, outcome.
        let n = c.num_defendants;
        let mut races = Vec::with_capacity(n);
        let mut biased_scores = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let race = categorical(&mut rng, &weights);
            let risk = clamped_normal(&mut rng, c.base_risk_mean, c.base_risk_std, 0.01, 0.99);
            let bias = RACE_GROUPS[race].2;
            let observed = normal(&mut rng, risk + bias, c.score_noise);
            let recid = bernoulli(&mut rng, risk);
            races.push(race);
            biased_scores.push(observed);
            labels.push(recid);
        }

        // Second pass: convert observed scores into population deciles (1-10).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            biased_scores[a]
                .partial_cmp(&biased_scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut deciles = vec![0.0_f64; n];
        for (rank, &idx) in order.iter().enumerate() {
            let decile = ((rank * 10) / n) + 1;
            deciles[idx] = decile as f64;
        }

        // Emission pass: one object at a time, in id order.
        for i in 0..n {
            let mut fairness = vec![0.0; RACE_GROUPS.len()];
            fairness[races[i]] = 1.0;
            emit(DataObject::new_unchecked(
                i as u64,
                vec![deciles[i]],
                fairness,
                Some(labels[i]),
            ));
        }
    }

    /// Generate the defendant dataset.
    ///
    /// # Panics
    /// Panics if `num_defendants == 0`.
    #[must_use]
    pub fn generate(&self) -> Dataset {
        let mut dataset = Dataset::with_capacity(Self::schema(), self.config.num_defendants);
        self.generate_rows(|object| {
            dataset
                .push(object)
                .expect("generated objects match the schema");
        });
        dataset
    }

    /// Generate the defendant dataset **shard by shard**: rows append to a
    /// [`ShardedDataset`] as they are emitted, bit-for-bit identical to
    /// [`CompasGenerator::generate`] for the same seed. (The decile pass
    /// still buffers the flat per-defendant score arrays — deciles are
    /// population ranks — but no whole-cohort `Vec<DataObject>` is built.)
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] if `shard_size == 0`.
    ///
    /// # Panics
    /// Panics if `num_defendants == 0`.
    pub fn generate_sharded(&self, shard_size: usize) -> Result<ShardedDataset> {
        let mut data = ShardedDataset::with_shard_size(Self::schema(), shard_size)?;
        self.generate_rows(|object| {
            data.push(object)
                .expect("generated objects match the schema");
        });
        Ok(data)
    }

    /// Stream the defendants to `emit` the moment each is assembled — the
    /// zero-materialization hook behind the on-disk store converters.
    /// Row-for-row (bit-for-bit) identical to [`CompasGenerator::generate`]
    /// for the same seed.
    ///
    /// # Panics
    /// Panics if `num_defendants == 0`.
    pub fn for_each_defendant(&self, emit: impl FnMut(DataObject)) {
        self.generate_rows(emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::metrics::{disparity_at_k, group_fpr_at_k};
    use fair_core::ranking::effective_scores;

    fn generate(n: usize, seed: u64) -> Dataset {
        CompasGenerator::new(CompasConfig::small(n, seed)).generate()
    }

    #[test]
    fn race_mix_matches_the_published_shares() {
        let d = generate(20_000, 1);
        for (dim, (name, share, _)) in RACE_GROUPS.iter().enumerate() {
            let freq = d.group_frequency(dim);
            assert!(
                (freq - share).abs() < 0.02,
                "{name}: generated {freq} vs published {share}"
            );
        }
    }

    #[test]
    fn deciles_cover_one_to_ten_roughly_uniformly() {
        let d = generate(10_000, 2);
        let mut counts = [0_usize; 11];
        for o in d.iter() {
            let dec = o.features()[0] as usize;
            assert!((1..=10).contains(&dec), "decile {dec}");
            counts[dec] += 1;
        }
        for (dec, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / d.len() as f64;
            assert!((share - 0.1).abs() < 0.02, "decile {dec} share {share}");
        }
    }

    #[test]
    fn every_defendant_is_labelled_and_one_hot_encoded() {
        let d = generate(5_000, 3);
        assert!(d.fully_labelled());
        for o in d.iter() {
            let ones = o.fairness().iter().filter(|v| **v == 1.0).count();
            let zeros = o.fairness().iter().filter(|v| **v == 0.0).count();
            assert_eq!(ones, 1);
            assert_eq!(zeros, RACE_GROUPS.len() - 1);
        }
    }

    #[test]
    fn flagged_set_overrepresents_black_defendants() {
        let d = generate(20_000, 4);
        let view = d.full_view();
        let ranker = CompasGenerator::decile_ranker();
        let ranking = RankedSelection::from_scores(effective_scores(
            &view,
            &ranker,
            &[0.0; RACE_GROUPS.len()],
        ));
        let disp = disparity_at_k(&view, &ranking, 0.2).unwrap();
        // Dimension 0 = african_american (over-flagged, positive disparity);
        // dimension 1 = caucasian (under-flagged, negative disparity).
        assert!(disp[0] > 0.05, "african_american disparity {:?}", disp);
        assert!(disp[1] < -0.05, "caucasian disparity {:?}", disp);
    }

    #[test]
    fn false_positive_rate_is_higher_for_black_defendants() {
        let d = generate(20_000, 5);
        let view = d.full_view();
        let ranker = CompasGenerator::decile_ranker();
        let ranking = RankedSelection::from_scores(effective_scores(
            &view,
            &ranker,
            &[0.0; RACE_GROUPS.len()],
        ));
        let (per_group, overall) = group_fpr_at_k(&view, &ranking, 0.3).unwrap();
        assert!(
            per_group[0] > overall,
            "AA FPR {} vs overall {overall}",
            per_group[0]
        );
        assert!(
            per_group[1] < overall,
            "Caucasian FPR {} vs overall {overall}",
            per_group[1]
        );
    }

    #[test]
    fn recidivism_rate_is_plausible() {
        let d = generate(20_000, 6);
        let recid = d.iter().filter(|o| o.label() == Some(true)).count() as f64 / d.len() as f64;
        assert!(
            (0.3..0.6).contains(&recid),
            "two-year recidivism rate {recid}"
        );
    }

    #[test]
    fn generation_is_reproducible() {
        let a = generate(1_000, 7);
        let b = generate(1_000, 7);
        assert_eq!(a.row(10), b.row(10));
    }

    #[test]
    fn sharded_generation_matches_contiguous_bit_for_bit() {
        let generator = CompasGenerator::new(CompasConfig::small(1_001, 13));
        let flat = generator.generate();
        let sharded = generator.generate_sharded(100).unwrap();
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.num_shards(), 11);
        assert_eq!(sharded.shard(10).len(), 1, "non-divisible final shard");
        for i in 0..flat.len() {
            assert_eq!(sharded.row(i), flat.row(i), "row {i}");
        }
        assert!(sharded.fully_labelled());
    }

    #[test]
    fn paper_scale_has_7214_defendants() {
        let d = CompasGenerator::paper_scale().generate();
        assert_eq!(d.len(), 7_214);
    }

    #[test]
    #[should_panic(expected = "at least one defendant")]
    fn empty_cohort_panics() {
        let _ = CompasGenerator::new(CompasConfig::small(0, 1)).generate();
    }
}
