//! Dataset summary statistics.
//!
//! Used by the experiment harness and the examples to print the kind of
//! population overview the paper gives in Section V-A (group frequencies, mean
//! scores per group), and by tests to verify generator calibration.

use fair_core::prelude::*;
use std::fmt;

/// Per-group score statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStats {
    /// Fairness-attribute name.
    pub name: String,
    /// Fraction of objects belonging to the group (value >= 0.5).
    pub frequency: f64,
    /// Mean of each ranking feature over group members.
    pub member_feature_means: Vec<f64>,
    /// Mean of each ranking feature over non-members.
    pub other_feature_means: Vec<f64>,
}

/// Summary of a dataset: size, feature statistics, per-group breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Number of objects.
    pub count: usize,
    /// Feature names.
    pub feature_names: Vec<String>,
    /// Mean of each ranking feature over the whole dataset.
    pub feature_means: Vec<f64>,
    /// Standard deviation of each ranking feature.
    pub feature_stds: Vec<f64>,
    /// Per-fairness-group statistics.
    pub groups: Vec<GroupStats>,
    /// Fraction of labelled objects with a positive label, if any labels are
    /// present.
    pub positive_label_rate: Option<f64>,
}

impl DatasetSummary {
    /// Compute the summary of a dataset.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset.
    pub fn compute(dataset: &Dataset) -> Result<Self> {
        if dataset.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        let schema = dataset.schema();
        let n = dataset.len() as f64;
        let nf = schema.num_features();

        let mut means = vec![0.0; nf];
        for o in dataset.iter() {
            for (m, v) in means.iter_mut().zip(o.features()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; nf];
        for o in dataset.iter() {
            for ((s, v), m) in stds.iter_mut().zip(o.features()).zip(&means) {
                *s += (v - m).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }

        let mut groups = Vec::with_capacity(schema.num_fairness());
        for (dim, attr) in schema.fairness().iter().enumerate() {
            let mut member_sum = vec![0.0; nf];
            let mut other_sum = vec![0.0; nf];
            let mut member_count = 0_usize;
            for o in dataset.iter() {
                if o.in_group(dim) {
                    member_count += 1;
                    for (s, v) in member_sum.iter_mut().zip(o.features()) {
                        *s += v;
                    }
                } else {
                    for (s, v) in other_sum.iter_mut().zip(o.features()) {
                        *s += v;
                    }
                }
            }
            let other_count = dataset.len() - member_count;
            let member_means = if member_count == 0 {
                vec![0.0; nf]
            } else {
                member_sum.iter().map(|s| s / member_count as f64).collect()
            };
            let other_means = if other_count == 0 {
                vec![0.0; nf]
            } else {
                other_sum.iter().map(|s| s / other_count as f64).collect()
            };
            groups.push(GroupStats {
                name: attr.name().to_string(),
                frequency: member_count as f64 / n,
                member_feature_means: member_means,
                other_feature_means: other_means,
            });
        }

        let labelled: Vec<bool> = dataset.iter().filter_map(|o| o.label()).collect();
        let positive_label_rate = if labelled.is_empty() {
            None
        } else {
            Some(labelled.iter().filter(|l| **l).count() as f64 / labelled.len() as f64)
        };

        Ok(Self {
            count: dataset.len(),
            feature_names: schema.features().to_vec(),
            feature_means: means,
            feature_stds: stds,
            groups,
            positive_label_rate,
        })
    }
}

impl fmt::Display for DatasetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "objects: {}", self.count)?;
        for ((name, mean), std) in self
            .feature_names
            .iter()
            .zip(&self.feature_means)
            .zip(&self.feature_stds)
        {
            writeln!(f, "  {name:<14} mean {mean:7.2}  std {std:6.2}")?;
        }
        for g in &self.groups {
            writeln!(
                f,
                "  group {:<12} {:5.1}%  member feature means {:?}",
                g.name,
                g.frequency * 100.0,
                g.member_feature_means
                    .iter()
                    .map(|v| (v * 100.0).round() / 100.0)
                    .collect::<Vec<_>>()
            )?;
        }
        if let Some(rate) = self.positive_label_rate {
            writeln!(f, "  positive-label rate: {:.1}%", rate * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![10.0], vec![1.0], Some(true)),
            DataObject::new_unchecked(1, vec![20.0], vec![0.0], Some(false)),
            DataObject::new_unchecked(2, vec![30.0], vec![0.0], None),
            DataObject::new_unchecked(3, vec![40.0], vec![1.0], Some(true)),
        ];
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = DatasetSummary::compute(&dataset()).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.feature_means, vec![25.0]);
        let expected_std = (125.0_f64).sqrt();
        assert!((s.feature_stds[0] - expected_std).abs() < 1e-9);
        assert_eq!(s.groups.len(), 1);
        assert_eq!(s.groups[0].frequency, 0.5);
        assert_eq!(s.groups[0].member_feature_means, vec![25.0]);
        assert_eq!(s.groups[0].other_feature_means, vec![25.0]);
        assert_eq!(s.positive_label_rate, Some(2.0 / 3.0));
    }

    #[test]
    fn unlabelled_dataset_has_no_label_rate() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = vec![DataObject::new_unchecked(0, vec![1.0], vec![0.0], None)];
        let d = Dataset::new(schema, objects).unwrap();
        let s = DatasetSummary::compute(&d).unwrap();
        assert_eq!(s.positive_label_rate, None);
        // Group with no members reports zeroed means.
        assert_eq!(s.groups[0].member_feature_means, vec![0.0]);
    }

    #[test]
    fn empty_dataset_is_error() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        assert!(DatasetSummary::compute(&Dataset::empty(schema)).is_err());
    }

    #[test]
    fn display_mentions_groups_and_features() {
        let s = DatasetSummary::compute(&dataset()).unwrap();
        let text = s.to_string();
        assert!(text.contains("objects: 4"));
        assert!(text.contains("score"));
        assert!(text.contains("group g"));
        assert!(text.contains("positive-label rate"));
    }
}
