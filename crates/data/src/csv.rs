//! Minimal CSV serialization for [`fair_core::Dataset`] and streaming
//! ingestion into [`fair_core::ShardedDataset`].
//!
//! The format is self-describing: the header encodes each column's role so a
//! file can be read back without a separate schema definition.
//!
//! ```text
//! id,feature:gpa,feature:test_scores,fairness_binary:low_income,fairness_continuous:eni,label
//! 0,81.5,77.0,1,0.74,
//! 1,92.0,88.5,0,0.31,true
//! ```
//!
//! The `label` column is always present; empty cells mean "no label".
//!
//! Reading is **streaming**: [`read_csv`] and [`read_csv_sharded`] pull one
//! line at a time through a [`BufReader`] and append rows directly into the
//! target container — no whole-file string and no whole-cohort intermediate
//! `Vec<DataObject>` — so the peak memory of loading an out-of-core-sized
//! cohort into shards is one shard plus one line. Malformed rows report a
//! structured location: the 1-based line *and* the 1-based column of the
//! offending cell.

use fair_core::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Errors produced by CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is structurally malformed (bad header, wrong column count,
    /// unparsable number…).
    Malformed {
        /// 1-based line number, 0 for the header.
        line: usize,
        /// 1-based column (cell) number of the offending value, when the
        /// failure is attributable to one cell (`None` e.g. for a wrong cell
        /// count).
        column: Option<usize>,
        /// Explanation.
        reason: String,
    },
    /// The parsed values violate the dataset invariants.
    Dataset(FairError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Malformed {
                line,
                column: Some(column),
                reason,
            } => write!(f, "malformed CSV at line {line}, column {column}: {reason}"),
            Self::Malformed {
                line,
                column: None,
                reason,
            } => write!(f, "malformed CSV at line {line}: {reason}"),
            Self::Dataset(e) => write!(f, "invalid dataset contents: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FairError> for CsvError {
    fn from(e: FairError) -> Self {
        Self::Dataset(e)
    }
}

/// Serialize a dataset to a CSV string.
#[must_use]
pub fn to_csv_string(dataset: &Dataset) -> String {
    let schema = dataset.schema();
    let mut out = String::new();
    out.push_str("id");
    for f in schema.features() {
        let _ = write!(out, ",feature:{f}");
    }
    for attr in schema.fairness() {
        let kind = match attr.kind() {
            FairnessKind::Binary => "fairness_binary",
            FairnessKind::Continuous => "fairness_continuous",
        };
        let _ = write!(out, ",{kind}:{}", attr.name());
    }
    out.push_str(",label\n");

    for o in dataset.iter() {
        let _ = write!(out, "{}", o.id().0);
        for v in o.features() {
            let _ = write!(out, ",{v}");
        }
        for v in o.fairness() {
            let _ = write!(out, ",{v}");
        }
        match o.label() {
            Some(l) => {
                let _ = write!(out, ",{l}");
            }
            None => out.push(','),
        }
        out.push('\n');
    }
    out
}

/// Write a dataset to a CSV file.
///
/// # Errors
/// Returns an error on I/O failure.
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> std::result::Result<(), CsvError> {
    fs::write(path, to_csv_string(dataset))?;
    Ok(())
}

/// Column roles in order, used to route values while parsing rows.
#[derive(Clone, Copy)]
enum Role {
    Feature,
    Fairness,
}

/// The parsed header: the schema plus the per-column routing table.
pub(crate) struct CsvLayout {
    schema: SchemaRef,
    roles: Vec<Role>,
    num_columns: usize,
}

impl CsvLayout {
    /// The schema the header declares.
    pub(crate) fn schema(&self) -> &SchemaRef {
        &self.schema
    }
}

fn parse_header(header: &str) -> std::result::Result<CsvLayout, CsvError> {
    let columns: Vec<&str> = header.split(',').collect();
    if columns.first() != Some(&"id") || columns.last() != Some(&"label") {
        return Err(CsvError::Malformed {
            line: 0,
            column: None,
            reason: "header must start with `id` and end with `label`".to_string(),
        });
    }
    let mut features = Vec::new();
    let mut binary = Vec::new();
    let mut continuous = Vec::new();
    let mut roles = Vec::new();
    for (i, col) in columns[1..columns.len() - 1].iter().enumerate() {
        if let Some(name) = col.strip_prefix("feature:") {
            features.push(name);
            roles.push(Role::Feature);
        } else if let Some(name) = col.strip_prefix("fairness_binary:") {
            binary.push(name);
            roles.push(Role::Fairness);
        } else if let Some(name) = col.strip_prefix("fairness_continuous:") {
            continuous.push(name);
            roles.push(Role::Fairness);
        } else {
            return Err(CsvError::Malformed {
                line: 0,
                column: Some(i + 2),
                reason: format!("unknown column kind `{col}`"),
            });
        }
    }
    let schema = Schema::from_names(&features, &binary, &continuous)?;
    Ok(CsvLayout {
        schema,
        roles,
        num_columns: columns.len(),
    })
}

/// Parse one data row against the header layout. `line_no` is 1-based.
fn parse_row(
    layout: &CsvLayout,
    line: &str,
    line_no: usize,
) -> std::result::Result<DataObject, CsvError> {
    let cells: Vec<&str> = line.split(',').collect();
    if cells.len() != layout.num_columns {
        return Err(CsvError::Malformed {
            line: line_no,
            column: None,
            reason: format!(
                "expected {} cells, found {}",
                layout.num_columns,
                cells.len()
            ),
        });
    }
    let id: u64 = cells[0].trim().parse().map_err(|_| CsvError::Malformed {
        line: line_no,
        column: Some(1),
        reason: format!("invalid id `{}`", cells[0]),
    })?;
    let mut feat = Vec::with_capacity(layout.schema.num_features());
    let mut fair = Vec::with_capacity(layout.schema.num_fairness());
    for (i, (cell, role)) in cells[1..cells.len() - 1]
        .iter()
        .zip(&layout.roles)
        .enumerate()
    {
        let v: f64 = cell.trim().parse().map_err(|_| CsvError::Malformed {
            line: line_no,
            column: Some(i + 2),
            reason: format!("invalid number `{cell}`"),
        })?;
        match role {
            Role::Feature => feat.push(v),
            Role::Fairness => fair.push(v),
        }
    }
    let label_cell = cells[cells.len() - 1].trim();
    let label = match label_cell {
        "" => None,
        "true" | "1" => Some(true),
        "false" | "0" => Some(false),
        other => {
            return Err(CsvError::Malformed {
                line: line_no,
                column: Some(cells.len()),
                reason: format!("invalid label `{other}`"),
            })
        }
    };
    Ok(DataObject::new(&layout.schema, id, feat, fair, label)?)
}

/// Read and parse the header line from an opened reader.
pub(crate) fn read_header<R: BufRead>(reader: &mut R) -> std::result::Result<CsvLayout, CsvError> {
    let mut first = String::new();
    if reader.read_line(&mut first)? == 0 {
        return Err(CsvError::Malformed {
            line: 0,
            column: None,
            reason: "empty file".to_string(),
        });
    }
    parse_header(first.trim_end_matches(['\r', '\n']))
}

/// Parse a dataset from a CSV string produced by [`to_csv_string`] (or any
/// file following the same header convention). Shares the streaming driver
/// with [`read_csv`] (a `&[u8]` is a [`BufRead`]).
///
/// # Errors
/// Returns an error on malformed input or invalid attribute values.
pub fn from_csv_string(content: &str) -> std::result::Result<Dataset, CsvError> {
    read_dataset(content.as_bytes())
}

/// Read a dataset from a CSV file, streaming line by line through a
/// [`BufReader`] (the file is never held in memory as a whole).
///
/// # Errors
/// Returns an error on I/O failure, malformed input, or invalid values.
pub fn read_csv(path: impl AsRef<Path>) -> std::result::Result<Dataset, CsvError> {
    read_dataset(BufReader::new(fs::File::open(path)?))
}

/// The single contiguous-dataset reader behind [`from_csv_string`] and
/// [`read_csv`].
fn read_dataset<R: BufRead>(mut reader: R) -> std::result::Result<Dataset, CsvError> {
    let layout = read_header(&mut reader)?;
    let mut dataset = Dataset::empty(layout.schema.clone());
    stream_rows(
        reader,
        &layout,
        |object| -> std::result::Result<(), CsvError> {
            dataset.push(object)?;
            Ok(())
        },
    )?;
    Ok(dataset)
}

/// Read a cohort from a CSV file **directly into shards**: rows stream
/// through a [`BufReader`] and append to a [`ShardedDataset`] with the given
/// shard size, so peak transient memory is one line plus the shard being
/// filled — the out-of-core ingestion path.
///
/// # Errors
/// Returns an error on I/O failure, malformed input, invalid values, or a
/// zero shard size.
pub fn read_csv_sharded(
    path: impl AsRef<Path>,
    shard_size: usize,
) -> std::result::Result<ShardedDataset, CsvError> {
    let mut reader = BufReader::new(fs::File::open(path)?);
    let layout = read_header(&mut reader)?;
    let mut sharded = ShardedDataset::with_shard_size(layout.schema.clone(), shard_size)?;
    stream_rows(
        reader,
        &layout,
        |object| -> std::result::Result<(), CsvError> {
            sharded.push(object)?;
            Ok(())
        },
    )?;
    Ok(sharded)
}

/// Drive the streaming row loop over an opened reader, reusing one line
/// buffer for the whole file. Generic over the sink's error type so store
/// converters can thread their own failures through the loop.
pub(crate) fn stream_rows<R: BufRead, S, E>(
    mut reader: R,
    layout: &CsvLayout,
    mut sink: S,
) -> std::result::Result<(), E>
where
    S: FnMut(DataObject) -> std::result::Result<(), E>,
    E: From<CsvError>,
{
    let mut buf = String::new();
    let mut line_no = 0_usize;
    loop {
        buf.clear();
        if reader
            .read_line(&mut buf)
            .map_err(|e| E::from(CsvError::Io(e)))?
            == 0
        {
            return Ok(());
        }
        line_no += 1;
        let line = buf.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() {
            continue;
        }
        sink(parse_row(layout, line, line_no).map_err(E::from)?)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let schema = Schema::from_names(&["gpa", "test"], &["low_income"], &["eni"]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![81.5, 77.0], vec![1.0, 0.74], None),
            DataObject::new_unchecked(1, vec![92.0, 88.5], vec![0.0, 0.31], Some(true)),
            DataObject::new_unchecked(2, vec![65.0, 50.0], vec![1.0, 0.9], Some(false)),
        ];
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_dataset();
        let text = to_csv_string(&original);
        let parsed = from_csv_string(&text).unwrap();
        assert_eq!(parsed.len(), original.len());
        assert_eq!(parsed.schema().features(), original.schema().features());
        assert_eq!(
            parsed.schema().num_fairness(),
            original.schema().num_fairness()
        );
        for (a, b) in parsed.iter().zip(original.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn header_encodes_column_roles() {
        let text = to_csv_string(&sample_dataset());
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "id,feature:gpa,feature:test,fairness_binary:low_income,fairness_continuous:eni,label"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fair_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cohort.csv");
        let original = sample_dataset();
        write_csv(&original, &path).unwrap();
        let parsed = read_csv(&path).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(original.iter()) {
            assert_eq!(a, b, "streaming reader must reproduce every row");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn sharded_file_read_matches_flat_read() {
        let dir = std::env::temp_dir().join("fair_data_csv_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cohort.csv");
        let schema = Schema::from_names(&["x"], &["g"], &[]).unwrap();
        let objects = (0..23_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![f64::from(u8::from(i % 3 == 0))],
                    Some(i % 2 == 0),
                )
            })
            .collect();
        let original = Dataset::new(schema, objects).unwrap();
        write_csv(&original, &path).unwrap();

        let flat = read_csv(&path).unwrap();
        let sharded = read_csv_sharded(&path, 7).unwrap();
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.num_shards(), 4, "23 rows / shard size 7");
        assert_eq!(sharded.shard(3).len(), 2, "non-divisible final shard");
        for i in 0..flat.len() {
            assert_eq!(sharded.row(i), flat.row(i), "row {i}");
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_is_rejected() {
        assert!(matches!(
            from_csv_string(""),
            Err(CsvError::Malformed { line: 0, .. })
        ));
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = from_csv_string("name,feature:x,label\n");
        assert!(matches!(err, Err(CsvError::Malformed { line: 0, .. })));
        let err = from_csv_string("id,mystery:x,label\n");
        assert!(matches!(
            err,
            Err(CsvError::Malformed {
                line: 0,
                column: Some(2),
                ..
            })
        ));
    }

    #[test]
    fn wrong_cell_count_is_rejected() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1\n";
        assert!(matches!(
            from_csv_string(text),
            Err(CsvError::Malformed {
                line: 1,
                column: None,
                ..
            })
        ));
    }

    #[test]
    fn malformed_cells_report_line_and_column() {
        // Row 2, third cell (the fairness value) is not a number.
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1,\n1,2.0,abc,\n";
        match from_csv_string(text) {
            Err(CsvError::Malformed {
                line,
                column,
                reason,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(column, Some(3));
                assert!(reason.contains("abc"), "{reason}");
            }
            other => panic!("expected a structured malformed error, got {other:?}"),
        }
        // Bad id: column 1; bad label: last column.
        let bad_id = "id,feature:x,fairness_binary:g,label\nxyz,1.0,1,\n";
        assert!(matches!(
            from_csv_string(bad_id),
            Err(CsvError::Malformed {
                line: 1,
                column: Some(1),
                ..
            })
        ));
        let bad_label = "id,feature:x,fairness_binary:g,label\n0,1.0,1,maybe\n";
        assert!(matches!(
            from_csv_string(bad_label),
            Err(CsvError::Malformed {
                line: 1,
                column: Some(4),
                ..
            })
        ));
    }

    #[test]
    fn invalid_numbers_and_labels_are_rejected() {
        let bad_number = "id,feature:x,fairness_binary:g,label\n0,abc,1,\n";
        assert!(from_csv_string(bad_number).is_err());
        let bad_label = "id,feature:x,fairness_binary:g,label\n0,1.0,1,maybe\n";
        assert!(from_csv_string(bad_label).is_err());
        let bad_id = "id,feature:x,fairness_binary:g,label\nxyz,1.0,1,\n";
        assert!(from_csv_string(bad_id).is_err());
    }

    #[test]
    fn invalid_fairness_value_is_a_dataset_error() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,0.5,\n";
        assert!(matches!(from_csv_string(text), Err(CsvError::Dataset(_))));
    }

    #[test]
    fn numeric_labels_are_accepted() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1,1\n1,2.0,0,0\n";
        let d = from_csv_string(text).unwrap();
        assert_eq!(d.row(0).label(), Some(true));
        assert_eq!(d.row(1).label(), Some(false));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1,\n\n1,2.0,0,\n";
        let d = from_csv_string(text).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Malformed {
            line: 3,
            column: Some(2),
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("column 2"));
        let e = CsvError::Malformed {
            line: 3,
            column: None,
            reason: "boom".into(),
        };
        assert!(!e.to_string().contains("column"));
        let e = CsvError::Dataset(FairError::EmptyDataset);
        assert!(e.to_string().contains("invalid dataset"));
    }
}
