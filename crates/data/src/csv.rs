//! Minimal CSV serialization for [`fair_core::Dataset`].
//!
//! The format is self-describing: the header encodes each column's role so a
//! file can be read back without a separate schema definition.
//!
//! ```text
//! id,feature:gpa,feature:test_scores,fairness_binary:low_income,fairness_continuous:eni,label
//! 0,81.5,77.0,1,0.74,
//! 1,92.0,88.5,0,0.31,true
//! ```
//!
//! The `label` column is always present; empty cells mean "no label".

use fair_core::prelude::*;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Errors produced by CSV parsing.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is structurally malformed (bad header, wrong column count,
    /// unparsable number…).
    Malformed {
        /// 1-based line number, 0 for the header.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The parsed values violate the dataset invariants.
    Dataset(FairError),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Malformed { line, reason } => write!(f, "malformed CSV at line {line}: {reason}"),
            Self::Dataset(e) => write!(f, "invalid dataset contents: {e}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FairError> for CsvError {
    fn from(e: FairError) -> Self {
        Self::Dataset(e)
    }
}

/// Serialize a dataset to a CSV string.
#[must_use]
pub fn to_csv_string(dataset: &Dataset) -> String {
    let schema = dataset.schema();
    let mut out = String::new();
    out.push_str("id");
    for f in schema.features() {
        let _ = write!(out, ",feature:{f}");
    }
    for attr in schema.fairness() {
        let kind = match attr.kind() {
            FairnessKind::Binary => "fairness_binary",
            FairnessKind::Continuous => "fairness_continuous",
        };
        let _ = write!(out, ",{kind}:{}", attr.name());
    }
    out.push_str(",label\n");

    for o in dataset.iter() {
        let _ = write!(out, "{}", o.id().0);
        for v in o.features() {
            let _ = write!(out, ",{v}");
        }
        for v in o.fairness() {
            let _ = write!(out, ",{v}");
        }
        match o.label() {
            Some(l) => {
                let _ = write!(out, ",{l}");
            }
            None => out.push(','),
        }
        out.push('\n');
    }
    out
}

/// Write a dataset to a CSV file.
///
/// # Errors
/// Returns an error on I/O failure.
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> std::result::Result<(), CsvError> {
    fs::write(path, to_csv_string(dataset))?;
    Ok(())
}

/// Parse a dataset from a CSV string produced by [`to_csv_string`] (or any
/// file following the same header convention).
///
/// # Errors
/// Returns an error on malformed input or invalid attribute values.
pub fn from_csv_string(content: &str) -> std::result::Result<Dataset, CsvError> {
    let mut lines = content.lines();
    let header = lines.next().ok_or(CsvError::Malformed {
        line: 0,
        reason: "empty file".to_string(),
    })?;

    let columns: Vec<&str> = header.split(',').collect();
    if columns.first() != Some(&"id") || columns.last() != Some(&"label") {
        return Err(CsvError::Malformed {
            line: 0,
            reason: "header must start with `id` and end with `label`".to_string(),
        });
    }

    let mut features = Vec::new();
    let mut binary = Vec::new();
    let mut continuous = Vec::new();
    // Column roles in order, used to route values while parsing rows.
    #[derive(Clone, Copy)]
    enum Role {
        Feature,
        Fairness,
    }
    let mut roles = Vec::new();
    for col in &columns[1..columns.len() - 1] {
        if let Some(name) = col.strip_prefix("feature:") {
            features.push(name);
            roles.push(Role::Feature);
        } else if let Some(name) = col.strip_prefix("fairness_binary:") {
            binary.push(name);
            roles.push(Role::Fairness);
        } else if let Some(name) = col.strip_prefix("fairness_continuous:") {
            continuous.push(name);
            roles.push(Role::Fairness);
        } else {
            return Err(CsvError::Malformed {
                line: 0,
                reason: format!("unknown column kind `{col}`"),
            });
        }
    }
    let schema = Schema::from_names(&features, &binary, &continuous)?;

    let mut dataset = Dataset::empty(schema.clone());
    for (line_no, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != columns.len() {
            return Err(CsvError::Malformed {
                line: line_no + 1,
                reason: format!("expected {} cells, found {}", columns.len(), cells.len()),
            });
        }
        let id: u64 = cells[0].trim().parse().map_err(|_| CsvError::Malformed {
            line: line_no + 1,
            reason: format!("invalid id `{}`", cells[0]),
        })?;
        let mut feat = Vec::with_capacity(schema.num_features());
        let mut fair = Vec::with_capacity(schema.num_fairness());
        for (cell, role) in cells[1..cells.len() - 1].iter().zip(&roles) {
            let v: f64 = cell.trim().parse().map_err(|_| CsvError::Malformed {
                line: line_no + 1,
                reason: format!("invalid number `{cell}`"),
            })?;
            match role {
                Role::Feature => feat.push(v),
                Role::Fairness => fair.push(v),
            }
        }
        let label_cell = cells[cells.len() - 1].trim();
        let label = match label_cell {
            "" => None,
            "true" | "1" => Some(true),
            "false" | "0" => Some(false),
            other => {
                return Err(CsvError::Malformed {
                    line: line_no + 1,
                    reason: format!("invalid label `{other}`"),
                })
            }
        };
        let object = DataObject::new(&schema, id, feat, fair, label)?;
        dataset.push(object)?;
    }
    Ok(dataset)
}

/// Read a dataset from a CSV file.
///
/// # Errors
/// Returns an error on I/O failure, malformed input, or invalid values.
pub fn read_csv(path: impl AsRef<Path>) -> std::result::Result<Dataset, CsvError> {
    let content = fs::read_to_string(path)?;
    from_csv_string(&content)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let schema = Schema::from_names(&["gpa", "test"], &["low_income"], &["eni"]).unwrap();
        let objects = vec![
            DataObject::new_unchecked(0, vec![81.5, 77.0], vec![1.0, 0.74], None),
            DataObject::new_unchecked(1, vec![92.0, 88.5], vec![0.0, 0.31], Some(true)),
            DataObject::new_unchecked(2, vec![65.0, 50.0], vec![1.0, 0.9], Some(false)),
        ];
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_dataset();
        let text = to_csv_string(&original);
        let parsed = from_csv_string(&text).unwrap();
        assert_eq!(parsed.len(), original.len());
        assert_eq!(parsed.schema().features(), original.schema().features());
        assert_eq!(
            parsed.schema().num_fairness(),
            original.schema().num_fairness()
        );
        for (a, b) in parsed.iter().zip(original.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn header_encodes_column_roles() {
        let text = to_csv_string(&sample_dataset());
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "id,feature:gpa,feature:test,fairness_binary:low_income,fairness_continuous:eni,label"
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fair_data_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cohort.csv");
        let original = sample_dataset();
        write_csv(&original, &path).unwrap();
        let parsed = read_csv(&path).unwrap();
        assert_eq!(parsed.len(), original.len());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_is_rejected() {
        assert!(matches!(
            from_csv_string(""),
            Err(CsvError::Malformed { line: 0, .. })
        ));
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = from_csv_string("name,feature:x,label\n");
        assert!(matches!(err, Err(CsvError::Malformed { line: 0, .. })));
        let err = from_csv_string("id,mystery:x,label\n");
        assert!(matches!(err, Err(CsvError::Malformed { line: 0, .. })));
    }

    #[test]
    fn wrong_cell_count_is_rejected() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1\n";
        assert!(matches!(
            from_csv_string(text),
            Err(CsvError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn invalid_numbers_and_labels_are_rejected() {
        let bad_number = "id,feature:x,fairness_binary:g,label\n0,abc,1,\n";
        assert!(from_csv_string(bad_number).is_err());
        let bad_label = "id,feature:x,fairness_binary:g,label\n0,1.0,1,maybe\n";
        assert!(from_csv_string(bad_label).is_err());
        let bad_id = "id,feature:x,fairness_binary:g,label\nxyz,1.0,1,\n";
        assert!(from_csv_string(bad_id).is_err());
    }

    #[test]
    fn invalid_fairness_value_is_a_dataset_error() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,0.5,\n";
        assert!(matches!(from_csv_string(text), Err(CsvError::Dataset(_))));
    }

    #[test]
    fn numeric_labels_are_accepted() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1,1\n1,2.0,0,0\n";
        let d = from_csv_string(text).unwrap();
        assert_eq!(d.row(0).label(), Some(true));
        assert_eq!(d.row(1).label(), Some(false));
    }

    #[test]
    fn blank_lines_are_ignored() {
        let text = "id,feature:x,fairness_binary:g,label\n0,1.0,1,\n\n1,2.0,0,\n";
        let d = from_csv_string(text).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CsvError::Malformed {
            line: 3,
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = CsvError::Dataset(FairError::EmptyDataset);
        assert!(e.to_string().contains("invalid dataset"));
    }
}
