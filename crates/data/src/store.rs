//! Streaming converters into the on-disk shard store (`fair-store`).
//!
//! Each converter drives a row *producer* (a CSV file, a synthetic
//! generator) straight into a [`StoreWriter`], one row at a time: the only
//! cohort-sized thing that ever exists is the finished file on disk — peak
//! transient memory is a single shard buffer plus one row. This is the
//! ingest on-ramp for beyond-RAM cohorts: generate or parse once, then
//! evaluate forever through `fair_store::ShardStore`'s paged cache.
//!
//! | Producer | Converter |
//! |----------|-----------|
//! | CSV file (`fair-data` header convention) | [`csv_to_store`] |
//! | [`SchoolGenerator`] | [`school_to_store`] |
//! | [`CompasGenerator`] | [`compas_to_store`] |
//! | any in-memory `ShardSource` | [`fair_store::write_source`] |

use crate::compas::CompasGenerator;
use crate::csv::{read_header, stream_rows, CsvError};
use crate::school::SchoolGenerator;
use fair_store::{StoreError, StoreSummary, StoreWriter};
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// Errors produced by the CSV → store conversion: either side can fail.
#[derive(Debug)]
pub enum IngestError {
    /// The CSV input is malformed or unreadable.
    Csv(CsvError),
    /// The store file could not be written.
    Store(StoreError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Csv(e) => write!(f, "CSV ingest failed: {e}"),
            Self::Store(e) => write!(f, "store write failed: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Csv(e) => Some(e),
            Self::Store(e) => Some(e),
        }
    }
}

impl From<CsvError> for IngestError {
    fn from(e: CsvError) -> Self {
        Self::Csv(e)
    }
}

impl From<StoreError> for IngestError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

/// Convert a CSV file (the `fair-data` header convention) into an FSS1 shard
/// store, streaming line by line — no `Dataset`, no `Vec<DataObject>`, no
/// whole-file string.
///
/// # Errors
/// Returns an error on malformed CSV, invalid values, a zero `shard_size`,
/// or I/O failure on either file.
pub fn csv_to_store(
    csv_path: impl AsRef<Path>,
    store_path: impl AsRef<Path>,
    shard_size: usize,
) -> Result<StoreSummary, IngestError> {
    let mut reader = BufReader::new(File::open(csv_path).map_err(CsvError::Io)?);
    let layout = read_header(&mut reader)?;
    let mut writer = StoreWriter::create(store_path, layout.schema().clone(), shard_size)?;
    stream_rows(reader, &layout, |object| -> Result<(), IngestError> {
        writer.push(object)?;
        Ok(())
    })?;
    Ok(writer.finalize()?)
}

/// Generate a school cohort **directly onto disk**: every student is pushed
/// to the [`StoreWriter`] the moment it is drawn. Rows are bit-for-bit the
/// rows of [`SchoolGenerator::generate`] for the same seed, so evaluating
/// the resulting store reproduces the in-memory cohort exactly.
///
/// # Errors
/// Returns an error on a zero `shard_size` or I/O failure.
///
/// # Panics
/// Panics if the generator is configured for zero students.
pub fn school_to_store(
    generator: &SchoolGenerator,
    shard_size: usize,
    path: impl AsRef<Path>,
) -> Result<StoreSummary, StoreError> {
    stream_to_store(SchoolGenerator::schema(), shard_size, path, |emit| {
        generator.for_each_student(|object, _district| emit(object));
    })
}

/// Generate a COMPAS-like defendant cohort **directly onto disk** — the
/// defendant counterpart of [`school_to_store`], bit-for-bit the rows of
/// [`CompasGenerator::generate`] for the same seed.
///
/// # Errors
/// Returns an error on a zero `shard_size` or I/O failure.
///
/// # Panics
/// Panics if the generator is configured for zero defendants.
pub fn compas_to_store(
    generator: &CompasGenerator,
    shard_size: usize,
    path: impl AsRef<Path>,
) -> Result<StoreSummary, StoreError> {
    stream_to_store(CompasGenerator::schema(), shard_size, path, |emit| {
        generator.for_each_defendant(emit);
    })
}

/// The shared generator→writer streaming loop: `drive` pumps rows into the
/// `emit` sink; the first writer failure is captured (the infallible emit
/// hooks cannot early-return) and the remaining rows are drained without
/// further writes.
fn stream_to_store(
    schema: fair_core::SchemaRef,
    shard_size: usize,
    path: impl AsRef<Path>,
    drive: impl FnOnce(&mut dyn FnMut(fair_core::DataObject)),
) -> Result<StoreSummary, StoreError> {
    let mut writer = StoreWriter::create(path, schema, shard_size)?;
    let mut failure: Option<StoreError> = None;
    drive(&mut |object| {
        if failure.is_none() {
            if let Err(e) = writer.push(object) {
                failure = Some(e);
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => writer.finalize(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::write_csv;
    use crate::{CompasConfig, SchoolConfig};
    use fair_core::{ShardSource, ShardedDataset};
    use fair_store::ShardStore;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fair_data_store_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn assert_store_matches(store: &ShardStore, mem: &ShardedDataset) {
        assert_eq!(store.len(), mem.len());
        assert_eq!(store.num_shards(), mem.num_shards());
        for i in 0..mem.num_shards() {
            let disk = store.read_shard(i).unwrap();
            let shard = mem.shard(i);
            assert_eq!(disk.ids(), shard.data().ids(), "shard {i}");
            assert_eq!(disk.labels(), shard.data().labels(), "shard {i}");
            assert_eq!(
                bits(disk.features_matrix()),
                bits(shard.data().features_matrix()),
                "shard {i}"
            );
            assert_eq!(
                bits(disk.fairness_matrix()),
                bits(shard.data().fairness_matrix()),
                "shard {i}"
            );
        }
    }

    #[test]
    fn school_streams_to_disk_identically() {
        let generator = SchoolGenerator::new(SchoolConfig::small(233, 5));
        let path = temp_path("school.fss");
        let summary = school_to_store(&generator, 64, &path).unwrap();
        assert_eq!(summary.rows, 233);
        assert_eq!(summary.shards, 4, "233 rows / 64 per shard");
        let store = ShardStore::open_with_budget(&path, usize::MAX).unwrap();
        let mem = generator.generate_sharded(64).unwrap().into_dataset();
        assert_store_matches(&store, &mem);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compas_streams_to_disk_identically() {
        let generator = CompasGenerator::new(CompasConfig::small(101, 9));
        let path = temp_path("compas.fss");
        let summary = compas_to_store(&generator, 25, &path).unwrap();
        assert_eq!(summary.rows, 101);
        let store = ShardStore::open_with_budget(&path, usize::MAX).unwrap();
        let mem = generator.generate_sharded(25).unwrap();
        assert_store_matches(&store, &mem);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_streams_to_store_identically() {
        let generator = SchoolGenerator::new(SchoolConfig::small(89, 3));
        let cohort = generator.generate();
        let csv_path = temp_path("cohort.csv");
        write_csv(cohort.dataset(), &csv_path).unwrap();

        let store_path = temp_path("cohort.fss");
        let summary = csv_to_store(&csv_path, &store_path, 16).unwrap();
        assert_eq!(summary.rows, 89);
        let store = ShardStore::open_with_budget(&store_path, usize::MAX).unwrap();
        // The CSV round-trip is value-preserving (decimal text), so compare
        // against the CSV re-read, sharded the same way.
        let reread = crate::csv::read_csv_sharded(&csv_path, 16).unwrap();
        assert_store_matches(&store, &reread);
        std::fs::remove_file(csv_path).ok();
        std::fs::remove_file(store_path).ok();
    }

    #[test]
    fn conversion_errors_are_structured() {
        let generator = SchoolGenerator::new(SchoolConfig::small(10, 1));
        assert!(matches!(
            school_to_store(&generator, 0, temp_path("zero.fss")),
            Err(StoreError::InvalidConfig { .. })
        ));
        let missing = csv_to_store(temp_path("does_not_exist.csv"), temp_path("out.fss"), 8);
        assert!(matches!(missing, Err(IngestError::Csv(_))));
        // Malformed CSV surfaces as a Csv error with its line number intact.
        let bad_csv = temp_path("bad.csv");
        std::fs::write(
            &bad_csv,
            "id,feature:x,fairness_binary:g,label\n0,oops,1,\n",
        )
        .unwrap();
        match csv_to_store(&bad_csv, temp_path("bad.fss"), 8) {
            Err(IngestError::Csv(CsvError::Malformed { line: 1, .. })) => {}
            other => panic!("expected a structured CSV error, got {other:?}"),
        }
        let e = IngestError::from(StoreError::InvalidConfig { reason: "x".into() });
        assert!(e.to_string().contains("store write failed"));
        assert!(std::error::Error::source(&e).is_some());
        std::fs::remove_file(bad_csv).ok();
        std::fs::remove_file(temp_path("bad.fss")).ok();
        std::fs::remove_file(temp_path("out.fss")).ok();
        std::fs::remove_file(temp_path("zero.fss")).ok();
    }
}
