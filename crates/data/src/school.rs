//! Synthetic NYC-school-like admission cohorts (Section V-A of the paper).
//!
//! The real dataset — grades, test scores, absences and demographics of about
//! 80,000 NYC 7th graders per academic year — is restricted (NYC DOE data
//! request + IRB). This generator reproduces the population structure the
//! paper reports so that every school experiment can be regenerated:
//!
//! * **Low-income**: ~70% of students,
//! * **ELL** (English language learners): ~10% — the rarest group, which is
//!   what drives the paper's sample-size choice of 500,
//! * **Special education**: ~20%,
//! * **ENI** (Economic Need Index of the student's school): continuous in
//!   `[0, 1]`, correlated with the district's poverty level,
//! * ranking features `gpa` and `test_scores` on a 0–100 scale, generated from
//!   a shared latent ability that is *shifted down* for disadvantaged groups —
//!   this is the bias that produces the baseline disparity row of Table I
//!   (≈ −0.25 low-income, −0.11 ELL, −0.18 ENI, −0.19 special-ed, norm ≈ 0.37
//!   at a 5% selection).
//!
//! Students are also assigned to one of [`SCHOOL_DISTRICTS`] districts with a
//! district-specific poverty level; [`SchoolCohort::district`] extracts a
//! single district (~2,500 students at the default size), which is how the
//! paper runs its Multinomial FA\*IR comparison (Table II).

use crate::distributions::{bernoulli, clamped_normal, normal};
use fair_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of school districts students are spread across (NYC has 32
/// community school districts).
pub const SCHOOL_DISTRICTS: usize = 32;

/// Configuration of the school-cohort generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SchoolConfig {
    /// Number of students per cohort (the paper's cohorts are ~80,000; the
    /// default is 80,000, experiments may use fewer for speed).
    pub num_students: usize,
    /// RNG seed; two cohorts with different seeds model two academic years.
    pub seed: u64,
    /// Fraction of low-income students (paper: 70%).
    pub low_income_rate: f64,
    /// Fraction of English language learners (paper: the rarest group, ~10%).
    pub ell_rate: f64,
    /// Fraction of students receiving special-education services (~20%).
    pub special_ed_rate: f64,
    /// Mean of the latent ability distribution (0–100 scale).
    pub ability_mean: f64,
    /// Standard deviation of the latent ability distribution.
    pub ability_std: f64,
    /// Ability penalty applied to low-income students.
    pub low_income_shift: f64,
    /// Additional test-score penalty applied to ELL students (ELA-heavy
    /// rubrics disadvantage English learners).
    pub ell_shift: f64,
    /// Ability penalty applied to special-education students.
    pub special_ed_shift: f64,
    /// Ability penalty per unit of ENI above the city-wide average.
    pub eni_shift: f64,
}

impl Default for SchoolConfig {
    fn default() -> Self {
        Self {
            num_students: 80_000,
            seed: 2016,
            low_income_rate: 0.70,
            ell_rate: 0.10,
            special_ed_rate: 0.20,
            ability_mean: 68.0,
            ability_std: 14.0,
            low_income_shift: 5.0,
            ell_shift: 24.0,
            special_ed_shift: 14.0,
            eni_shift: 28.0,
        }
    }
}

impl SchoolConfig {
    /// A smaller cohort (useful for tests and quick experiments) with the same
    /// bias structure.
    #[must_use]
    pub fn small(num_students: usize, seed: u64) -> Self {
        Self {
            num_students,
            seed,
            ..Self::default()
        }
    }
}

/// A generated cohort: the dataset plus each student's district assignment.
#[derive(Debug, Clone)]
pub struct SchoolCohort {
    dataset: Dataset,
    districts: Vec<u16>,
}

impl SchoolCohort {
    /// The full cohort dataset.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Consume the cohort and return the dataset.
    #[must_use]
    pub fn into_dataset(self) -> Dataset {
        self.dataset
    }

    /// District assignment of each student (parallel to the dataset's object
    /// order), in `0..SCHOOL_DISTRICTS`.
    #[must_use]
    pub fn districts(&self) -> &[u16] {
        &self.districts
    }

    /// The sub-dataset of one district (used for the Table II comparison on a
    /// single district of ~2,500 students).
    ///
    /// # Panics
    /// Panics if `district >= SCHOOL_DISTRICTS`.
    #[must_use]
    pub fn district(&self, district: u16) -> Dataset {
        assert!(
            (district as usize) < SCHOOL_DISTRICTS,
            "district out of range"
        );
        let member: Vec<bool> = self.districts.iter().map(|d| *d == district).collect();
        let mut idx = 0;
        self.dataset.filter(|_| {
            let keep = member[idx];
            idx += 1;
            keep
        })
    }
}

/// A cohort generated straight into the sharded column store: the sharded
/// dataset plus each student's district assignment (parallel to global row
/// order).
#[derive(Debug, Clone)]
pub struct ShardedSchoolCohort {
    data: ShardedDataset,
    districts: Vec<u16>,
}

impl ShardedSchoolCohort {
    /// The sharded cohort.
    #[must_use]
    pub fn dataset(&self) -> &ShardedDataset {
        &self.data
    }

    /// Consume the cohort and return the sharded dataset.
    #[must_use]
    pub fn into_dataset(self) -> ShardedDataset {
        self.data
    }

    /// District assignment of each student, in global row order.
    #[must_use]
    pub fn districts(&self) -> &[u16] {
        &self.districts
    }
}

/// The generator itself. Construct with a [`SchoolConfig`], then call
/// [`SchoolGenerator::generate`] (one cohort),
/// [`SchoolGenerator::generate_sharded`] (the same cohort emitted
/// shard-by-shard), or [`SchoolGenerator::train_test_cohorts`] (two cohorts
/// with different seeds, modelling consecutive academic years as in the
/// paper).
#[derive(Debug, Clone)]
pub struct SchoolGenerator {
    config: SchoolConfig,
}

impl SchoolGenerator {
    /// Create a generator.
    #[must_use]
    pub fn new(config: SchoolConfig) -> Self {
        Self { config }
    }

    /// Generator with the paper-scale defaults (80,000 students).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self::new(SchoolConfig::default())
    }

    /// The schema shared by every school cohort:
    /// features `gpa`, `test_scores`; fairness `low_income`, `ell`,
    /// `special_ed` (binary) and `eni` (continuous).
    ///
    /// # Panics
    /// Never panics; the schema is statically valid.
    #[must_use]
    pub fn schema() -> SchemaRef {
        Schema::from_names(
            &["gpa", "test_scores"],
            &["low_income", "ell", "special_ed"],
            &["eni"],
        )
        .expect("static schema is valid")
    }

    /// The school admission rubric of the paper:
    /// `f = 0.55 * GPA + 0.45 * TestScores`.
    ///
    /// # Panics
    /// Never panics; the weights are statically valid.
    #[must_use]
    pub fn rubric() -> WeightedSumRanker {
        WeightedSumRanker::new(vec![0.55, 0.45]).expect("static weights are valid")
    }

    /// The generator configuration.
    #[must_use]
    pub fn config(&self) -> &SchoolConfig {
        &self.config
    }

    /// Poverty level of a district: districts are spread over `[0.5, 0.9]`
    /// so the city-wide low-income average lands near the configured rate.
    fn district_poverty(&self, district: u16) -> f64 {
        let span = SCHOOL_DISTRICTS as f64 - 1.0;
        let position = f64::from(district) / span;
        // Center the poverty range on the configured low-income rate.
        let center = self.config.low_income_rate;
        (center - 0.2 + 0.4 * position).clamp(0.05, 0.95)
    }

    /// Drive the row generator, handing each student (and their district) to
    /// `emit` as soon as it is drawn — the single code path behind both the
    /// contiguous and the shard-by-shard cohort builders, so they are
    /// row-for-row (bit-for-bit) identical for the same seed.
    fn generate_rows(&self, mut emit: impl FnMut(DataObject, u16)) {
        assert!(
            self.config.num_students > 0,
            "cohort must contain at least one student"
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let c = &self.config;

        for id in 0..c.num_students as u64 {
            let district = rng.gen_range(0..SCHOOL_DISTRICTS as u16);
            let poverty = self.district_poverty(district);

            let low_income = bernoulli(&mut rng, poverty);
            // ELL students concentrate in higher-poverty districts.
            let ell_p = c.ell_rate * poverty / c.low_income_rate.max(1e-9);
            let ell = bernoulli(&mut rng, ell_p);
            let special_ed = bernoulli(&mut rng, c.special_ed_rate);
            // School-level ENI tracks the district poverty with some spread;
            // low-income students attend slightly higher-ENI schools.
            let eni = clamped_normal(
                &mut rng,
                poverty + if low_income { 0.05 } else { -0.05 },
                0.08,
                0.0,
                1.0,
            );

            let mut ability = normal(&mut rng, c.ability_mean, c.ability_std);
            if low_income {
                ability -= c.low_income_shift;
            }
            if special_ed {
                ability -= c.special_ed_shift;
            }
            ability -= c.eni_shift * (eni - 0.5);

            let gpa = clamped_normal(&mut rng, ability, 6.0, 0.0, 100.0);
            let mut test = normal(&mut rng, ability, 9.0);
            if ell {
                test -= c.ell_shift;
            }
            let test = test.clamp(0.0, 100.0);

            let fairness = vec![
                f64::from(u8::from(low_income)),
                f64::from(u8::from(ell)),
                f64::from(u8::from(special_ed)),
                eni,
            ];
            emit(
                DataObject::new_unchecked(id, vec![gpa, test], fairness, None),
                district,
            );
        }
    }

    /// Generate one cohort.
    ///
    /// # Panics
    /// Panics if `num_students == 0`.
    #[must_use]
    pub fn generate(&self) -> SchoolCohort {
        let c = &self.config;
        let mut dataset = Dataset::with_capacity(Self::schema(), c.num_students);
        let mut districts = Vec::with_capacity(c.num_students);
        self.generate_rows(|object, district| {
            dataset
                .push(object)
                .expect("generated objects match the schema");
            districts.push(district);
        });
        SchoolCohort { dataset, districts }
    }

    /// Generate one cohort **shard by shard**: each student is appended to a
    /// [`ShardedDataset`] the moment it is drawn, so no whole-cohort
    /// `Vec<DataObject>` ever exists and the peak transient memory is one
    /// shard. Rows are bit-for-bit identical to [`SchoolGenerator::generate`]
    /// for the same seed.
    ///
    /// # Errors
    /// Returns [`FairError::InvalidConfig`] if `shard_size == 0`.
    ///
    /// # Panics
    /// Panics if `num_students == 0`.
    pub fn generate_sharded(&self, shard_size: usize) -> Result<ShardedSchoolCohort> {
        let mut data = ShardedDataset::with_shard_size(Self::schema(), shard_size)?;
        let mut districts = Vec::with_capacity(self.config.num_students);
        self.generate_rows(|object, district| {
            data.push(object)
                .expect("generated objects match the schema");
            districts.push(district);
        });
        Ok(ShardedSchoolCohort { data, districts })
    }

    /// Stream the cohort's students to `emit` (with their district
    /// assignment) the moment each is drawn — the zero-materialization hook
    /// behind the on-disk store converters. Row-for-row (bit-for-bit)
    /// identical to [`SchoolGenerator::generate`] for the same seed.
    ///
    /// # Panics
    /// Panics if `num_students == 0`.
    pub fn for_each_student(&self, emit: impl FnMut(DataObject, u16)) {
        self.generate_rows(emit);
    }

    /// Generate a training cohort and a test cohort from consecutive seeds —
    /// the paper's 2016-17 (training) and 2017-18 (test) academic years.
    #[must_use]
    pub fn train_test_cohorts(&self) -> (SchoolCohort, SchoolCohort) {
        let train = self.generate();
        let mut test_config = self.config.clone();
        test_config.seed = self.config.seed.wrapping_add(1);
        let test = SchoolGenerator::new(test_config).generate();
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fair_core::metrics::{disparity_at_k, norm};
    use fair_core::ranking::effective_scores;

    fn small_cohort(n: usize, seed: u64) -> SchoolCohort {
        SchoolGenerator::new(SchoolConfig::small(n, seed)).generate()
    }

    #[test]
    fn group_frequencies_match_the_published_marginals() {
        let cohort = small_cohort(40_000, 1);
        let d = cohort.dataset();
        let li = d.group_frequency(0);
        let ell = d.group_frequency(1);
        let sped = d.group_frequency(2);
        assert!((li - 0.70).abs() < 0.03, "low-income {li}");
        assert!((ell - 0.10).abs() < 0.02, "ell {ell}");
        assert!((sped - 0.20).abs() < 0.02, "special-ed {sped}");
    }

    #[test]
    fn eni_is_continuous_and_correlated_with_low_income() {
        let cohort = small_cohort(20_000, 2);
        let d = cohort.dataset();
        let mut li_eni = (0.0, 0_usize);
        let mut other_eni = (0.0, 0_usize);
        for o in d.iter() {
            let eni = o.fairness()[3];
            assert!((0.0..=1.0).contains(&eni));
            if o.in_group(0) {
                li_eni.0 += eni;
                li_eni.1 += 1;
            } else {
                other_eni.0 += eni;
                other_eni.1 += 1;
            }
        }
        let li_mean = li_eni.0 / li_eni.1 as f64;
        let other_mean = other_eni.0 / other_eni.1 as f64;
        assert!(
            li_mean > other_mean + 0.03,
            "ENI must correlate with low income: {li_mean} vs {other_mean}"
        );
    }

    #[test]
    fn baseline_disparity_shape_matches_table_one() {
        let cohort = small_cohort(40_000, 3);
        let d = cohort.dataset();
        let view = d.full_view();
        let rubric = SchoolGenerator::rubric();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
        let disp = disparity_at_k(&view, &ranking, 0.05).unwrap();
        // Every disadvantaged dimension must be clearly under-represented.
        assert!(disp.iter().all(|v| *v < -0.03), "{disp:?}");
        // The overall norm should be in the vicinity of the paper's 0.37.
        let n = norm(&disp);
        assert!((0.2..=0.55).contains(&n), "norm {n}");
        // Low-income should be the largest single gap, as in Table I.
        assert!(disp[0] <= disp[1] && disp[0] <= disp[2], "{disp:?}");
    }

    #[test]
    fn cohorts_are_reproducible_and_seed_sensitive() {
        let a = small_cohort(2_000, 5);
        let b = small_cohort(2_000, 5);
        let c = small_cohort(2_000, 6);
        assert_eq!(a.dataset().row(0), b.dataset().row(0));
        assert_ne!(a.dataset().row(0), c.dataset().row(0));
    }

    #[test]
    fn train_and_test_cohorts_share_structure_but_not_samples() {
        let (train, test) =
            SchoolGenerator::new(SchoolConfig::small(10_000, 7)).train_test_cohorts();
        assert_eq!(train.dataset().len(), test.dataset().len());
        assert_ne!(train.dataset().row(0), test.dataset().row(0));
        // Marginals stay comparable between years.
        let li_train = train.dataset().group_frequency(0);
        let li_test = test.dataset().group_frequency(0);
        assert!((li_train - li_test).abs() < 0.03);
    }

    #[test]
    fn districts_partition_the_cohort() {
        let cohort = small_cohort(20_000, 9);
        let total: usize = (0..SCHOOL_DISTRICTS as u16)
            .map(|d| cohort.district(d).len())
            .sum();
        assert_eq!(total, cohort.dataset().len());
        // District sizes are roughly balanced (20k / 32 ≈ 625).
        let d0 = cohort.district(0).len();
        assert!((300..=1000).contains(&d0), "district size {d0}");
        assert_eq!(cohort.districts().len(), cohort.dataset().len());
    }

    #[test]
    fn high_poverty_districts_have_more_low_income_students() {
        let cohort = small_cohort(30_000, 11);
        let poor = cohort.district(31);
        let rich = cohort.district(0);
        assert!(poor.group_frequency(0) > rich.group_frequency(0) + 0.1);
    }

    #[test]
    fn features_are_on_the_percentage_scale() {
        let cohort = small_cohort(5_000, 13);
        for o in cohort.dataset().iter() {
            for f in o.features() {
                assert!((0.0..=100.0).contains(f));
            }
        }
    }

    #[test]
    fn sharded_generation_matches_contiguous_bit_for_bit() {
        let generator = SchoolGenerator::new(SchoolConfig::small(1_000, 17));
        let flat = generator.generate();
        let sharded = generator.generate_sharded(64).unwrap();
        assert_eq!(sharded.dataset().len(), flat.dataset().len());
        assert_eq!(sharded.dataset().num_shards(), 16, "1000 rows / 64");
        assert_eq!(sharded.districts(), flat.districts());
        for i in 0..flat.dataset().len() {
            assert_eq!(sharded.dataset().row(i), flat.dataset().row(i), "row {i}");
        }
        let back = sharded.into_dataset().to_dataset();
        assert_eq!(back.len(), 1_000);
    }

    #[test]
    #[should_panic(expected = "district out of range")]
    fn out_of_range_district_panics() {
        let cohort = small_cohort(100, 1);
        let _ = cohort.district(99);
    }

    #[test]
    #[should_panic(expected = "at least one student")]
    fn empty_cohort_panics() {
        let _ = SchoolGenerator::new(SchoolConfig::small(0, 1)).generate();
    }
}
