//! Train/test splitting utilities.
//!
//! The paper trains DCA on one academic year and evaluates on the next. When
//! only a single dataset is available, [`holdout_split`] produces a random
//! train/test partition and [`stratified_split`] keeps the proportion of a
//! chosen fairness group identical across the two parts (important when a
//! group is rare, e.g. ELL students at 10%).

use fair_core::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly split a dataset into `(train, test)` where the test part receives
/// `test_fraction` of the objects.
///
/// # Errors
/// Returns an error if `test_fraction` is outside `(0, 1)` or the dataset has
/// fewer than two objects.
pub fn holdout_split(
    dataset: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(FairError::InvalidConfig {
            reason: format!("test fraction must lie in (0, 1), got {test_fraction}"),
        });
    }
    if dataset.len() < 2 {
        return Err(FairError::InvalidConfig {
            reason: "holdout split requires at least two objects".into(),
        });
    }
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let test_size =
        ((dataset.len() as f64 * test_fraction).round() as usize).clamp(1, dataset.len() - 1);
    let test_set: std::collections::HashSet<usize> = indices[..test_size].iter().copied().collect();

    let mut position = 0;
    let test = dataset.filter(|_| {
        let keep = test_set.contains(&position);
        position += 1;
        keep
    });
    let mut position = 0;
    let train = dataset.filter(|_| {
        let keep = !test_set.contains(&position);
        position += 1;
        keep
    });
    Ok((train, test))
}

/// Split a dataset while preserving the proportion of the (binary) fairness
/// group at `stratify_dim` in both parts.
///
/// # Errors
/// Returns an error for invalid fractions, tiny datasets, or an out-of-range
/// dimension.
pub fn stratified_split(
    dataset: &Dataset,
    stratify_dim: usize,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if stratify_dim >= dataset.schema().num_fairness() {
        return Err(FairError::InvalidConfig {
            reason: format!("stratification dimension {stratify_dim} out of range"),
        });
    }
    if !(test_fraction > 0.0 && test_fraction < 1.0) {
        return Err(FairError::InvalidConfig {
            reason: format!("test fraction must lie in (0, 1), got {test_fraction}"),
        });
    }
    if dataset.len() < 2 {
        return Err(FairError::InvalidConfig {
            reason: "stratified split requires at least two objects".into(),
        });
    }

    let mut members: Vec<usize> = Vec::new();
    let mut others: Vec<usize> = Vec::new();
    for (i, o) in dataset.iter().enumerate() {
        if o.in_group(stratify_dim) {
            members.push(i);
        } else {
            others.push(i);
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    members.shuffle(&mut rng);
    others.shuffle(&mut rng);

    let mut test_set = std::collections::HashSet::new();
    for group in [&members, &others] {
        let take = ((group.len() as f64 * test_fraction).round() as usize).min(group.len());
        test_set.extend(group.iter().take(take).copied());
    }

    let mut position = 0;
    let test = dataset.filter(|_| {
        let keep = test_set.contains(&position);
        position += 1;
        keep
    });
    let mut position = 0;
    let train = dataset.filter(|_| {
        let keep = !test_set.contains(&position);
        position += 1;
        keep
    });
    Ok((train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: u64, member_every: u64) -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![if i % member_every == 0 { 1.0 } else { 0.0 }],
                    None,
                )
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    #[test]
    fn holdout_partitions_the_dataset() {
        let d = dataset(1000, 5);
        let (train, test) = holdout_split(&d, 0.3, 1).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 300);
        // Disjoint by id.
        let train_ids: std::collections::HashSet<_> = train.iter().map(|o| o.id()).collect();
        assert!(test.iter().all(|o| !train_ids.contains(&o.id())));
    }

    #[test]
    fn holdout_is_reproducible_and_seed_dependent() {
        let d = dataset(200, 4);
        let (a_train, _) = holdout_split(&d, 0.25, 9).unwrap();
        let (b_train, _) = holdout_split(&d, 0.25, 9).unwrap();
        let (c_train, _) = holdout_split(&d, 0.25, 10).unwrap();
        let ids = |ds: &Dataset| ds.iter().map(|o| o.id()).collect::<Vec<_>>();
        assert_eq!(ids(&a_train), ids(&b_train));
        assert_ne!(ids(&a_train), ids(&c_train));
    }

    #[test]
    fn holdout_validates_inputs() {
        let d = dataset(100, 3);
        assert!(holdout_split(&d, 0.0, 1).is_err());
        assert!(holdout_split(&d, 1.0, 1).is_err());
        let tiny = dataset(1, 1);
        assert!(holdout_split(&tiny, 0.5, 1).is_err());
    }

    #[test]
    fn stratified_split_preserves_group_proportion() {
        let d = dataset(1000, 10); // 10% members
        let (train, test) = stratified_split(&d, 0, 0.3, 7).unwrap();
        assert_eq!(train.len() + test.len(), d.len());
        let train_rate = train.group_frequency(0);
        let test_rate = test.group_frequency(0);
        assert!((train_rate - 0.1).abs() < 0.02, "train rate {train_rate}");
        assert!((test_rate - 0.1).abs() < 0.02, "test rate {test_rate}");
    }

    #[test]
    fn stratified_split_validates_dimension() {
        let d = dataset(100, 4);
        assert!(stratified_split(&d, 7, 0.3, 1).is_err());
        assert!(stratified_split(&d, 0, 1.5, 1).is_err());
    }
}
