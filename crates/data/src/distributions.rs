//! Small seeded samplers used by the synthetic generators.
//!
//! Only `rand`'s uniform primitives are used; the normal distribution is
//! produced with the Box–Muller transform so no extra dependency is required.

use rand::Rng;

/// Draw one standard-normal variate using the Box–Muller transform.
#[must_use]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw a normal variate with the given mean and standard deviation.
///
/// # Panics
/// Panics if `std_dev` is negative or non-finite.
#[must_use]
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev.is_finite() && std_dev >= 0.0,
        "standard deviation must be non-negative"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draw a normal variate clamped to `[lo, hi]`.
///
/// # Panics
/// Panics if `lo > hi` or `std_dev` is invalid.
#[must_use]
pub fn clamped_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid clamp range [{lo}, {hi}]");
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
#[must_use]
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Pick an index from a discrete distribution given by (not necessarily
/// normalized) non-negative weights.
///
/// # Panics
/// Panics if `weights` is empty, contains a negative or non-finite weight, or
/// sums to zero.
#[must_use]
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(
        !weights.is_empty(),
        "categorical distribution requires at least one weight"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be non-negative and finite"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut target = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if target < *w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_roughly_zero_mean_and_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_respects_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 65.0, 15.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 65.0).abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 15.0).abs() < 0.3, "std {}", var.sqrt());
    }

    #[test]
    fn clamped_normal_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = clamped_normal(&mut rng, 50.0, 40.0, 0.0, 100.0);
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let hits = (0..n).filter(|_| bernoulli(&mut rng, 0.7)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.7).abs() < 0.01, "freq {freq}");
        // Degenerate probabilities.
        assert!(!bernoulli(&mut rng, 0.0));
        assert!(bernoulli(&mut rng, 1.0));
        assert!(bernoulli(&mut rng, 2.0), "out-of-range p clamps to 1");
    }

    #[test]
    fn categorical_matches_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [0.5, 0.3, 0.2];
        let n = 100_000;
        let mut counts = [0_usize; 3];
        for _ in 0..n {
            counts[categorical(&mut rng, &weights)] += 1;
        }
        for (c, w) in counts.iter().zip(&weights) {
            let freq = *c as f64 / n as f64;
            assert!((freq - w).abs() < 0.01, "freq {freq} vs weight {w}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va: Vec<f64> = (0..10).map(|_| normal(&mut a, 0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..10).map(|_| normal(&mut b, 0.0, 1.0)).collect();
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_dev_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = normal(&mut rng, 0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_categorical_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = categorical(&mut rng, &[]);
    }
}
