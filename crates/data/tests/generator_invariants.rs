//! Crate-level property tests for the synthetic dataset generators: the
//! published marginals must hold across seeds and cohort sizes, the generated
//! data must survive CSV round trips, and the splits must preserve structure.

use fair_core::prelude::*;
use fair_data::{
    holdout_split, stratified_split, CompasConfig, CompasGenerator, DatasetSummary, SchoolConfig,
    SchoolGenerator,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// School cohorts keep the published group frequencies for any seed.
    #[test]
    fn school_marginals_are_seed_invariant(seed in 0_u64..10_000) {
        let cohort = SchoolGenerator::new(SchoolConfig::small(12_000, seed)).generate();
        let d = cohort.dataset();
        prop_assert!((d.group_frequency(0) - 0.70).abs() < 0.04, "low income");
        prop_assert!((d.group_frequency(1) - 0.10).abs() < 0.03, "ell");
        prop_assert!((d.group_frequency(2) - 0.20).abs() < 0.03, "special ed");
        // ENI stays in [0, 1] and has non-trivial spread.
        let summary = DatasetSummary::compute(d).unwrap();
        prop_assert_eq!(summary.count, 12_000);
        prop_assert!(d.iter().all(|o| (0.0..=1.0).contains(&o.fairness()[3])));
    }

    /// The uncorrected 5% selection always under-represents every
    /// disadvantaged dimension, for any seed — the structural bias DCA exists
    /// to repair is not an artifact of one lucky seed.
    #[test]
    fn school_bias_direction_is_stable(seed in 0_u64..10_000) {
        let cohort = SchoolGenerator::new(SchoolConfig::small(12_000, seed)).generate();
        let view = cohort.dataset().full_view();
        let rubric = SchoolGenerator::rubric();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &rubric, &[0.0; 4]));
        let disparity = disparity_at_k(&view, &ranking, 0.05).unwrap();
        prop_assert!(disparity.iter().all(|v| *v < 0.0), "{disparity:?}");
        prop_assert!(norm(&disparity) > 0.15);
    }

    /// COMPAS cohorts keep the race mix, deciles in 1..=10, labels everywhere,
    /// and the over-flagging of Black defendants for any seed.
    #[test]
    fn compas_structure_is_seed_invariant(seed in 0_u64..10_000) {
        let dataset = CompasGenerator::new(CompasConfig::small(6_000, seed)).generate();
        prop_assert!(dataset.fully_labelled());
        prop_assert!((dataset.group_frequency(0) - 0.512).abs() < 0.03, "african american share");
        prop_assert!((dataset.group_frequency(1) - 0.340).abs() < 0.03, "caucasian share");
        for o in dataset.iter() {
            let decile = o.features()[0];
            prop_assert!((1.0..=10.0).contains(&decile) && decile.fract() == 0.0);
        }
        let view = dataset.full_view();
        let ranker = CompasGenerator::decile_ranker();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0; 6]));
        let disparity = disparity_at_k(&view, &ranking, 0.3).unwrap();
        prop_assert!(disparity[0] > 0.0, "african_american over-flagged: {disparity:?}");
        prop_assert!(disparity[1] < 0.0, "caucasian under-flagged: {disparity:?}");
    }

    /// Holdout and stratified splits partition the cohort and keep group
    /// shares, for any split fraction.
    #[test]
    fn splits_partition_and_preserve_shares(
        seed in 0_u64..1_000,
        test_fraction in 0.1_f64..0.5,
    ) {
        let dataset = SchoolGenerator::new(SchoolConfig::small(4_000, seed)).generate().into_dataset();
        let (train, test) = holdout_split(&dataset, test_fraction, seed).unwrap();
        prop_assert_eq!(train.len() + test.len(), dataset.len());
        let (strain, stest) = stratified_split(&dataset, 1, test_fraction, seed).unwrap();
        prop_assert_eq!(strain.len() + stest.len(), dataset.len());
        // The stratified split keeps the rare ELL share in both parts.
        let overall = dataset.group_frequency(1);
        prop_assert!((strain.group_frequency(1) - overall).abs() < 0.03);
        prop_assert!((stest.group_frequency(1) - overall).abs() < 0.04);
    }

    /// Generated cohorts survive a CSV round trip bit-for-bit on fairness
    /// attributes and labels.
    #[test]
    fn generated_data_round_trips_through_csv(seed in 0_u64..1_000) {
        let dataset = CompasGenerator::new(CompasConfig::small(300, seed)).generate();
        let text = fair_data::csv::to_csv_string(&dataset);
        let parsed = fair_data::csv::from_csv_string(&text).unwrap();
        prop_assert_eq!(parsed.len(), dataset.len());
        for (a, b) in parsed.iter().zip(dataset.iter()) {
            prop_assert_eq!(a.fairness(), b.fairness());
            prop_assert_eq!(a.label(), b.label());
        }
    }
}

/// The sample-size recommendation of Section IV-D reacts to both k and the
/// rarest-group frequency on generated data.
#[test]
fn recommended_sample_size_reflects_the_rarest_group() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(20_000, 3)).generate();
    let d = cohort.dataset();
    let small_k = DcaConfig::recommended_sample_size(d, 0.01).unwrap();
    let large_k = DcaConfig::recommended_sample_size(d, 0.5).unwrap();
    assert!(
        small_k > large_k,
        "smaller selections need bigger samples: {small_k} vs {large_k}"
    );
    // At large k the binding constraint is the ~10% ELL group: 30 / 0.1 ≈ 300.
    assert!(
        (250..=400).contains(&large_k),
        "rarest-group rule gives ≈300, got {large_k}"
    );
}

/// District extraction is a partition of the cohort with poverty gradients.
#[test]
fn district_poverty_gradient_is_monotone_on_average() {
    let cohort = SchoolGenerator::new(SchoolConfig::small(32_000, 9)).generate();
    let mut shares = Vec::new();
    for d in 0..fair_data::SCHOOL_DISTRICTS as u16 {
        shares.push(cohort.district(d).group_frequency(0));
    }
    // Compare the average of the poorest and richest quartiles of districts.
    let q = shares.len() / 4;
    let low: f64 = shares[..q].iter().sum::<f64>() / q as f64;
    let high: f64 = shares[shares.len() - q..].iter().sum::<f64>() / q as f64;
    assert!(
        high > low + 0.15,
        "district poverty gradient: {low:.2} vs {high:.2}"
    );
}
