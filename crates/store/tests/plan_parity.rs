//! Cross-crate property tests: the one-sweep [`MetricPlan`] evaluated over a
//! paged [`ShardStore`] is bit-for-bit identical to the same plan over the
//! in-memory [`ShardedDataset`], to the individual sharded kernels, and to
//! the serial reference — across shard sizes (1, 7, 64k), cache budgets
//! (zero, forced-eviction quarter, unbounded), and readahead depths (off,
//! 1, 2).
//!
//! This is the contract the audit service relies on: a multi-metric request
//! answered by one paged sweep must return exactly the numbers five separate
//! sweeps — or a flat serial evaluation — would have returned.

use fair_core::metrics::sharded::{self as shmetrics, MetricKind, MetricPlan, MetricValue};
use fair_core::metrics::LogDiscountConfig;
use fair_core::prelude::*;
use fair_store::{write_source, ShardStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> SchemaRef {
    Schema::from_names(&["a", "b"], &["g", "h"], &[]).unwrap()
}

/// A fully labelled cohort (the FPR metric requires ground truth on every
/// row) with mixed group membership and score spread. Fairness values are
/// dyadic (multiples of 1/256) so population-centroid sums are exact: the
/// serial reference accumulates rows left to right while the sharded engine
/// combines per-shard partial sums, and only exact addition makes those two
/// association orders bit-identical. Scores stay fully random — they are
/// compared and ranked, never re-associated.
fn cohort(n: usize, seed: u64) -> Vec<DataObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n as u64)
        .map(|i| {
            let member = rng.gen::<f64>() < 0.4;
            DataObject::new_unchecked(
                i,
                vec![rng.gen::<f64>() * 10.0, rng.gen::<f64>() - 0.5],
                vec![
                    f64::from(u8::from(member)),
                    f64::from(rng.gen::<u8>()) / 256.0,
                ],
                Some(rng.gen::<f64>() < 0.5),
            )
        })
        .collect()
}

fn bits_of(value: &MetricValue) -> Vec<u64> {
    match value {
        MetricValue::Scalar(v) => vec![v.to_bits()],
        MetricValue::Vector(v) => v.iter().map(|x| x.to_bits()).collect(),
    }
}

fn vec_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn temp_store_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fair_store_plan_parity");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{}.fss", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn one_sweep_plan_matches_kernels_and_serial_everywhere(
        n in 40_usize..300,
        shard_size_idx in 0_usize..3,
        k in 0.05_f64..0.6,
        seed in 0_u64..1000,
        budget_mode in 0_usize..3,
        prefetch in 0_usize..3,
    ) {
        let shard_size = [1, 7, 64 * 1024][shard_size_idx];
        let objects = cohort(n, seed);
        let flat = Dataset::new(schema(), objects.clone()).unwrap();
        let sharded =
            ShardedDataset::from_objects(schema(), objects, shard_size).unwrap();

        let path = temp_store_path(&format!("parity_{shard_size}_{budget_mode}_{prefetch}"));
        write_source(&sharded, &path).unwrap();
        let total_bytes = n * (8 * (2 + 2) + 8 + 1);
        let budget = match budget_mode {
            0 => 0,                        // evict everything immediately
            1 => (total_bytes / 4).max(1), // forced eviction mid-sweep
            _ => usize::MAX,
        };
        let store = ShardStore::open_with_options(&path, budget, prefetch).unwrap();

        let ranker = WeightedSumRanker::new(vec![1.0, 0.7]).unwrap();
        let bonus = [0.3, 0.1];
        let plan = MetricPlan::new(&MetricKind::ALL, k);

        // One sweep over the paged store vs one sweep over the in-memory
        // sharded cohort: the retention-based and gather-based measurement
        // strategies must agree bit-for-bit.
        let from_store = plan.evaluate(&store, &ranker, &bonus).unwrap();
        let from_memory = plan.evaluate(&sharded, &ranker, &bonus).unwrap();
        for ((sk, sv), (mk, mv)) in
            from_store.values().iter().zip(from_memory.values())
        {
            prop_assert_eq!(sk, mk);
            prop_assert_eq!(bits_of(sv), bits_of(mv), "{:?}", sk);
        }

        // The plan vs the individual sharded kernels (each itself pinned
        // bit-for-bit against the serial metrics in fair-core's tests).
        let disparity =
            shmetrics::disparity_at_k(&sharded, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(
            bits_of(from_store.get(MetricKind::Disparity).unwrap()),
            vec_bits(&disparity)
        );
        let ndcg = shmetrics::ndcg_at_k(&sharded, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(
            bits_of(from_store.get(MetricKind::Ndcg).unwrap()),
            vec![ndcg.to_bits()]
        );
        let log = shmetrics::log_discounted_disparity(
            &sharded,
            &ranker,
            &bonus,
            &LogDiscountConfig::default(),
        )
        .unwrap();
        prop_assert_eq!(
            bits_of(from_store.get(MetricKind::LogDiscounted).unwrap()),
            vec_bits(&log)
        );
        let fpr = shmetrics::fpr_difference_at_k(&sharded, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(
            bits_of(from_store.get(MetricKind::FprDifference).unwrap()),
            vec_bits(&fpr)
        );
        let di =
            shmetrics::scaled_disparate_impact_at_k(&sharded, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(
            bits_of(from_store.get(MetricKind::DisparateImpact).unwrap()),
            vec_bits(&di)
        );

        // And against the flat serial reference for the headline metric.
        let serial = shmetrics::serial_disparity_at_k(&flat, &ranker, &bonus, k).unwrap();
        prop_assert_eq!(
            bits_of(from_store.get(MetricKind::Disparity).unwrap()),
            vec_bits(&serial)
        );

        // Single-metric plans answer exactly like the full plan's entries —
        // request order and multiplicity never change the numbers.
        for kind in MetricKind::ALL {
            let single = MetricPlan::new(&[kind, kind], k)
                .evaluate(&store, &ranker, &bonus)
                .unwrap();
            prop_assert_eq!(single.values().len(), 1, "duplicates collapse");
            prop_assert_eq!(
                bits_of(single.get(kind).unwrap()),
                bits_of(from_store.get(kind).unwrap()),
                "{:?}",
                kind
            );
        }

        drop(store);
        std::fs::remove_file(path).ok();
    }
}
