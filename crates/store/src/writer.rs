//! Streaming FSS1 writer: shards are appended to disk as they are built, so
//! the cohort is never materialized — peak memory is one shard.

use crate::error::{Result, StoreError};
use crate::format::{
    crc32, encode_directory, encode_schema, fnv1a64, put_u32, put_u64, Header, ShardEntry,
    HEADER_LEN,
};
use fair_core::{DataObject, Dataset, SchemaRef};
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::Path;

/// Summary of a finished store file, returned by [`StoreWriter::finalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSummary {
    /// Total rows written.
    pub rows: u64,
    /// Number of shards written.
    pub shards: u64,
    /// Final file length in bytes.
    pub file_bytes: u64,
}

/// Streaming writer for an FSS1 shard file.
///
/// Rows arrive either one at a time ([`StoreWriter::push`] buffers them into
/// shard-sized blocks) or as whole shards ([`StoreWriter::append_shard`]);
/// each full shard is encoded, checksummed, and written immediately.
/// [`StoreWriter::finalize`] flushes a trailing short shard, writes the shard
/// directory, and patches the header — until then the file is deliberately
/// unreadable (the header carries a zero directory offset), so a crashed
/// writer can never masquerade as a valid store.
pub struct StoreWriter {
    file: BufWriter<File>,
    schema: SchemaRef,
    shard_size: usize,
    /// Directory entries of the shards written so far.
    entries: Vec<ShardEntry>,
    /// Current write offset (bytes written since the start of the file).
    offset: u64,
    /// Row buffer for the push path; always holds `< shard_size` rows after
    /// a push returns.
    buffer: Dataset,
    /// Set once a short (non-full) shard has been appended: the file layout
    /// allows only the *final* shard to be short, so the writer seals.
    sealed: bool,
    /// Reusable block-encoding scratch.
    scratch: Vec<u8>,
}

impl std::fmt::Debug for StoreWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreWriter")
            .field("shard_size", &self.shard_size)
            .field("shards_written", &self.entries.len())
            .field("offset", &self.offset)
            .finish()
    }
}

impl StoreWriter {
    /// Create (truncate) the file at `path` and write the provisional header
    /// plus the schema block.
    ///
    /// # Errors
    /// Returns an error on a zero `shard_size` or on I/O failure.
    pub fn create(path: impl AsRef<Path>, schema: SchemaRef, shard_size: usize) -> Result<Self> {
        if shard_size == 0 {
            return Err(StoreError::InvalidConfig {
                reason: "shard size must be positive".into(),
            });
        }
        let mut file = BufWriter::new(File::create(path)?);
        let schema_bytes = encode_schema(&schema);
        // Provisional header: directory offset 0 marks the file unfinalized.
        let header = Header {
            schema_hash: fnv1a64(&schema_bytes),
            shard_size: shard_size as u64,
            total_rows: 0,
            num_shards: 0,
            directory_offset: 0,
        };
        file.write_all(&header.encode())?;
        let mut block = Vec::with_capacity(schema_bytes.len() + 8);
        put_u32(
            &mut block,
            u32::try_from(schema_bytes.len()).expect("small schema"),
        );
        block.extend_from_slice(&schema_bytes);
        put_u32(&mut block, crc32(&schema_bytes));
        file.write_all(&block)?;
        let offset = (HEADER_LEN + block.len()) as u64;
        let buffer = Dataset::with_capacity(schema.clone(), shard_size.min(1 << 20));
        Ok(Self {
            file,
            schema,
            shard_size,
            entries: Vec::new(),
            offset,
            buffer,
            sealed: false,
            scratch: Vec::new(),
        })
    }

    /// The schema every appended row/shard must match.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Rows accepted so far (written shards plus the open buffer).
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.entries.iter().map(|e| e.rows).sum::<u64>() + self.buffer.len() as u64
    }

    /// Append one row; a full buffer is flushed to disk as a shard.
    ///
    /// # Errors
    /// Returns an error if the object does not match the schema, if the file
    /// is sealed by an earlier short shard, or on I/O failure.
    pub fn push(&mut self, object: DataObject) -> Result<()> {
        if self.sealed {
            return Err(StoreError::InvalidConfig {
                reason: "store already holds a short final shard; no rows may follow".into(),
            });
        }
        self.buffer.push(object)?;
        if self.buffer.len() == self.shard_size {
            let shard = std::mem::replace(
                &mut self.buffer,
                Dataset::with_capacity(self.schema.clone(), self.shard_size.min(1 << 20)),
            );
            self.write_block(&shard)?;
        }
        Ok(())
    }

    /// Append a pre-built shard. Every shard but the last must hold exactly
    /// `shard_size` rows; appending a short shard seals the file.
    ///
    /// # Errors
    /// Returns an error on schema mismatch, an empty or oversized shard, an
    /// append after sealing, interleaving with buffered [`StoreWriter::push`]
    /// rows, or I/O failure.
    pub fn append_shard(&mut self, shard: &Dataset) -> Result<()> {
        if self.sealed {
            return Err(StoreError::InvalidConfig {
                reason: "store already holds a short final shard; no shards may follow".into(),
            });
        }
        if !self.buffer.is_empty() {
            return Err(StoreError::InvalidConfig {
                reason: "cannot append whole shards while pushed rows are buffered".into(),
            });
        }
        if **shard.schema() != *self.schema {
            return Err(StoreError::InvalidConfig {
                reason: "shard schema differs from the store schema".into(),
            });
        }
        if shard.is_empty() {
            return Err(StoreError::InvalidConfig {
                reason: "cannot append an empty shard".into(),
            });
        }
        if shard.len() > self.shard_size {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "shard holds {} rows, more than the shard size {}",
                    shard.len(),
                    self.shard_size
                ),
            });
        }
        if shard.len() < self.shard_size {
            self.sealed = true;
        }
        self.write_block(shard)
    }

    /// Encode `shard` into the scratch buffer and write it at the current
    /// offset, recording the directory entry.
    fn write_block(&mut self, shard: &Dataset) -> Result<()> {
        let rows = shard.len();
        let out = &mut self.scratch;
        out.clear();
        put_u64(out, rows as u64);
        // ids
        let start = out.len();
        for id in shard.ids() {
            put_u64(out, id.0);
        }
        let crc = crc32(&out[start..]);
        put_u32(out, crc);
        // features
        let start = out.len();
        for v in shard.features_matrix() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        put_u32(out, crc);
        // fairness
        let start = out.len();
        for v in shard.fairness_matrix() {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let crc = crc32(&out[start..]);
        put_u32(out, crc);
        // labels
        let start = out.len();
        for label in shard.labels() {
            out.push(match label {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        let crc = crc32(&out[start..]);
        put_u32(out, crc);

        self.file.write_all(out)?;
        self.entries.push(ShardEntry {
            offset: self.offset,
            rows: rows as u64,
        });
        self.offset += out.len() as u64;
        Ok(())
    }

    /// Flush any buffered rows as a (possibly short) final shard, write the
    /// shard directory, patch the header with the final counts and the
    /// directory offset, and sync the file.
    ///
    /// # Errors
    /// Returns an error on I/O failure.
    pub fn finalize(mut self) -> Result<StoreSummary> {
        if !self.buffer.is_empty() {
            let shard = std::mem::replace(&mut self.buffer, Dataset::empty(self.schema.clone()));
            self.write_block(&shard)?;
        }
        let directory_offset = self.offset;
        let directory = encode_directory(&self.entries);
        self.file.write_all(&directory)?;
        let file_bytes = directory_offset + directory.len() as u64;

        let total_rows: u64 = self.entries.iter().map(|e| e.rows).sum();
        let header = Header {
            schema_hash: fnv1a64(&encode_schema(&self.schema)),
            shard_size: self.shard_size as u64,
            total_rows,
            num_shards: self.entries.len() as u64,
            directory_offset,
        };
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header.encode())?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        Ok(StoreSummary {
            rows: total_rows,
            shards: self.entries.len() as u64,
            file_bytes,
        })
    }
}

/// Write any [`fair_core::ShardSource`] to a store file shard by shard — the
/// converter behind `ShardedDataset → disk` (and store-to-store copies).
/// Peak memory is one shard.
///
/// # Errors
/// Returns an error on I/O failure or an empty source shard.
pub fn write_source<S>(source: &S, path: impl AsRef<Path>) -> Result<StoreSummary>
where
    S: fair_core::ShardSource + ?Sized,
{
    let mut writer = StoreWriter::create(path, source.schema().clone(), source.shard_size())?;
    for i in 0..source.num_shards() {
        source.with_shard(i, |shard| writer.append_shard(shard.data()))?;
    }
    writer.finalize()
}
