//! [`ShardStore`]: the paging reader over an FSS1 file, with a byte-budgeted
//! LRU shard cache.
//!
//! Opening a store validates the header, the embedded schema (checksum *and*
//! schema hash), and the shard directory (checksum, offsets, block bounds,
//! row counts) — so after a successful open, the only way a page-in can fail
//! is genuine data corruption, which the per-block CRCs catch before any byte
//! is interpreted. Shards decode on demand through the cache:
//!
//! * **byte budget** — `FAIR_CACHE_BYTES` (default 256 MiB) bounds the
//!   resident column bytes; the least-recently-used unpinned shard is evicted
//!   *before* a new one is admitted, so the resident set never outgrows the
//!   budget beyond the currently pinned working set;
//! * **pin while borrowed** — [`fair_core::ShardSource::with_shard`] pins the
//!   shard for the duration of the kernel closure; a pinned shard is never
//!   evicted, so a parallel worker can never have its block freed mid-kernel;
//! * **readahead** — the metric sweeps walk shards in ascending order, so a
//!   background decode thread ([`default_prefetch`], `FAIR_PREFETCH`)
//!   prefetches the next shards' column blocks while kernels consume the
//!   current one. Prefetched shards are admitted unpinned and strictly
//!   within the budget (a prefetch never displaces the pinned working set or
//!   overflows the budget), an on-demand access waits for an in-flight
//!   prefetch decode instead of decoding the block a second time, and the
//!   `prefetch_hits` / `prefetch_wasted` counters make the readahead's value
//!   observable;
//! * **observability** — hit/miss/eviction counters and a peak-resident-bytes
//!   high-water mark ([`ShardStore::cache_stats`]) make the out-of-core
//!   claim testable: evaluating a cohort larger than the budget must leave
//!   `peak_bytes <= budget`. The counters are homed in the process-wide
//!   [`fair_core::obs`] registry (`fair_store_*` series, summed across every
//!   open store, scraped at `GET /metrics`); [`CacheStats`] stays as the
//!   exact per-store view.

use crate::error::{Result, StoreError};
use crate::format::{
    crc32, decode_directory, decode_schema, fnv1a64, shard_block_len, Header, ShardEntry,
    DIR_ENTRY_LEN, HEADER_LEN,
};
use fair_core::{obs, Dataset, ObjectId, SchemaRef, ShardSource, ShardView};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::File;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};

/// Default cache budget (bytes) when `FAIR_CACHE_BYTES` is not set.
pub const DEFAULT_CACHE_BYTES: usize = 256 * 1024 * 1024;

/// Default readahead depth (shards) when `FAIR_PREFETCH` is not set: one
/// shard of pipeline headroom beyond the one being decoded.
pub const DEFAULT_PREFETCH: usize = 2;

/// The readahead depth: the `FAIR_PREFETCH` environment variable when set to
/// an unsigned integer (`0` disables the background decode thread entirely),
/// [`DEFAULT_PREFETCH`] otherwise.
#[must_use]
pub fn default_prefetch() -> usize {
    std::env::var("FAIR_PREFETCH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_PREFETCH)
}

/// The shard-cache byte budget: the `FAIR_CACHE_BYTES` environment variable
/// when set to an unsigned integer (`0` disables retention entirely — every
/// unpinned shard is evicted immediately, forcing a re-page on each access,
/// which CI uses to hammer the eviction path), [`DEFAULT_CACHE_BYTES`]
/// otherwise.
#[must_use]
pub fn default_cache_bytes() -> usize {
    std::env::var("FAIR_CACHE_BYTES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_CACHE_BYTES)
}

/// Column bytes of a decoded shard: the ids, feature, fairness, and label
/// columns (the payload the cache budget accounts; `Vec` headers and the
/// `Arc` are excluded).
#[must_use]
pub fn column_bytes(data: &Dataset) -> usize {
    let per_row = 8 * (data.schema().num_features() + data.schema().num_fairness()) + 8 + 1;
    data.len() * per_row
}

/// A point-in-time snapshot of the shard cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that had to page the shard in from disk.
    pub misses: u64,
    /// Shards evicted to stay within the byte budget.
    pub evictions: u64,
    /// Column bytes currently resident.
    pub resident_bytes: usize,
    /// High-water mark of [`CacheStats::resident_bytes`] over the store's
    /// lifetime — the number the out-of-core acceptance test pins under the
    /// budget.
    pub peak_bytes: usize,
    /// Shards currently pinned by in-flight kernels.
    pub pinned_shards: usize,
    /// The configured byte budget.
    pub budget_bytes: usize,
    /// Cache hits that were served from a shard the readahead thread decoded
    /// before any kernel asked for it.
    pub prefetch_hits: u64,
    /// Prefetched shards that were decoded but never used: either evicted
    /// untouched, or dropped at admission because the budget was consumed by
    /// the pinned working set.
    pub prefetch_wasted: u64,
    /// Background decodes that panicked. The panic is contained in the
    /// readahead thread and surfaced to the next reader of that shard as a
    /// structured error instead of a hang.
    pub decode_poisoned: u64,
}

struct CacheEntry {
    data: Arc<Dataset>,
    bytes: usize,
    pins: usize,
    last_used: u64,
    /// Admitted by the readahead thread and not yet touched by a kernel.
    prefetched: bool,
}

/// Handles into the process-wide [`fair_core::obs`] registry, resolved once
/// per store open. Every open store shares the same `fair_store_*` series
/// (the registry deduplicates by name), so `/metrics` reports process totals
/// while [`CacheStats`] keeps the exact per-store view.
struct CacheObs {
    hits: Arc<obs::Counter>,
    misses: Arc<obs::Counter>,
    evictions: Arc<obs::Counter>,
    prefetch_hits: Arc<obs::Counter>,
    prefetch_wasted: Arc<obs::Counter>,
    decode_poisoned: Arc<obs::Counter>,
    resident_bytes: Arc<obs::Gauge>,
}

impl Default for CacheObs {
    fn default() -> Self {
        Self {
            hits: obs::counter("fair_store_cache_hits_total", &[]),
            misses: obs::counter("fair_store_cache_misses_total", &[]),
            evictions: obs::counter("fair_store_cache_evictions_total", &[]),
            prefetch_hits: obs::counter("fair_store_prefetch_hits_total", &[]),
            prefetch_wasted: obs::counter("fair_store_prefetch_wasted_total", &[]),
            decode_poisoned: obs::counter("fair_store_decode_poisoned_total", &[]),
            resident_bytes: obs::gauge("fair_store_resident_bytes", &[]),
        }
    }
}

#[derive(Default)]
struct CacheState {
    obs: CacheObs,
    entries: HashMap<usize, CacheEntry>,
    tick: u64,
    resident: usize,
    peak: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    prefetch_hits: u64,
    prefetch_wasted: u64,
    /// Shard indices queued for the readahead thread, in request order.
    queue: VecDeque<usize>,
    /// Shards currently being decoded (by the readahead thread or an
    /// on-demand pin). An access to an in-flight shard waits on the condvar
    /// instead of decoding the same block a second time.
    inflight: HashSet<usize>,
    /// Panic messages of background decodes that blew up, keyed by shard.
    /// The next reader of the shard consumes the entry as a structured
    /// error; a retry after that decodes on demand as usual.
    poisoned: HashMap<usize, String>,
    /// Running count of contained background-decode panics.
    decode_poisoned: u64,
    /// Set on drop to shut the readahead thread down.
    stop: bool,
    /// The most recently pinned shard index. The readahead thread drops
    /// queued work that is no longer within the prefetch window of this
    /// position — decoding a shard the sweep has already passed (or that a
    /// restarted sweep left behind) would only evict useful residents.
    last_access: usize,
}

/// Positional reads shared by concurrent page-ins.
struct StoreFile {
    file: File,
    #[cfg(not(unix))]
    lock: Mutex<()>,
}

impl StoreFile {
    fn new(file: File) -> Self {
        Self {
            file,
            #[cfg(not(unix))]
            lock: Mutex::new(()),
        }
    }

    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        #[cfg(unix)]
        {
            std::os::unix::fs::FileExt::read_exact_at(&self.file, buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let _guard = self.lock.lock().expect("file lock poisoned");
            let mut f = &self.file;
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// Everything the paging and readahead machinery needs, shared between the
/// store handle and the background prefetch thread.
struct StoreInner {
    file: StoreFile,
    /// The opened path, used as the fault-injection context so a `FAIR_FAULT`
    /// spec can target one store (and one shard, via `#shardN`) by substring.
    path: String,
    schema: SchemaRef,
    shard_size: usize,
    total_rows: usize,
    directory: Vec<ShardEntry>,
    budget: usize,
    /// Readahead depth in shards; `0` means no background thread exists.
    prefetch: usize,
    cache: Mutex<CacheState>,
    /// Wakes pins waiting for an in-flight decode of the shard they need.
    cond: Condvar,
    /// Wakes the readahead thread when new work lands on the queue. A
    /// separate condvar keeps on-demand misses from waking the (usually
    /// idle) prefetcher — a pointless context switch per page-in otherwise.
    work: Condvar,
}

/// An open FSS1 shard file: validated layout, on-demand shard paging, the
/// LRU cache, and optional background readahead. Implements [`ShardSource`],
/// so every sharded metric, ranking kernel, and DCA driver evaluates
/// straight off the disk file with memory bounded by the cache budget.
pub struct ShardStore {
    inner: Arc<StoreInner>,
    prefetcher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardStore")
            .field("rows", &self.inner.total_rows)
            .field("shards", &self.inner.directory.len())
            .field("shard_size", &self.inner.shard_size)
            .field("budget_bytes", &self.inner.budget)
            .field("prefetch", &self.inner.prefetch)
            .finish()
    }
}

impl Drop for ShardStore {
    fn drop(&mut self) {
        if let Some(handle) = self.prefetcher.take() {
            {
                let mut st = match self.inner.cache.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                st.stop = true;
            }
            self.inner.cond.notify_all();
            self.inner.work.notify_all();
            let _ = handle.join();
        }
        // The registry outlives the store: return this store's resident
        // bytes so the process-wide gauge keeps summing only open stores.
        let st = match self.inner.cache.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        st.obs
            .resident_bytes
            .sub(i64::try_from(st.resident).unwrap_or(i64::MAX));
    }
}

impl ShardStore {
    /// Open a store with the environment-resolved cache budget
    /// ([`default_cache_bytes`]) and readahead depth ([`default_prefetch`]).
    ///
    /// # Errors
    /// Returns a structured error for any I/O failure or any header, schema,
    /// or directory corruption — truncated files included. Never panics.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_options(path, default_cache_bytes(), default_prefetch())
    }

    /// Open a store with an explicit cache byte budget and the
    /// environment-resolved readahead depth ([`default_prefetch`]).
    ///
    /// # Errors
    /// Returns a structured error for any I/O failure or any header, schema,
    /// or directory corruption — truncated files included. Never panics.
    pub fn open_with_budget(path: impl AsRef<Path>, budget: usize) -> Result<Self> {
        Self::open_with_options(path, budget, default_prefetch())
    }

    /// Open a store with an explicit cache byte budget and readahead depth
    /// (`prefetch` shards decoded ahead of each access; `0` disables the
    /// background thread).
    ///
    /// # Errors
    /// Returns a structured error for any I/O failure or any header, schema,
    /// or directory corruption — truncated files included. Never panics.
    pub fn open_with_options(
        path: impl AsRef<Path>,
        budget: usize,
        prefetch: usize,
    ) -> Result<Self> {
        let path = path.as_ref();
        // Pre-screen the two classic mis-uses *before* any header read, so
        // they surface as clear structured errors instead of an
        // `IsADirectory` I/O error or a baffling "truncated header"
        // corruption report.
        let meta = std::fs::metadata(path)?;
        if meta.is_dir() {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "`{}` is a directory, not an FSS1 shard file",
                    path.display()
                ),
            });
        }
        if meta.len() == 0 {
            return Err(StoreError::Corrupt {
                offset: 0,
                what: "file header".into(),
                reason: format!(
                    "`{}` is empty (0 bytes): not an FSS1 shard file",
                    path.display()
                ),
            });
        }
        let file = StoreFile::new(File::open(path)?);
        let file_len = file.file.metadata()?.len();

        let header_bytes = read_block(&file, 0, HEADER_LEN, "file header")?;
        let header = Header::decode(&header_bytes)?;
        if header.directory_offset == 0 {
            return Err(StoreError::Corrupt {
                offset: 40,
                what: "file header".into(),
                reason: "zero directory offset: the writer never finalized this file".into(),
            });
        }
        if header.shard_size == 0 {
            return Err(StoreError::Corrupt {
                offset: 16,
                what: "file header".into(),
                reason: "zero shard size".into(),
            });
        }
        let shard_size = usize::try_from(header.shard_size).map_err(|_| StoreError::Corrupt {
            offset: 16,
            what: "file header".into(),
            reason: "shard size exceeds the address space".into(),
        })?;
        let total_rows = usize::try_from(header.total_rows).map_err(|_| StoreError::Corrupt {
            offset: 24,
            what: "file header".into(),
            reason: "row count exceeds the address space".into(),
        })?;
        // Every stored row occupies at least 9 bytes (id + label) in its
        // block, so a row count beyond the file length is a crafted or
        // corrupt header — reject it before any size arithmetic.
        if header.total_rows > file_len {
            return Err(StoreError::Corrupt {
                offset: 24,
                what: "file header".into(),
                reason: format!(
                    "{} rows cannot fit a {}-byte file",
                    header.total_rows, file_len
                ),
            });
        }
        let expected_shards = total_rows.div_ceil(shard_size);
        if header.num_shards != expected_shards as u64 {
            return Err(StoreError::Corrupt {
                offset: 32,
                what: "file header".into(),
                reason: format!(
                    "{} shards recorded, but {} rows at shard size {} need {}",
                    header.num_shards, total_rows, shard_size, expected_shards
                ),
            });
        }
        if header.directory_offset > file_len {
            return Err(StoreError::Corrupt {
                offset: 40,
                what: "file header".into(),
                reason: format!(
                    "directory offset {} beyond the file end {}",
                    header.directory_offset, file_len
                ),
            });
        }

        // Schema block.
        let len_bytes = read_block(&file, HEADER_LEN as u64, 4, "schema block")?;
        let schema_len = u32::from_le_bytes(len_bytes[..4].try_into().expect("4")) as usize;
        if (HEADER_LEN + 8 + schema_len) as u64 > file_len {
            return Err(StoreError::Corrupt {
                offset: HEADER_LEN as u64,
                what: "schema block".into(),
                reason: format!("length {schema_len} runs past the file end"),
            });
        }
        let schema_bytes = read_block(&file, (HEADER_LEN + 4) as u64, schema_len, "schema block")?;
        let crc_bytes = read_block(
            &file,
            (HEADER_LEN + 4 + schema_len) as u64,
            4,
            "schema block",
        )?;
        let stored_crc = u32::from_le_bytes(crc_bytes[..4].try_into().expect("4"));
        if stored_crc != crc32(&schema_bytes) {
            return Err(StoreError::Corrupt {
                offset: (HEADER_LEN + 4 + schema_len) as u64,
                what: "schema block".into(),
                reason: "checksum mismatch".into(),
            });
        }
        if fnv1a64(&schema_bytes) != header.schema_hash {
            return Err(StoreError::Corrupt {
                offset: 8,
                what: "file header".into(),
                reason: "schema hash does not match the schema block".into(),
            });
        }
        let schema = decode_schema(&schema_bytes, (HEADER_LEN + 4) as u64)?;

        // Shard directory. All arithmetic is checked and bounded by the file
        // length *before* any allocation, so a crafted header with a huge
        // row count is a structured error, not an overflow or OOM panic.
        let num_shards = expected_shards;
        let dir_len = num_shards
            .checked_mul(DIR_ENTRY_LEN)
            .and_then(|v| v.checked_add(4))
            .ok_or_else(|| StoreError::Corrupt {
                offset: 32,
                what: "file header".into(),
                reason: format!("{num_shards} shards overflow the directory size"),
            })?;
        let dir_end = (dir_len as u64).checked_add(header.directory_offset);
        if dir_end.is_none() || dir_end.expect("checked") > file_len {
            return Err(StoreError::Corrupt {
                offset: header.directory_offset,
                what: "shard directory".into(),
                reason: format!(
                    "truncated: needs {} bytes, file ends {} bytes in",
                    dir_len,
                    file_len - header.directory_offset
                ),
            });
        }
        let dir_bytes = read_block(&file, header.directory_offset, dir_len, "shard directory")?;
        let directory = decode_directory(&dir_bytes, num_shards, header.directory_offset)?;

        // Entry-by-entry layout validation: offsets in range, blocks inside
        // the data region, row counts matching the fixed-size layout.
        let data_start = (HEADER_LEN + 8 + schema_len) as u64;
        for (i, entry) in directory.iter().enumerate() {
            let expected_rows = if i + 1 == num_shards {
                (total_rows - i * shard_size) as u64
            } else {
                shard_size as u64
            };
            if entry.rows != expected_rows {
                return Err(StoreError::Corrupt {
                    offset: header.directory_offset + (i * DIR_ENTRY_LEN) as u64,
                    what: format!("shard {i} directory entry"),
                    reason: format!(
                        "{} rows recorded, layout requires {expected_rows}",
                        entry.rows
                    ),
                });
            }
            let block_len =
                shard_block_len(entry.rows, schema.num_features(), schema.num_fairness());
            if entry.offset < data_start || entry.offset + block_len > header.directory_offset {
                return Err(StoreError::Corrupt {
                    offset: header.directory_offset + (i * DIR_ENTRY_LEN) as u64,
                    what: format!("shard {i} directory entry"),
                    reason: format!(
                        "block [{}, {}) outside the data region [{}, {})",
                        entry.offset,
                        entry.offset + block_len,
                        data_start,
                        header.directory_offset
                    ),
                });
            }
        }

        let inner = Arc::new(StoreInner {
            file,
            path: path.display().to_string(),
            schema,
            shard_size,
            total_rows,
            directory,
            budget,
            prefetch,
            cache: Mutex::new(CacheState::default()),
            cond: Condvar::new(),
            work: Condvar::new(),
        });
        // A single-shard (or empty) store has nothing to read ahead of.
        let prefetcher = if prefetch > 0 && inner.directory.len() > 1 {
            let worker = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("fair-store-prefetch".into())
                    .spawn(move || worker.prefetch_loop())?,
            )
        } else {
            None
        };
        Ok(Self { inner, prefetcher })
    }

    /// The configured cache byte budget.
    #[must_use]
    pub fn cache_budget(&self) -> usize {
        self.inner.budget
    }

    /// The configured readahead depth in shards (`0` = disabled).
    #[must_use]
    pub fn prefetch_depth(&self) -> usize {
        self.inner.prefetch
    }

    /// Snapshot of the cache counters.
    ///
    /// # Panics
    /// Panics if the cache lock is poisoned (a kernel panicked mid-access).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let st = self.inner.cache.lock().expect("shard cache poisoned");
        CacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            resident_bytes: st.resident,
            peak_bytes: st.peak,
            pinned_shards: st.entries.values().filter(|e| e.pins > 0).count(),
            budget_bytes: self.inner.budget,
            prefetch_hits: st.prefetch_hits,
            prefetch_wasted: st.prefetch_wasted,
            decode_poisoned: st.decode_poisoned,
        }
    }

    /// Read shard `index` through the cache, returning an owning handle.
    /// The cache itself may drop its reference afterwards (the handle keeps
    /// the block alive regardless).
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidConfig`] for an out-of-range index, and a
    /// structured corruption or I/O error when the block fails its checksums.
    pub fn read_shard(&self, index: usize) -> Result<Arc<Dataset>> {
        if index >= self.inner.directory.len() {
            return Err(StoreError::InvalidConfig {
                reason: format!(
                    "shard {index} out of range ({} shards)",
                    self.inner.directory.len()
                ),
            });
        }
        let data = self.inner.pin(index)?;
        self.inner.unpin(index);
        Ok(data)
    }

    /// Decode every shard front to back, verifying all checksums, without
    /// retaining anything in the cache — a full-file integrity scan.
    ///
    /// # Errors
    /// Returns the first corruption or I/O error encountered.
    pub fn verify(&self) -> Result<()> {
        for i in 0..self.inner.directory.len() {
            self.inner.load_shard(i)?;
        }
        Ok(())
    }
}

impl StoreInner {
    /// Decode shard `index` straight from disk (no cache interaction).
    fn load_shard(&self, index: usize) -> Result<Dataset> {
        // Attribute this page-in to the requesting job, when one is profiled
        // on this thread (the job thread inline, or a pool worker that
        // `parallel_map` re-installed the handle on): the whole load is
        // `decode` self-time, with the raw disk read carved out below as a
        // nested `page_in` scope. The readahead thread carries no profile,
        // so background decodes attribute to nobody — only time a job
        // genuinely waited for is charged to it.
        let _decode = fair_core::obs::profile::scope(fair_core::obs::Phase::Decode);
        // Fault point "decode", context "<path>#shardN": `panic` aborts the
        // decode mid-flight (exercising the containment below), `delay`
        // stalls it; the connection-shaped modes have no meaning here and are
        // ignored.
        match fair_core::fault::check("decode", &format!("{}#shard{}", self.path, index)) {
            Some(fair_core::FaultMode::Panic) => {
                panic!("injected decode fault: shard {index} of {}", self.path)
            }
            Some(fair_core::FaultMode::Delay(d)) => std::thread::sleep(d),
            _ => {}
        }
        let entry = self.directory[index];
        let rows = usize::try_from(entry.rows).expect("rows fit usize (validated at open)");
        let nf = self.schema.num_features();
        let na = self.schema.num_fairness();
        let block_len = shard_block_len(entry.rows, nf, na);
        let bytes = {
            let _io = fair_core::obs::profile::scope(fair_core::obs::Phase::PageIn);
            read_block(
                &self.file,
                entry.offset,
                usize::try_from(block_len).expect("block fits usize"),
                "shard block",
            )
            .map_err(|e| relabel(e, &format!("shard {index} block")))?
        };

        let mut pos = 0_usize;
        let take = |pos: &mut usize, n: usize| -> &[u8] {
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            s
        };
        let stored_rows = u64::from_le_bytes(take(&mut pos, 8).try_into().expect("8"));
        if stored_rows != entry.rows {
            return Err(StoreError::Corrupt {
                offset: entry.offset,
                what: format!("shard {index} block"),
                reason: format!(
                    "{} rows in the block header, directory records {}",
                    stored_rows, entry.rows
                ),
            });
        }

        let checked = |pos: &mut usize, n: usize, what: &str| -> Result<&[u8]> {
            let start = entry.offset + *pos as u64;
            let body = take(pos, n);
            let stored = u32::from_le_bytes(take(pos, 4).try_into().expect("4"));
            let actual = crc32(body);
            if stored != actual {
                return Err(StoreError::Corrupt {
                    offset: start,
                    what: format!("shard {index} {what}"),
                    reason: format!(
                        "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                    ),
                });
            }
            Ok(body)
        };

        let ids: Vec<ObjectId> = checked(&mut pos, rows * 8, "ids block")?
            .chunks_exact(8)
            .map(|c| ObjectId(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect();
        let features: Vec<f64> = checked(&mut pos, rows * 8 * nf, "features block")?
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect();
        let fairness: Vec<f64> = checked(&mut pos, rows * 8 * na, "fairness block")?
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
            .collect();
        let label_bytes = checked(&mut pos, rows, "labels block")?;
        let mut labels = Vec::with_capacity(rows);
        for (row, &b) in label_bytes.iter().enumerate() {
            labels.push(match b {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                other => {
                    return Err(StoreError::Corrupt {
                        offset: entry.offset,
                        what: format!("shard {index} labels block"),
                        reason: format!("invalid label byte {other} at row {row}"),
                    })
                }
            });
        }
        Ok(Dataset::from_columns(
            self.schema.clone(),
            ids,
            features,
            fairness,
            labels,
        )?)
    }

    /// Look the shard up in the cache (pinning it) or page it in on a miss,
    /// scheduling readahead of the following shards either way.
    fn pin(&self, index: usize) -> Result<Arc<Dataset>> {
        {
            let mut st = self.cache.lock().expect("shard cache poisoned");
            st.last_access = index;
            loop {
                st.tick += 1;
                let tick = st.tick;
                if let Some(e) = st.entries.get_mut(&index) {
                    e.pins += 1;
                    e.last_used = tick;
                    let was_prefetched = std::mem::take(&mut e.prefetched);
                    let data = e.data.clone();
                    if was_prefetched {
                        st.prefetch_hits += 1;
                        st.obs.prefetch_hits.inc();
                    }
                    st.hits += 1;
                    st.obs.hits.inc();
                    self.schedule_readahead(&mut st, index);
                    return Ok(data);
                }
                if let Some(msg) = st.poisoned.remove(&index) {
                    // A background decode of this shard panicked. Surface it
                    // once as a structured error; the entry is consumed, so a
                    // retry decodes on demand as usual.
                    return Err(StoreError::Corrupt {
                        offset: self.directory[index].offset,
                        what: format!("shard {index} block"),
                        reason: format!("background decode panicked: {msg}"),
                    });
                }
                if st.inflight.contains(&index) {
                    // Someone (usually the readahead thread) is decoding this
                    // very shard: wait for it instead of decoding the block a
                    // second time. The wait is page-in time from the
                    // requesting job's point of view.
                    let _wait = fair_core::obs::profile::scope(fair_core::obs::Phase::PageIn);
                    st = self.cond.wait(st).expect("shard cache poisoned");
                    continue;
                }
                break;
            }
            st.misses += 1;
            st.obs.misses.inc();
            st.inflight.insert(index);
            self.schedule_readahead(&mut st, index);
        }
        // Decode outside the lock so concurrent workers page different
        // shards in parallel; `inflight` makes racers on the *same* shard
        // wait above instead of decoding the block twice. A panicking decode
        // must still clear its in-flight claim — otherwise every waiter above
        // sleeps forever — so the panic is caught, the claim released, and
        // the panic resumed on this (the caller's) thread.
        let decoded =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.load_shard(index)));
        let mut st = self.cache.lock().expect("shard cache poisoned");
        st.inflight.remove(&index);
        self.cond.notify_all();
        let data = match decoded {
            Ok(Ok(d)) => Arc::new(d),
            Ok(Err(e)) => return Err(e),
            Err(panic) => {
                drop(st);
                std::panic::resume_unwind(panic);
            }
        };
        let bytes = column_bytes(&data);
        st.tick += 1;
        let tick = st.tick;
        if let Some(e) = st.entries.get_mut(&index) {
            // The readahead thread admitted the shard while we were
            // decoding; adopt its copy.
            e.pins += 1;
            e.last_used = tick;
            let was_prefetched = std::mem::take(&mut e.prefetched);
            let data = e.data.clone();
            if was_prefetched {
                st.prefetch_hits += 1;
                st.obs.prefetch_hits.inc();
            }
            return Ok(data);
        }
        // Make room *before* admitting, so the resident set only ever
        // exceeds the budget by what is genuinely pinned.
        evict_until(&mut st, self.budget.saturating_sub(bytes));
        st.resident += bytes;
        st.peak = st.peak.max(st.resident);
        st.obs
            .resident_bytes
            .add(i64::try_from(bytes).unwrap_or(i64::MAX));
        st.entries.insert(
            index,
            CacheEntry {
                data: data.clone(),
                bytes,
                pins: 1,
                last_used: tick,
                prefetched: false,
            },
        );
        Ok(data)
    }

    /// Release one pin; shed any over-budget residue that eviction had to
    /// tolerate while the shard was pinned.
    fn unpin(&self, index: usize) {
        let mut st = self.cache.lock().expect("shard cache poisoned");
        if let Some(e) = st.entries.get_mut(&index) {
            debug_assert!(e.pins > 0, "unbalanced unpin");
            e.pins = e.pins.saturating_sub(1);
        }
        evict_until(&mut st, self.budget);
    }

    /// Estimated column bytes of shard `index` from its directory entry —
    /// exact for this fixed-width layout, no decode needed.
    fn shard_bytes(&self, index: usize) -> usize {
        let per_row = 8 * (self.schema.num_features() + self.schema.num_fairness()) + 8 + 1;
        usize::try_from(self.directory[index].rows)
            .unwrap_or(usize::MAX)
            .saturating_mul(per_row)
    }

    /// Queue the shards following `index` for the readahead thread. Skips
    /// shards that are already resident, being decoded, queued, or too big
    /// to ever be admitted under the budget.
    ///
    /// The effective depth is capped by the budget headroom: one slot stays
    /// reserved for the pinned shard and one for the next on-demand page-in,
    /// and only what fits beyond that is read ahead. With no headroom the
    /// readahead stands down entirely — prefetching into a cache that must
    /// evict the prefetched shard before it is used only burns decode time.
    fn schedule_readahead(&self, st: &mut CacheState, index: usize) {
        if self.prefetch == 0 {
            return;
        }
        let Some(last) = self.directory.len().checked_sub(1) else {
            return;
        };
        let slots = (self.budget / self.shard_bytes(index).max(1)).saturating_sub(2);
        let depth = self.prefetch.min(slots);
        if depth == 0 {
            return;
        }
        let mut scheduled = false;
        for next in index + 1..=(index + depth).min(last) {
            if st.entries.contains_key(&next)
                || st.inflight.contains(&next)
                || st.queue.contains(&next)
            {
                continue;
            }
            if self.shard_bytes(next) > self.budget {
                continue;
            }
            // Bound the queue so a scattered access pattern cannot pile up
            // stale work faster than the thread drains it.
            if st.queue.len() >= self.prefetch * 4 {
                break;
            }
            st.queue.push_back(next);
            scheduled = true;
        }
        if scheduled {
            self.work.notify_all();
        }
    }

    /// The readahead thread: pop a queued shard, decode it outside the lock,
    /// and admit it unpinned — strictly within the budget. Decode errors are
    /// deliberately swallowed: the on-demand path decodes the same block and
    /// surfaces the error where the caller can see it. Decode *panics* are
    /// contained: the shard is marked poisoned (the next reader gets a
    /// structured error instead of hanging on the in-flight condvar) and the
    /// thread keeps serving the rest of the queue.
    fn prefetch_loop(&self) {
        let mut st = self.cache.lock().expect("shard cache poisoned");
        loop {
            if st.stop {
                return;
            }
            let Some(index) = st.queue.pop_front() else {
                st = self.work.wait(st).expect("shard cache poisoned");
                continue;
            };
            if st.entries.contains_key(&index) || st.inflight.contains(&index) {
                continue;
            }
            // Drop stale work: if the reader has moved on (or a new sweep
            // restarted behind us), decoding this shard would evict shards
            // that are still useful just to admit one that is not.
            if index <= st.last_access || index > st.last_access + self.prefetch {
                continue;
            }
            st.inflight.insert(index);
            drop(st);
            let decoded =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.load_shard(index)));
            st = self.cache.lock().expect("shard cache poisoned");
            st.inflight.remove(&index);
            match decoded {
                Ok(Ok(data)) => admit_prefetched(&mut st, self.budget, index, Arc::new(data)),
                // Decode errors fall through to the on-demand path, which
                // surfaces them where the caller can see them.
                Ok(Err(_)) => {}
                Err(panic) => {
                    st.decode_poisoned += 1;
                    st.obs.decode_poisoned.inc();
                    obs::Event::new("store.decode_poisoned")
                        .field("path", &self.path)
                        .field("shard", index)
                        .field("panic", panic_text(&*panic))
                        .emit();
                    st.poisoned.insert(index, panic_text(&*panic));
                }
            }
            self.cond.notify_all();
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Admit a prefetched shard unpinned, evicting LRU unpinned shards to make
/// room first. If the budget is consumed by the pinned working set the
/// decode is dropped (counted as wasted) rather than overflowing the budget.
fn admit_prefetched(st: &mut CacheState, budget: usize, index: usize, data: Arc<Dataset>) {
    let bytes = column_bytes(&data);
    evict_until(st, budget.saturating_sub(bytes));
    if st.resident.saturating_add(bytes) > budget {
        st.prefetch_wasted += 1;
        st.obs.prefetch_wasted.inc();
        return;
    }
    st.tick += 1;
    let tick = st.tick;
    st.resident += bytes;
    st.peak = st.peak.max(st.resident);
    st.obs
        .resident_bytes
        .add(i64::try_from(bytes).unwrap_or(i64::MAX));
    st.entries.insert(
        index,
        CacheEntry {
            data,
            bytes,
            pins: 0,
            last_used: tick,
            prefetched: true,
        },
    );
}

/// Evict least-recently-used unpinned shards until at most `target` column
/// bytes stay resident (or nothing evictable remains).
fn evict_until(st: &mut CacheState, target: usize) {
    while st.resident > target {
        let victim = st
            .entries
            .iter()
            .filter(|(_, e)| e.pins == 0)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(&k, _)| k);
        match victim {
            Some(k) => {
                let e = st.entries.remove(&k).expect("victim exists");
                st.resident -= e.bytes;
                st.obs
                    .resident_bytes
                    .sub(i64::try_from(e.bytes).unwrap_or(i64::MAX));
                st.evictions += 1;
                st.obs.evictions.inc();
                if e.prefetched {
                    st.prefetch_wasted += 1;
                    st.obs.prefetch_wasted.inc();
                }
            }
            None => break,
        }
    }
}

/// Read `len` bytes at `offset`, mapping short reads to structured
/// truncation errors.
fn read_block(file: &StoreFile, offset: u64, len: usize, what: &str) -> Result<Vec<u8>> {
    let mut buf = vec![0_u8; len];
    file.read_exact_at(&mut buf, offset).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Corrupt {
                offset,
                what: what.to_string(),
                reason: format!("truncated: {len} bytes expected"),
            }
        } else {
            StoreError::Io(e)
        }
    })?;
    Ok(buf)
}

/// Re-label a corruption error with a more specific structure name.
fn relabel(e: StoreError, what: &str) -> StoreError {
    match e {
        StoreError::Corrupt { offset, reason, .. } => StoreError::Corrupt {
            offset,
            what: what.to_string(),
            reason,
        },
        other => other,
    }
}

struct PinGuard<'a> {
    store: &'a StoreInner,
    index: usize,
    data: Arc<Dataset>,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.store.unpin(self.index);
    }
}

impl ShardSource for ShardStore {
    fn schema(&self) -> &SchemaRef {
        &self.inner.schema
    }

    fn len(&self) -> usize {
        self.inner.total_rows
    }

    fn shard_size(&self) -> usize {
        self.inner.shard_size
    }

    fn num_shards(&self) -> usize {
        self.inner.directory.len()
    }

    /// Shards live on disk behind the cache: metric plans retain their
    /// measurement columns during the scoring sweep instead of re-paging.
    fn paged(&self) -> bool {
        true
    }

    /// Page the shard in (cache hit or disk read), pin it for the duration
    /// of `f`, and unpin on return — eviction can then reclaim it.
    ///
    /// # Panics
    /// Panics on an out-of-range index, and on I/O failure or block
    /// corruption at page-in time. [`ShardStore::open`] validates the
    /// header, schema, and directory but — deliberately, to keep opening a
    /// beyond-RAM file cheap — does **not** read the shard payloads, so
    /// at-rest corruption inside a column block surfaces here, where the
    /// infallible engine API leaves no error channel. Run
    /// [`ShardStore::verify`] first when the file is untrusted, or use
    /// [`ShardStore::read_shard`] for fallible access.
    fn with_shard<T>(&self, index: usize, f: impl FnOnce(ShardView<'_>) -> T) -> T {
        assert!(
            index < self.inner.directory.len(),
            "shard {index} out of bounds ({})",
            self.inner.directory.len()
        );
        let guard = PinGuard {
            store: &self.inner,
            index,
            data: match self.inner.pin(index) {
                Ok(data) => data,
                Err(e) => panic!("fair-store: cannot page in shard {index}: {e}"),
            },
        };
        f(ShardView::new(
            index,
            index * self.inner.shard_size,
            &guard.data,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{write_source, StoreWriter};
    use fair_core::{DataObject, Schema, ShardedDataset};

    fn schema() -> SchemaRef {
        Schema::from_names(&["score"], &["g"], &["need"]).unwrap()
    }

    fn objects(n: u64) -> Vec<DataObject> {
        (0..n)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64 / 2.0],
                    vec![f64::from(u8::from(i % 3 == 0)), (i % 7) as f64 / 8.0],
                    match i % 3 {
                        0 => None,
                        1 => Some(false),
                        _ => Some(true),
                    },
                )
            })
            .collect()
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fair_store_reader_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.fss", std::process::id()))
    }

    fn sample_store(name: &str, n: u64, shard_size: usize) -> std::path::PathBuf {
        let data = ShardedDataset::from_objects(schema(), objects(n), shard_size).unwrap();
        let path = temp_path(name);
        write_source(&data, &path).unwrap();
        path
    }

    /// A panic inside the background decode thread must not hang readers
    /// waiting on the in-flight condvar: the shard is poisoned, the next
    /// reader gets a structured error once, a retry recovers, and the
    /// readahead thread keeps serving the rest of the queue.
    #[test]
    fn prefetch_decode_panic_is_contained_and_surfaced() {
        let path = sample_store("poisonfault", 48, 8); // 6 shards
        let ctx = format!("{}#shard1", path.display());
        fair_core::fault::install(
            fair_core::FaultPlan::parse(&format!("decode@{ctx}:panic:1")).unwrap(),
        );
        let store = ShardStore::open_with_options(&path, usize::MAX, 2).unwrap();
        store.read_shard(0).unwrap(); // queues readahead of shards 1 and 2
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while store.cache_stats().decode_poisoned == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "background decode panic never surfaced"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let err = store.read_shard(1).unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
        // The poison is consumed: a retry decodes on demand and succeeds
        // (the fault's burst budget of one activation is spent).
        assert_eq!(store.read_shard(1).unwrap().len(), 8);
        // The readahead thread survived the panic and still serves shards.
        assert_eq!(store.read_shard(2).unwrap().len(), 8);
        assert_eq!(store.cache_stats().decode_poisoned, 1);
        fair_core::fault::install(fair_core::FaultPlan::none());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn round_trips_every_shard_bit_for_bit() {
        let data = ShardedDataset::from_objects(schema(), objects(23), 7).unwrap();
        let path = temp_path("round_trip");
        let summary = write_source(&data, &path).unwrap();
        assert_eq!(summary.rows, 23);
        assert_eq!(summary.shards, 4);

        let store = ShardStore::open_with_budget(&path, usize::MAX).unwrap();
        assert_eq!(store.len(), 23);
        assert_eq!(store.num_shards(), 4);
        assert_eq!(store.shard_size(), 7);
        assert_eq!(**store.schema(), *schema());
        for i in 0..4 {
            let disk = store.read_shard(i).unwrap();
            let mem = data.shard(i);
            assert_eq!(disk.len(), mem.len(), "shard {i}");
            assert_eq!(disk.ids(), mem.data().ids());
            assert_eq!(disk.labels(), mem.data().labels());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(disk.features_matrix()),
                bits(mem.data().features_matrix())
            );
            assert_eq!(
                bits(disk.fairness_matrix()),
                bits(mem.data().fairness_matrix())
            );
        }
        store.verify().unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn with_shard_pins_and_counts() {
        let path = sample_store("pins", 40, 8);
        // Budget 0: nothing survives unpinned.
        let store = ShardStore::open_with_budget(&path, 0).unwrap();
        store.with_shard(2, |view| {
            assert_eq!(view.index(), 2);
            assert_eq!(view.offset(), 16);
            assert_eq!(view.len(), 8);
            let stats = store.cache_stats();
            assert_eq!(stats.pinned_shards, 1, "borrowed shard is pinned");
            assert!(stats.resident_bytes > 0, "pinned shard is resident");
            // Re-entrant access to the same shard is a cache hit even while
            // the budget is zero — the pin protects it.
            store.with_shard(2, |inner| assert_eq!(inner.len(), 8));
            assert_eq!(store.cache_stats().hits, 1);
        });
        let stats = store.cache_stats();
        assert_eq!(stats.pinned_shards, 0);
        assert_eq!(stats.resident_bytes, 0, "budget 0 retains nothing");
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.peak_bytes > 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_respects_the_byte_budget_and_lru_order() {
        let path = sample_store("lru", 40, 8); // 5 shards of 8 rows
        let store = ShardStore::open_with_budget(&path, usize::MAX).unwrap();
        let shard_bytes = column_bytes(&store.read_shard(0).unwrap());
        drop(store);

        // Room for exactly two shards. Readahead off: this test asserts
        // exact counter values, which a background decode would perturb.
        let store = ShardStore::open_with_options(&path, 2 * shard_bytes, 0).unwrap();
        store.with_shard(0, |_| ());
        store.with_shard(1, |_| ());
        assert_eq!(store.cache_stats().resident_bytes, 2 * shard_bytes);
        store.with_shard(0, |_| ()); // refresh 0 → 1 becomes the LRU victim
        store.with_shard(2, |_| ());
        let stats = store.cache_stats();
        assert_eq!(stats.resident_bytes, 2 * shard_bytes);
        assert_eq!(stats.evictions, 1);
        assert!(stats.peak_bytes <= 2 * shard_bytes, "make-room-then-admit");
        // 0 must still be cached (hit), 1 must have been evicted (miss).
        let before = store.cache_stats().hits;
        store.with_shard(0, |_| ());
        assert_eq!(store.cache_stats().hits, before + 1);
        let misses = store.cache_stats().misses;
        store.with_shard(1, |_| ());
        assert_eq!(store.cache_stats().misses, misses + 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn readahead_decodes_the_next_shards_before_they_are_asked_for() {
        let path = sample_store("prefetch_hits", 40, 8); // 5 shards
        let store = ShardStore::open_with_options(&path, usize::MAX, 2).unwrap();
        let shard_bytes = column_bytes(&store.read_shard(0).unwrap());
        // That first access was a miss and queued shards 1 and 2; wait for
        // the background thread to admit both.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while store.cache_stats().resident_bytes < 3 * shard_bytes
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        assert_eq!(
            store.cache_stats().resident_bytes,
            3 * shard_bytes,
            "readahead admits shards 1 and 2 behind the access to shard 0"
        );
        store.read_shard(1).unwrap();
        store.read_shard(2).unwrap();
        let stats = store.cache_stats();
        assert_eq!(stats.misses, 1, "only shard 0 ever touched the disk path");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.prefetch_hits, 2);
        assert_eq!(stats.prefetch_wasted, 0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn readahead_never_overflows_the_byte_budget() {
        let path = sample_store("prefetch_budget", 40, 8); // 5 shards
        let probe = ShardStore::open_with_options(&path, usize::MAX, 0).unwrap();
        let shard_bytes = column_bytes(&probe.read_shard(0).unwrap());
        drop(probe);

        // Room for three shards (pinned + next + one readahead slot), depth
        // 2 requested: sweep the whole store several times. Whatever the
        // background thread manages to slip in, the peak must stay within
        // the budget and every access must resolve.
        let store = ShardStore::open_with_options(&path, 3 * shard_bytes, 2).unwrap();
        for _ in 0..3 {
            for i in 0..store.num_shards() {
                store.with_shard(i, |view| assert_eq!(view.len(), 8));
            }
        }
        let stats = store.cache_stats();
        assert_eq!(stats.hits + stats.misses, 15, "every access is counted");
        assert!(
            stats.peak_bytes <= 3 * shard_bytes,
            "peak {} exceeds budget {}",
            stats.peak_bytes,
            3 * shard_bytes
        );
        assert!(stats.prefetch_hits <= stats.hits);

        // A budget with no readahead headroom (two shards) stands the
        // prefetcher down instead of thrashing: no wasted decodes at all.
        drop(store);
        let tight = ShardStore::open_with_options(&path, 2 * shard_bytes, 2).unwrap();
        for i in 0..tight.num_shards() {
            tight.with_shard(i, |view| assert_eq!(view.len(), 8));
        }
        let stats = tight.cache_stats();
        assert_eq!(stats.misses, 5, "no headroom means no readahead at all");
        assert_eq!(stats.prefetch_hits, 0);
        assert_eq!(stats.prefetch_wasted, 0);
        assert!(stats.peak_bytes <= 2 * shard_bytes);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn prefetch_env_parsing() {
        // default_prefetch reads the environment; with the variable unset it
        // must fall back to the default. (CI sets FAIR_PREFETCH=0 for the
        // no-readahead thrash pass.)
        match std::env::var("FAIR_PREFETCH") {
            Err(_) => assert_eq!(default_prefetch(), DEFAULT_PREFETCH),
            Ok(v) => {
                let parsed: usize = v.trim().parse().unwrap();
                assert_eq!(default_prefetch(), parsed);
            }
        }
    }

    #[test]
    fn open_rejects_corruption_with_structured_errors() {
        let path = sample_store("corrupt", 23, 7);
        let original = std::fs::read(&path).unwrap();

        // Wrong magic.
        let mut bad = original.clone();
        bad[0] = b'Z';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            ShardStore::open_with_budget(&path, 0),
            Err(StoreError::Corrupt { .. })
        ));

        // Truncated directory: cut the file mid-directory.
        std::fs::write(&path, &original[..original.len() - 10]).unwrap();
        match ShardStore::open_with_budget(&path, 0) {
            Err(StoreError::Corrupt { what, .. }) => assert!(what.contains("directory"), "{what}"),
            other => panic!("expected a directory corruption error, got {other:?}"),
        }

        // Empty file.
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(
            ShardStore::open_with_budget(&path, 0),
            Err(StoreError::Corrupt { .. })
        ));

        std::fs::write(&path, &original).unwrap();
        ShardStore::open_with_budget(&path, 0).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn open_on_a_directory_is_a_structured_error() {
        // Regression: opening a directory used to fall through to the first
        // positional read and surface as a raw `IsADirectory` I/O error.
        let dir = std::env::temp_dir().join(format!("fair_store_dir_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        match ShardStore::open_with_budget(&dir, 0) {
            Err(StoreError::InvalidConfig { reason }) => {
                assert!(reason.contains("directory"), "{reason}");
            }
            other => panic!("expected a structured directory error, got {other:?}"),
        }
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn open_on_a_zero_length_file_is_a_structured_error() {
        // Regression: a zero-length file used to report a confusing
        // "truncated: 52 bytes expected" header corruption; it now says the
        // file is empty outright.
        let path = temp_path("zero_len");
        std::fs::write(&path, b"").unwrap();
        match ShardStore::open_with_budget(&path, 0) {
            Err(StoreError::Corrupt { reason, offset, .. }) => {
                assert_eq!(offset, 0);
                assert!(reason.contains("empty"), "{reason}");
            }
            other => panic!("expected a structured empty-file error, got {other:?}"),
        }
        // A missing file is still a plain I/O error (NotFound).
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            ShardStore::open_with_budget(&path, 0),
            Err(StoreError::Io(_))
        ));
    }

    #[test]
    fn flipped_data_byte_is_caught_by_the_block_checksum() {
        let path = sample_store("flip", 23, 7);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first shard's feature area (the header +
        // schema occupy the prefix; shard 0 starts right after).
        let store = ShardStore::open_with_budget(&path, 0).unwrap();
        drop(store);
        let flip_at = bytes.len() / 2;
        bytes[flip_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = ShardStore::open_with_budget(&path, 0).unwrap();
        let mut failures = 0;
        for i in 0..store.num_shards() {
            if let Err(e) = store.read_shard(i) {
                assert!(matches!(e, StoreError::Corrupt { .. }), "{e}");
                failures += 1;
            }
        }
        assert!(failures > 0, "a flipped byte must fail at least one shard");
        assert!(store.verify().is_err());
        // With readahead on, the corruption error must still surface on the
        // on-demand path even though the background thread swallows its own
        // decode failure for the same shard.
        let store = ShardStore::open_with_options(&path, usize::MAX, 2).unwrap();
        let mut failures = 0;
        for i in 0..store.num_shards() {
            if let Err(e) = store.read_shard(i) {
                assert!(matches!(e, StoreError::Corrupt { .. }), "{e}");
                failures += 1;
            }
        }
        assert!(failures > 0, "corruption must surface with readahead on");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writer_usage_errors_are_structured() {
        let path = temp_path("writer_errors");
        assert!(matches!(
            StoreWriter::create(&path, schema(), 0),
            Err(StoreError::InvalidConfig { .. })
        ));
        let mut w = StoreWriter::create(&path, schema(), 4).unwrap();
        // Oversized shard.
        let big = ShardedDataset::from_objects(schema(), objects(6), 6).unwrap();
        assert!(w.append_shard(big.shard(0).data()).is_err());
        // Short shard seals the writer.
        let short = ShardedDataset::from_objects(schema(), objects(3), 4).unwrap();
        w.append_shard(short.shard(0).data()).unwrap();
        let again = ShardedDataset::from_objects(schema(), objects(4), 4).unwrap();
        assert!(matches!(
            w.append_shard(again.shard(0).data()),
            Err(StoreError::InvalidConfig { .. })
        ));
        assert!(matches!(
            w.push(objects(1).pop().unwrap()),
            Err(StoreError::InvalidConfig { .. })
        ));
        // Schema mismatch.
        let other_schema = Schema::from_names(&["x"], &["g2"], &[]).unwrap();
        let mut w2 =
            StoreWriter::create(temp_path("writer_errors2"), other_schema.clone(), 4).unwrap();
        assert!(matches!(
            w2.append_shard(short.shard(0).data()),
            Err(StoreError::InvalidConfig { .. })
        ));
        // Dimension-mismatched push is a schema error.
        assert!(w2
            .push(DataObject::new_unchecked(
                0,
                vec![1.0, 2.0],
                vec![0.0],
                None
            ))
            .is_err());
        std::fs::remove_file(temp_path("writer_errors")).ok();
        std::fs::remove_file(temp_path("writer_errors2")).ok();
    }

    #[test]
    fn push_path_matches_append_path() {
        let objs = objects(23);
        let sharded = ShardedDataset::from_objects(schema(), objs.clone(), 7).unwrap();
        let appended = temp_path("append");
        write_source(&sharded, &appended).unwrap();
        let pushed = temp_path("pushed");
        let mut w = StoreWriter::create(&pushed, schema(), 7).unwrap();
        for o in objs {
            w.push(o).unwrap();
        }
        assert_eq!(w.rows(), 23);
        let summary = w.finalize().unwrap();
        assert_eq!(summary.rows, 23);
        assert_eq!(
            std::fs::read(&appended).unwrap(),
            std::fs::read(&pushed).unwrap(),
            "push and append produce identical files"
        );
        std::fs::remove_file(appended).ok();
        std::fs::remove_file(pushed).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let path = temp_path("empty");
        let w = StoreWriter::create(&path, schema(), 4).unwrap();
        let summary = w.finalize().unwrap();
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.shards, 0);
        let store = ShardStore::open_with_budget(&path, 0).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.num_shards(), 0);
        assert!(store.fairness_centroid().is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unfinalized_file_is_rejected() {
        let path = temp_path("unfinalized");
        {
            let mut w = StoreWriter::create(&path, schema(), 4).unwrap();
            for o in objects(4) {
                w.push(o).unwrap();
            }
            // Dropped without finalize: header still carries offset 0.
        }
        match ShardStore::open_with_budget(&path, 0) {
            Err(StoreError::Corrupt { reason, .. }) => {
                assert!(reason.contains("finalize"), "{reason}")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn huge_row_count_header_is_a_structured_error_not_an_overflow() {
        use crate::format::{Header, HEADER_LEN};
        let path = sample_store("huge_header", 8, 4);
        let mut bytes = std::fs::read(&path).unwrap();
        // Craft a header claiming 2^61 rows at shard size 1 (so the
        // directory size computation would overflow), with a valid CRC so it
        // passes Header::decode.
        let original = Header::decode(&bytes[..HEADER_LEN]).unwrap();
        let crafted = Header {
            shard_size: 1,
            total_rows: 1 << 61,
            num_shards: 1 << 61,
            ..original
        };
        bytes[..HEADER_LEN].copy_from_slice(&crafted.encode());
        std::fs::write(&path, &bytes).unwrap();
        match ShardStore::open_with_budget(&path, 0) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("crafted huge header must be structured, got {other:?}"),
        }
        // A count that does not overflow the multiply but exceeds the file
        // must also be structured (truncated directory).
        let crafted = Header {
            shard_size: 1,
            total_rows: 1 << 40,
            num_shards: 1 << 40,
            ..original
        };
        bytes[..HEADER_LEN].copy_from_slice(&crafted.encode());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardStore::open_with_budget(&path, 0),
            Err(StoreError::Corrupt { .. })
        ));
        // A huge *shard size* (one giant claimed shard) must not overflow
        // the per-shard block arithmetic either.
        let crafted = Header {
            shard_size: 1 << 61,
            total_rows: 1 << 61,
            num_shards: 1,
            ..original
        };
        bytes[..HEADER_LEN].copy_from_slice(&crafted.encode());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardStore::open_with_budget(&path, 0),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_shard_out_of_range_is_invalid_config() {
        let path = sample_store("range", 8, 4);
        let store = ShardStore::open_with_budget(&path, 0).unwrap();
        assert!(matches!(
            store.read_shard(9),
            Err(StoreError::InvalidConfig { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cache_budget_env_parsing() {
        // default_cache_bytes reads the environment; with the variable unset
        // it must fall back to the default. (CI sets it for the thrash pass.)
        match std::env::var("FAIR_CACHE_BYTES") {
            Err(_) => assert_eq!(default_cache_bytes(), DEFAULT_CACHE_BYTES),
            Ok(v) => {
                let parsed: usize = v.trim().parse().unwrap();
                assert_eq!(default_cache_bytes(), parsed);
            }
        }
    }
}
