//! # fair-store — persistent on-disk columnar shard store
//!
//! This crate lets a cohort live on disk and still be evaluated by every
//! sharded metric, ranking kernel, and DCA driver in `fair-core`, with
//! memory bounded by a cache budget — the out-of-core storage subsystem of
//! the reproduction.
//!
//! * **FSS1 format** ([`format`]): a binary columnar layout — file header
//!   with a schema hash and a shard directory, then per-shard contiguous
//!   column blocks (ids, features, fairness, labels), each CRC32-checksummed.
//!   Std-only; no compression, no external dependencies.
//! * **[`StoreWriter`]** ([`writer`]): streaming writes — shards are encoded
//!   and appended as they are built ([`StoreWriter::push`] buffers single
//!   rows, [`StoreWriter::append_shard`] takes whole blocks), and
//!   [`StoreWriter::finalize`] writes the directory; the cohort is never
//!   materialized.
//! * **[`ShardStore`]** ([`reader`]): the paging reader. It validates the
//!   whole layout at open, then decodes shards on demand through a
//!   byte-budgeted LRU cache (`FAIR_CACHE_BYTES`, default 256 MiB) with
//!   pin-while-borrowed semantics and hit/miss/eviction/peak-bytes counters.
//!
//! `ShardStore` implements [`fair_core::ShardSource`], so evaluation code is
//! storage-agnostic:
//!
//! ```no_run
//! use fair_core::metrics::sharded as shmetrics;
//! use fair_core::prelude::*;
//! use fair_store::{write_source, ShardStore};
//!
//! # fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
//! # let cohort: ShardedDataset = unimplemented!();
//! // Persist an in-memory cohort, then evaluate it straight off the disk.
//! write_source(&cohort, "cohort.fss")?;
//! let store = ShardStore::open("cohort.fss")?; // FAIR_CACHE_BYTES budget
//! let ranker = WeightedSumRanker::new(vec![1.0])?;
//! let disparity = shmetrics::disparity_at_k(&store, &ranker, &[0.0], 0.05)?;
//! println!("{disparity:?}  (cache: {:?})", store.cache_stats());
//! # Ok(()) }
//! ```
//!
//! Results are **bit-for-bit identical** to evaluating the in-memory
//! [`fair_core::ShardedDataset`] at the same shard size: a decoded shard is
//! exactly the bytes that were written (f64 bit patterns round-trip through
//! the file), and the engine's ordered combine is storage-independent.

#![deny(missing_docs)]
#![deny(unsafe_code)]
#![warn(clippy::all)]

pub mod error;
pub mod format;
pub mod reader;
pub mod writer;

pub use error::{Result, StoreError};
pub use reader::{
    column_bytes, default_cache_bytes, default_prefetch, CacheStats, ShardStore,
    DEFAULT_CACHE_BYTES, DEFAULT_PREFETCH,
};
pub use writer::{write_source, StoreSummary, StoreWriter};
