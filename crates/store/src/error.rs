//! Error types for the on-disk shard store.

use fair_core::FairError;
use std::fmt;
use std::io;

/// Errors produced by writing, opening, and paging an FSS1 shard file.
///
/// Throughout the crate's fallible API (`open`, `read_shard`, `verify`, the
/// writer), every failure mode of a corrupted or truncated file surfaces as
/// a structured [`StoreError::Corrupt`] value — never a panic, and never a
/// silently mis-decoded shard (all column blocks are CRC-checked before a
/// single byte is interpreted). The one infallible surface is the
/// `ShardSource::with_shard` engine hook, which has no error channel and
/// panics if a block first fails its checksum there; `verify` pre-screens
/// untrusted files.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the FSS1 format: bad magic, failed checksum,
    /// truncated block, inconsistent directory, …
    Corrupt {
        /// Byte offset of the structure that failed validation (best effort;
        /// the start of the enclosing block).
        offset: u64,
        /// Which structure failed (`"file header"`, `"shard directory"`,
        /// `"shard 3 fairness block"`, …).
        what: String,
        /// Explanation of the violated invariant.
        reason: String,
    },
    /// The file is a newer (or unknown) format revision.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
    },
    /// The embedded schema could not be reconstructed, or data dimensions
    /// contradict it.
    Schema(FairError),
    /// The store was used incorrectly (zero shard size, appending after a
    /// short shard sealed the file, schema mismatch on append, …).
    InvalidConfig {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store I/O error: {e}"),
            Self::Corrupt {
                offset,
                what,
                reason,
            } => write!(f, "corrupt shard file: {what} at byte {offset}: {reason}"),
            Self::UnsupportedVersion { found } => {
                write!(f, "unsupported shard-file version {found}")
            }
            Self::Schema(e) => write!(f, "invalid stored schema: {e}"),
            Self::InvalidConfig { reason } => write!(f, "invalid store usage: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Schema(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FairError> for StoreError {
    fn from(e: FairError) -> Self {
        Self::Schema(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StoreError::Corrupt {
            offset: 52,
            what: "shard directory".into(),
            reason: "truncated".into(),
        };
        let s = e.to_string();
        assert!(s.contains("shard directory"), "{s}");
        assert!(s.contains("52"), "{s}");
        assert!(StoreError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains('9'));
        assert!(StoreError::InvalidConfig {
            reason: "shard size must be positive".into()
        }
        .to_string()
        .contains("shard size"));
        let io = StoreError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        let schema = StoreError::from(FairError::EmptyDataset);
        assert!(schema.to_string().contains("schema"));
    }

    #[test]
    fn error_implements_std_error_with_sources() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        let e = StoreError::from(io::Error::other("x"));
        assert_error(&e);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&StoreError::UnsupportedVersion { found: 2 }).is_none());
    }
}
