//! The FSS1 on-disk layout: header, embedded schema, shard blocks, and the
//! trailing shard directory — plus the std-only CRC32/FNV primitives that
//! checksum them.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ header (52 B): magic "FSS1" · version · schema hash · shard size │
//! │                total rows · shard count · directory offset · CRC │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ schema block: length-prefixed serialization + CRC                │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ shard 0: rows ┆ ids+CRC ┆ features+CRC ┆ fairness+CRC ┆ labels+CRC
//! │ shard 1: …                                                       │
//! │ ⋮   (appended as they are built — streaming writes)              │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ directory: per shard (offset, rows) + CRC   (written at finalize)│
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! Every multi-byte integer is little-endian. Each column block carries its
//! own CRC32 so a flipped byte anywhere is caught before any value is
//! interpreted; the header additionally pins the schema by an FNV-1a hash so
//! a file can never be decoded under the wrong column layout.

use crate::error::{Result, StoreError};
use fair_core::{FairnessAttribute, FairnessKind, Schema, SchemaRef};

/// The four magic bytes opening every shard file.
pub const MAGIC: [u8; 4] = *b"FSS1";
/// Current format revision.
pub const VERSION: u16 = 1;
/// Fixed byte length of the file header.
pub const HEADER_LEN: usize = 52;
/// Byte length of one shard-directory entry (`offset u64`, `rows u64`).
pub const DIR_ENTRY_LEN: usize = 16;

// ---------------------------------------------------------------------
// Checksums.
// ---------------------------------------------------------------------

/// Slice-by-16 CRC32 (IEEE 802.3, reflected) lookup tables, built once.
/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[t][b]` advances
/// byte `b` through `t` additional zero bytes, which lets the hot loop fold
/// 16 input bytes per iteration instead of one.
fn crc_tables() -> &'static [[u32; 256]; 16] {
    static TABLES: std::sync::OnceLock<[[u32; 256]; 16]> = std::sync::OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = [[0_u32; 256]; 16];
        for (i, slot) in tables[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    0xEDB8_8320 ^ (crc >> 1)
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        for t in 1..16 {
            for i in 0..256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        tables
    })
}

/// CRC32 (IEEE) of `bytes` — the per-block integrity check. Processes 16
/// bytes per iteration (slice-by-16): column blocks are megabytes, and the
/// byte-at-a-time loop was the dominant cost of paging a shard in.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut crc = 0xFFFF_FFFF_u32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4")) ^ crc;
        let b = |i: usize| chunk[i] as usize;
        crc = t[15][(lo & 0xFF) as usize]
            ^ t[14][((lo >> 8) & 0xFF) as usize]
            ^ t[13][((lo >> 16) & 0xFF) as usize]
            ^ t[12][(lo >> 24) as usize]
            ^ t[11][b(4)]
            ^ t[10][b(5)]
            ^ t[9][b(6)]
            ^ t[8][b(7)]
            ^ t[7][b(8)]
            ^ t[6][b(9)]
            ^ t[5][b(10)]
            ^ t[4][b(11)]
            ^ t[3][b(12)]
            ^ t[2][b(13)]
            ^ t[1][b(14)]
            ^ t[0][b(15)];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// FNV-1a 64-bit hash — pins the schema serialization in the header.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// ---------------------------------------------------------------------
// Little-endian cursor helpers.
// ---------------------------------------------------------------------

/// A bounds-checked little-endian reader over a byte slice; every overrun is
/// a structured corruption error, never a panic.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// File offset of `bytes[0]`, for error reporting.
    base: u64,
    /// What is being decoded, for error reporting.
    what: &'a str,
}

impl<'a> Cursor<'a> {
    /// Wrap `bytes` (starting at file offset `base`) for decoding `what`.
    #[must_use]
    pub fn new(bytes: &'a [u8], base: u64, what: &'a str) -> Self {
        Self {
            bytes,
            pos: 0,
            base,
            what,
        }
    }

    fn corrupt(&self, reason: impl Into<String>) -> StoreError {
        StoreError::Corrupt {
            offset: self.base + self.pos as u64,
            what: self.what.to_string(),
            reason: reason.into(),
        }
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt(format!("truncated: {n} more bytes expected")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("invalid UTF-8 in name"))
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Append a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------
// Header.
// ---------------------------------------------------------------------

/// The decoded fixed-size file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// FNV-1a hash of the schema block's serialization.
    pub schema_hash: u64,
    /// Rows per shard (every shard but the last).
    pub shard_size: u64,
    /// Total rows across all shards.
    pub total_rows: u64,
    /// Number of shards.
    pub num_shards: u64,
    /// File offset of the shard directory.
    pub directory_offset: u64,
}

impl Header {
    /// Serialize to the fixed [`HEADER_LEN`] bytes (including the CRC).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0_u16.to_le_bytes()); // reserved flags
        put_u64(&mut out, self.schema_hash);
        put_u64(&mut out, self.shard_size);
        put_u64(&mut out, self.total_rows);
        put_u64(&mut out, self.num_shards);
        put_u64(&mut out, self.directory_offset);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        debug_assert_eq!(out.len(), HEADER_LEN);
        out
    }

    /// Decode and validate a [`HEADER_LEN`]-byte header.
    ///
    /// # Errors
    /// Returns a structured error on bad magic, an unsupported version, or a
    /// failed header checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut c = Cursor::new(bytes, 0, "file header");
        let magic = c.take(4)?;
        if magic != MAGIC {
            return Err(StoreError::Corrupt {
                offset: 0,
                what: "file header".into(),
                reason: format!("bad magic {magic:02x?}, expected \"FSS1\""),
            });
        }
        let version = c.u16()?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let _flags = c.u16()?;
        let header = Self {
            schema_hash: c.u64()?,
            shard_size: c.u64()?,
            total_rows: c.u64()?,
            num_shards: c.u64()?,
            directory_offset: c.u64()?,
        };
        let stored_crc = c.u32()?;
        let actual = crc32(&bytes[..HEADER_LEN - 4]);
        if stored_crc != actual {
            return Err(StoreError::Corrupt {
                offset: (HEADER_LEN - 4) as u64,
                what: "file header".into(),
                reason: format!(
                    "checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
                ),
            });
        }
        Ok(header)
    }
}

// ---------------------------------------------------------------------
// Schema block.
// ---------------------------------------------------------------------

/// Serialize a schema: feature names, then fairness attributes with their
/// kinds. This byte sequence is what [`fnv1a64`] pins in the header.
#[must_use]
pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(
        &mut out,
        u32::try_from(schema.num_features()).expect("few features"),
    );
    for name in schema.features() {
        put_u32(&mut out, u32::try_from(name.len()).expect("short name"));
        out.extend_from_slice(name.as_bytes());
    }
    put_u32(
        &mut out,
        u32::try_from(schema.num_fairness()).expect("few attributes"),
    );
    for attr in schema.fairness() {
        out.push(match attr.kind() {
            FairnessKind::Binary => 0,
            FairnessKind::Continuous => 1,
        });
        put_u32(
            &mut out,
            u32::try_from(attr.name().len()).expect("short name"),
        );
        out.extend_from_slice(attr.name().as_bytes());
    }
    out
}

/// Reconstruct the schema from its serialization (at file offset `base`).
///
/// # Errors
/// Returns a structured error on truncation, unknown attribute kinds, or a
/// serialization that violates schema invariants.
pub fn decode_schema(bytes: &[u8], base: u64) -> Result<SchemaRef> {
    let mut c = Cursor::new(bytes, base, "schema block");
    let num_features = c.u32()? as usize;
    if num_features > bytes.len() {
        return Err(StoreError::Corrupt {
            offset: base,
            what: "schema block".into(),
            reason: format!("implausible feature count {num_features}"),
        });
    }
    let mut features = Vec::with_capacity(num_features);
    for _ in 0..num_features {
        features.push(c.string()?);
    }
    let num_fairness = c.u32()? as usize;
    if num_fairness > bytes.len() {
        return Err(StoreError::Corrupt {
            offset: base,
            what: "schema block".into(),
            reason: format!("implausible fairness count {num_fairness}"),
        });
    }
    let mut fairness = Vec::with_capacity(num_fairness);
    for _ in 0..num_fairness {
        let kind = c.take(1)?[0];
        let name = c.string()?;
        fairness.push(match kind {
            0 => FairnessAttribute::binary(name),
            1 => FairnessAttribute::continuous(name),
            other => {
                return Err(StoreError::Corrupt {
                    offset: base,
                    what: "schema block".into(),
                    reason: format!("unknown fairness kind {other}"),
                })
            }
        });
    }
    if !c.exhausted() {
        return Err(StoreError::Corrupt {
            offset: base,
            what: "schema block".into(),
            reason: "trailing bytes after schema".into(),
        });
    }
    Ok(Schema::new(features, fairness)?)
}

// ---------------------------------------------------------------------
// Shard directory.
// ---------------------------------------------------------------------

/// One directory entry: where a shard block starts and how many rows it
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// File offset of the shard block.
    pub offset: u64,
    /// Rows in the shard.
    pub rows: u64,
}

/// Serialize the directory (entries + trailing CRC).
#[must_use]
pub fn encode_directory(entries: &[ShardEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * DIR_ENTRY_LEN + 4);
    for e in entries {
        put_u64(&mut out, e.offset);
        put_u64(&mut out, e.rows);
    }
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Decode and checksum-validate a directory of `num_shards` entries read
/// from file offset `base`.
///
/// # Errors
/// Returns a structured error on truncation or a failed checksum.
pub fn decode_directory(bytes: &[u8], num_shards: usize, base: u64) -> Result<Vec<ShardEntry>> {
    let body_len = num_shards * DIR_ENTRY_LEN;
    if bytes.len() < body_len + 4 {
        return Err(StoreError::Corrupt {
            offset: base,
            what: "shard directory".into(),
            reason: format!(
                "truncated: {} bytes present, {} expected",
                bytes.len(),
                body_len + 4
            ),
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[body_len..body_len + 4].try_into().expect("4"));
    let actual = crc32(&bytes[..body_len]);
    if stored_crc != actual {
        return Err(StoreError::Corrupt {
            offset: base + body_len as u64,
            what: "shard directory".into(),
            reason: format!(
                "checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
            ),
        });
    }
    let mut c = Cursor::new(&bytes[..body_len], base, "shard directory");
    let mut entries = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        entries.push(ShardEntry {
            offset: c.u64()?,
            rows: c.u64()?,
        });
    }
    Ok(entries)
}

/// Byte length of one shard block holding `rows` rows under a schema with
/// `num_features`/`num_fairness` columns: the row count, then the four
/// CRC-suffixed column blocks (ids, features, fairness, labels). Saturating
/// arithmetic: implausible (crafted-header) inputs yield `u64::MAX`, which
/// every bounds check downstream rejects — never an overflow panic.
#[must_use]
pub fn shard_block_len(rows: u64, num_features: usize, num_fairness: usize) -> u64 {
    let column = |width: u64| {
        rows.saturating_mul(8)
            .saturating_mul(width)
            .saturating_add(4)
    };
    let ids = column(1);
    let features = column(num_features as u64);
    let fairness = column(num_fairness as u64);
    let labels = rows.saturating_add(4);
    8_u64
        .saturating_add(ids)
        .saturating_add(features)
        .saturating_add(fairness)
        .saturating_add(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn crc32_slice_by_16_matches_byte_at_a_time() {
        fn reference(bytes: &[u8]) -> u32 {
            let table = &crc_tables()[0];
            let mut crc = 0xFFFF_FFFF_u32;
            for &b in bytes {
                crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
            }
            !crc
        }
        // Every alignment of the 16-byte main loop plus its remainder tail.
        let data: Vec<u8> = (0..1024_u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 13) as u8)
            .collect();
        for len in [0, 1, 7, 15, 16, 17, 31, 32, 33, 100, 255, 1000, 1024] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a64(b"schema-a"), fnv1a64(b"schema-b"));
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            schema_hash: 0xDEAD_BEEF_CAFE_F00D,
            shard_size: 64 * 1024,
            total_rows: 1_000_003,
            num_shards: 16,
            directory_offset: 123_456_789,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        assert_eq!(Header::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic_version_and_crc() {
        let h = Header {
            schema_hash: 1,
            shard_size: 2,
            total_rows: 3,
            num_shards: 2,
            directory_offset: 99,
        };
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
        let mut bytes = h.encode();
        bytes[4] = 9;
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::UnsupportedVersion { found: 9 })
        ));
        let mut bytes = h.encode();
        bytes[20] ^= 0x01; // flip a payload byte: CRC must catch it
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn schema_round_trips_with_stable_hash() {
        let schema =
            Schema::from_names(&["gpa", "test"], &["low_income", "ell"], &["eni"]).unwrap();
        let bytes = encode_schema(&schema);
        let back = decode_schema(&bytes, 52).unwrap();
        assert_eq!(*back, *schema);
        assert_eq!(fnv1a64(&bytes), fnv1a64(&encode_schema(&back)));
        // Kinds survive.
        assert_eq!(back.fairness()[2].kind(), FairnessKind::Continuous);
    }

    #[test]
    fn schema_decode_rejects_corruption() {
        let schema = Schema::from_names(&["x"], &["g"], &[]).unwrap();
        let bytes = encode_schema(&schema);
        // Truncated.
        assert!(decode_schema(&bytes[..bytes.len() - 2], 0).is_err());
        // Unknown kind byte.
        let mut bad = bytes.clone();
        let kind_pos = bad.len() - (4 + 1 + 1); // kind byte precedes the name
        bad[kind_pos] = 7;
        assert!(decode_schema(&bad, 0).is_err());
        // Trailing garbage.
        let mut long = bytes;
        long.push(0);
        assert!(decode_schema(&long, 0).is_err());
    }

    #[test]
    fn directory_round_trips_and_detects_flips() {
        let entries = vec![
            ShardEntry {
                offset: 100,
                rows: 7,
            },
            ShardEntry {
                offset: 400,
                rows: 3,
            },
        ];
        let bytes = encode_directory(&entries);
        assert_eq!(decode_directory(&bytes, 2, 500).unwrap(), entries);
        let mut bad = bytes.clone();
        bad[3] ^= 0x10;
        assert!(matches!(
            decode_directory(&bad, 2, 500),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(matches!(
            decode_directory(&bytes[..10], 2, 500),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn shard_block_len_counts_every_section() {
        // 8 (rows) + ids (2*8+4) + features (2*8*1+4) + fairness (2*8*2+4)
        // + labels (2+4)
        assert_eq!(shard_block_len(2, 1, 2), 8 + 20 + 20 + 36 + 6);
        // Crafted-header scale saturates instead of overflowing.
        assert_eq!(shard_block_len(u64::MAX / 2, 1 << 30, 1 << 30), u64::MAX);
    }
}
