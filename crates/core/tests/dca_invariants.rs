//! Crate-level property tests for DCA and its supporting invariants, run on
//! randomly generated biased populations.

use fair_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a population with a configurable member rate and score shift.
fn biased_dataset(n: usize, member_rate: f64, shift: f64, seed: u64) -> Dataset {
    let schema = Schema::from_names(&["score"], &["g"], &[]).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let objects = (0..n as u64)
        .map(|i| {
            let member = rng.gen::<f64>() < member_rate;
            let score = rng.gen::<f64>() * 100.0 - if member { shift } else { 0.0 };
            DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
        })
        .collect();
    Dataset::new(schema, objects).unwrap()
}

fn quick_config(seed: u64) -> DcaConfig {
    DcaConfig {
        sample_size: 150,
        learning_rates: vec![10.0, 1.0],
        iterations_per_rate: 25,
        refinement_iterations: 25,
        rolling_window: 25,
        seed,
        ..DcaConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DCA never makes things worse and never emits a negative bonus, for a
    /// range of member rates, bias strengths, and selection fractions.
    #[test]
    fn dca_never_hurts_and_respects_polarity(
        member_rate in 0.15_f64..0.6,
        shift in 5.0_f64..40.0,
        k in 0.05_f64..0.4,
        seed in 0_u64..500,
    ) {
        let dataset = biased_dataset(1_500, member_rate, shift, seed);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let result = Dca::new(quick_config(seed))
            .run(&dataset, &ranker, &TopKDisparity::new(k))
            .unwrap();
        let before = result.report.disparity_before.norm();
        let after = result.report.disparity_after.norm();
        // Allow a small tolerance: rounding to 0.5 points can cost a little.
        prop_assert!(after <= before + 0.05, "after {after} vs before {before}");
        prop_assert!(result.bonus.values().iter().all(|b| *b >= 0.0));
    }

    /// With caps configured, no step of Core DCA ever exceeds them.
    #[test]
    fn caps_hold_along_the_whole_trajectory(
        cap in 0.5_f64..5.0,
        shift in 10.0_f64..40.0,
        seed in 0_u64..500,
    ) {
        let dataset = biased_dataset(1_200, 0.3, shift, seed);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let mut config = quick_config(seed);
        config.caps = Some(BonusCaps::uniform(1, cap).unwrap());
        let out = run_core_dca(&dataset, &ranker, &TopKDisparity::new(0.1), &config, None, true)
            .unwrap();
        prop_assert!(out.trace.iter().all(|t| t.bonus[0] <= cap + 1e-9 && t.bonus[0] >= 0.0));
    }

    /// The objective evaluated on samples stays within the [-1, 1] contract
    /// regardless of the bonus applied.
    #[test]
    fn sampled_objective_respects_bounds(
        bonus in 0.0_f64..200.0,
        k in 0.02_f64..0.9,
        seed in 0_u64..500,
    ) {
        let dataset = biased_dataset(800, 0.3, 20.0, seed);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = dataset.sample(&mut rng, 100).unwrap();
        for objective_value in [
            TopKDisparity::new(k).evaluate(&sample, &ranker, &[bonus]).unwrap(),
            LogDiscountedObjective::default().evaluate(&sample, &ranker, &[bonus]).unwrap(),
            ScaledDisparateImpact::new(k).evaluate(&sample, &ranker, &[bonus]).unwrap(),
        ] {
            prop_assert!(objective_value.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    /// Full DCA is deterministic and at least as good as Core DCA with the
    /// same schedule (it sees the full dataset at every step).
    #[test]
    fn full_dca_matches_or_beats_sampled_core(seed in 0_u64..200, shift in 10.0_f64..40.0) {
        let dataset = biased_dataset(1_000, 0.3, shift, seed);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let config = quick_config(seed);
        let objective = TopKDisparity::new(0.1);
        let full = run_full_dca(&dataset, &ranker, &objective, &config, None, false).unwrap();
        let core = run_core_dca(&dataset, &ranker, &objective, &config, None, false).unwrap();
        let view = dataset.full_view();
        let eval = |bonus: &[f64]| {
            norm(&objective.evaluate(&view, &ranker, bonus).unwrap())
        };
        prop_assert!(eval(&full.bonus) <= eval(&core.bonus) + 0.08,
            "full {} vs core {}", eval(&full.bonus), eval(&core.bonus));
        // Determinism of the non-sampled variant.
        let again = run_full_dca(&dataset, &ranker, &objective, &config, None, false).unwrap();
        prop_assert_eq!(full.bonus, again.bonus);
    }

    /// Calibration results are consistent: the returned proportion reproduces
    /// the returned disparity/utility when re-evaluated.
    #[test]
    fn calibration_is_self_consistent(
        target_utility in 0.9_f64..0.999,
        shift in 10.0_f64..40.0,
        seed in 0_u64..200,
    ) {
        let dataset = biased_dataset(1_500, 0.35, shift, seed);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let bonus = BonusVector::new(dataset.schema().clone(), vec![shift], BonusPolarity::NonNegative)
            .unwrap();
        let result = calibrate_proportion(
            &dataset,
            &ranker,
            &bonus,
            0.1,
            CalibrationTarget::MinUtility(target_utility),
            None,
            14,
        )
        .unwrap();
        if result.target_met {
            prop_assert!(result.ndcg >= target_utility - 1e-9);
        }
        // Re-evaluate the returned bonus: it must reproduce the reported values.
        let view = dataset.full_view();
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, result.bonus.values()));
        let disparity = norm(&disparity_at_k(&view, &ranking, 0.1).unwrap());
        let utility = ndcg_at_k(&view, &ranker, &ranking, 0.1).unwrap();
        prop_assert!((disparity - result.disparity_norm).abs() < 1e-9);
        prop_assert!((utility - result.ndcg).abs() < 1e-9);
    }
}

/// A deterministic regression check of the Theorem 4.1 inequality on a small
/// instance: for any pair (p outside, q inside) whose swap would reduce
/// disparity, the current disparity satisfies `D · (F_p − F_q) < 0`, so the
/// descent direction gives p more bonus than q.
#[test]
fn theorem_4_1_inequality_on_random_instances() {
    for seed in 0..20_u64 {
        let dataset = biased_dataset(200, 0.3, 15.0, seed);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let view = dataset.full_view();
        let k = 0.2;
        let ranking = RankedSelection::from_scores(effective_scores(&view, &ranker, &[0.0]));
        let selected = ranking.selected(k).unwrap();
        let unselected = ranking.unselected(k).unwrap();
        let disparity = disparity_at_k(&view, &ranking, k).unwrap();
        let centroid_all = view.fairness_centroid().unwrap();
        let centroid_sel = view.fairness_centroid_of(selected).unwrap();
        let s = selected.len() as f64;

        for &p in unselected.iter().take(10) {
            for &q in selected.iter().take(10) {
                let fp = view.object(p).fairness()[0];
                let fq = view.object(q).fairness()[0];
                let swapped = centroid_sel[0] + (fp - fq) / s - centroid_all[0];
                let current = centroid_sel[0] - centroid_all[0];
                if swapped.abs() < current.abs() - 1e-12 {
                    let dot = disparity[0] * (fp - fq);
                    assert!(
                        dot <= 1e-9,
                        "seed {seed}: D·(Fp−Fq) = {dot} must be non-positive"
                    );
                }
            }
        }
    }
}
