//! Compensatory bonus points (Definition 2).
//!
//! A [`BonusVector`] holds one bonus value per fairness attribute. The
//! effective score of an object is `f_b(o) = f(o) + A_f · B`: for binary
//! attributes the bonus is added to members' scores, for continuous attributes
//! it is multiplied by the attribute value first.
//!
//! The module also implements the operational knobs the paper evaluates:
//!
//! * **granularity rounding** — "we round to the desired bonus point
//!   granularity, as decided by stakeholders … a granularity of 0.5 points"
//!   ([`BonusVector::rounded_to`]),
//! * **maximum bonus limits** — Figure 5 ([`BonusCaps`]),
//! * **proportional scaling** — Figures 2 and 3 apply "a reducing weight to
//!   bonus points" ([`BonusVector::scaled`]),
//! * **polarity** — bonuses are non-negative when selection is the favorable
//!   outcome, non-positive when it is unfavorable (COMPAS flagging), per the
//!   paper's note that negative points read as penalties
//!   ([`BonusPolarity`]).

use crate::attributes::SchemaRef;
use crate::error::{FairError, Result};
use std::fmt;

/// Sign policy for bonus points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BonusPolarity {
    /// Being selected is desirable (school admission): bonuses must be `>= 0`.
    #[default]
    NonNegative,
    /// Being selected is undesirable (being flagged high-risk): bonuses must
    /// be `<= 0` so they *reduce* the effective score of protected groups.
    NonPositive,
}

impl BonusPolarity {
    /// Clamp a single value to this polarity.
    #[must_use]
    pub fn clamp(self, value: f64) -> f64 {
        match self {
            Self::NonNegative => value.max(0.0),
            Self::NonPositive => value.min(0.0),
        }
    }
}

/// Optional per-dimension magnitude caps on bonus points (Section VI-A4).
#[derive(Debug, Clone, PartialEq)]
pub struct BonusCaps {
    /// Maximum absolute bonus per fairness dimension.
    max_abs: Vec<f64>,
}

impl BonusCaps {
    /// A uniform cap of `max_abs` points across `dims` dimensions.
    ///
    /// # Errors
    /// Returns an error if `max_abs` is negative or non-finite.
    pub fn uniform(dims: usize, max_abs: f64) -> Result<Self> {
        if !(max_abs.is_finite() && max_abs >= 0.0) {
            return Err(FairError::InvalidConfig {
                reason: format!("bonus cap must be a non-negative finite number, got {max_abs}"),
            });
        }
        Ok(Self {
            max_abs: vec![max_abs; dims],
        })
    }

    /// Per-dimension caps.
    ///
    /// # Errors
    /// Returns an error if any cap is negative or non-finite, or the list is
    /// empty.
    pub fn per_dimension(max_abs: Vec<f64>) -> Result<Self> {
        if max_abs.is_empty() {
            return Err(FairError::InvalidConfig {
                reason: "caps cannot be empty".into(),
            });
        }
        if max_abs.iter().any(|c| !c.is_finite() || *c < 0.0) {
            return Err(FairError::InvalidConfig {
                reason: "every cap must be a non-negative finite number".into(),
            });
        }
        Ok(Self { max_abs })
    }

    /// Cap values per dimension.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.max_abs
    }

    /// Number of dimensions covered.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.max_abs.len()
    }

    /// Clamp `value` for dimension `dim` to `[-cap, +cap]`.
    #[must_use]
    pub fn clamp(&self, dim: usize, value: f64) -> f64 {
        let cap = self.max_abs[dim];
        value.clamp(-cap, cap)
    }
}

/// A vector of compensatory bonus points, one entry per fairness attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct BonusVector {
    schema: SchemaRef,
    values: Vec<f64>,
    polarity: BonusPolarity,
}

impl BonusVector {
    /// All-zero bonus vector (the uncorrected baseline).
    #[must_use]
    pub fn zeros(schema: SchemaRef) -> Self {
        let dims = schema.num_fairness();
        Self {
            schema,
            values: vec![0.0; dims],
            polarity: BonusPolarity::NonNegative,
        }
    }

    /// Build from explicit values.
    ///
    /// # Errors
    /// Returns an error on dimensionality mismatch, non-finite values, or
    /// values violating the polarity.
    pub fn new(schema: SchemaRef, values: Vec<f64>, polarity: BonusPolarity) -> Result<Self> {
        if values.len() != schema.num_fairness() {
            return Err(FairError::DimensionMismatch {
                what: "bonus vector",
                expected: schema.num_fairness(),
                actual: values.len(),
            });
        }
        for (attr, &v) in schema.fairness().iter().zip(&values) {
            if !v.is_finite() {
                return Err(FairError::InvalidValue {
                    attribute: attr.name().to_string(),
                    value: v,
                    reason: "bonus values must be finite",
                });
            }
            if polarity.clamp(v) != v {
                return Err(FairError::InvalidValue {
                    attribute: attr.name().to_string(),
                    value: v,
                    reason: "bonus value violates the configured polarity",
                });
            }
        }
        Ok(Self {
            schema,
            values,
            polarity,
        })
    }

    /// Build from `(name, value)` pairs; unspecified attributes get 0.
    ///
    /// # Errors
    /// Returns an error for unknown names or invalid values.
    pub fn from_named(
        schema: SchemaRef,
        named: &[(&str, f64)],
        polarity: BonusPolarity,
    ) -> Result<Self> {
        let mut values = vec![0.0; schema.num_fairness()];
        for (name, v) in named {
            let idx = schema.fairness_index(name)?;
            values[idx] = *v;
        }
        Self::new(schema, values, polarity)
    }

    /// The schema this bonus vector is aligned with.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Bonus values, ordered per the schema's fairness attributes.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The polarity policy.
    #[must_use]
    pub fn polarity(&self) -> BonusPolarity {
        self.polarity
    }

    /// Bonus for the named fairness attribute.
    ///
    /// # Errors
    /// Returns an error for unknown names.
    pub fn get(&self, name: &str) -> Result<f64> {
        Ok(self.values[self.schema.fairness_index(name)?])
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// L2 norm of the bonus vector (total intervention magnitude).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// A copy rounded to the given granularity (e.g. 0.5 points). Values are
    /// rounded to the nearest multiple of `granularity`.
    ///
    /// # Errors
    /// Returns an error if `granularity` is not positive and finite.
    pub fn rounded_to(&self, granularity: f64) -> Result<Self> {
        if !(granularity.is_finite() && granularity > 0.0) {
            return Err(FairError::InvalidConfig {
                reason: format!("granularity must be positive and finite, got {granularity}"),
            });
        }
        let values = self
            .values
            .iter()
            .map(|v| (v / granularity).round() * granularity)
            .map(|v| self.polarity.clamp(v))
            .collect();
        Ok(Self {
            schema: self.schema.clone(),
            values,
            polarity: self.polarity,
        })
    }

    /// A copy scaled by `proportion` (Figures 2–3: "applying a reducing weight
    /// to bonus points"). `proportion` of 1.0 returns an identical vector,
    /// 0.0 removes the intervention entirely.
    ///
    /// # Errors
    /// Returns an error if `proportion` is negative or non-finite.
    pub fn scaled(&self, proportion: f64) -> Result<Self> {
        if !(proportion.is_finite() && proportion >= 0.0) {
            return Err(FairError::InvalidConfig {
                reason: format!(
                    "scaling proportion must be non-negative and finite, got {proportion}"
                ),
            });
        }
        let values = self.values.iter().map(|v| v * proportion).collect();
        Ok(Self {
            schema: self.schema.clone(),
            values,
            polarity: self.polarity,
        })
    }

    /// A copy with every dimension clamped to the given caps.
    ///
    /// # Errors
    /// Returns an error if the caps' dimensionality differs.
    pub fn capped(&self, caps: &BonusCaps) -> Result<Self> {
        if caps.dims() != self.values.len() {
            return Err(FairError::DimensionMismatch {
                what: "bonus caps",
                expected: self.values.len(),
                actual: caps.dims(),
            });
        }
        let values = self
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| self.polarity.clamp(caps.clamp(i, v)))
            .collect();
        Ok(Self {
            schema: self.schema.clone(),
            values,
            polarity: self.polarity,
        })
    }

    /// Human-readable explanation of the intervention — the transparency
    /// artifact the paper argues should be published to stakeholders before
    /// applications are due.
    #[must_use]
    pub fn explain(&self) -> String {
        let mut lines = Vec::with_capacity(self.values.len() + 1);
        lines.push("Compensatory bonus points:".to_string());
        for (attr, &v) in self.schema.fairness().iter().zip(&self.values) {
            if v == 0.0 {
                lines.push(format!("  {:<12} no adjustment", attr.name()));
            } else {
                match attr.kind() {
                    crate::attributes::FairnessKind::Binary => lines.push(format!(
                        "  {:<12} {v:+.2} points added to every member's score",
                        attr.name()
                    )),
                    crate::attributes::FairnessKind::Continuous => lines.push(format!(
                        "  {:<12} {v:+.2} points multiplied by the attribute value (0-1)",
                        attr.name()
                    )),
                }
            }
        }
        lines.join("\n")
    }
}

impl fmt::Display for BonusVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .schema
            .fairness()
            .iter()
            .zip(&self.values)
            .map(|(a, v)| format!("{}: {v:.2}", a.name()))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;

    fn schema() -> SchemaRef {
        Schema::from_names(&["gpa"], &["low_income", "ell", "special_ed"], &["eni"]).unwrap()
    }

    #[test]
    fn zeros_has_schema_dimensionality() {
        let b = BonusVector::zeros(schema());
        assert_eq!(b.dims(), 4);
        assert_eq!(b.values(), &[0.0; 4]);
        assert_eq!(b.norm(), 0.0);
    }

    #[test]
    fn from_named_fills_missing_with_zero() {
        let b = BonusVector::from_named(
            schema(),
            &[("ell", 11.5), ("eni", 12.0)],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        assert_eq!(b.values(), &[0.0, 11.5, 0.0, 12.0]);
        assert_eq!(b.get("ell").unwrap(), 11.5);
        assert!(b.get("unknown").is_err());
    }

    #[test]
    fn polarity_is_enforced_at_construction() {
        let bad = BonusVector::new(
            schema(),
            vec![-1.0, 0.0, 0.0, 0.0],
            BonusPolarity::NonNegative,
        );
        assert!(bad.is_err());
        let ok = BonusVector::new(
            schema(),
            vec![-1.0, 0.0, 0.0, 0.0],
            BonusPolarity::NonPositive,
        );
        assert!(ok.is_ok());
        let bad2 = BonusVector::new(
            schema(),
            vec![1.0, 0.0, 0.0, 0.0],
            BonusPolarity::NonPositive,
        );
        assert!(bad2.is_err());
    }

    #[test]
    fn polarity_clamp_helper() {
        assert_eq!(BonusPolarity::NonNegative.clamp(-2.0), 0.0);
        assert_eq!(BonusPolarity::NonNegative.clamp(2.0), 2.0);
        assert_eq!(BonusPolarity::NonPositive.clamp(2.0), 0.0);
        assert_eq!(BonusPolarity::NonPositive.clamp(-2.0), -2.0);
    }

    #[test]
    fn rounding_to_half_point_granularity() {
        let b = BonusVector::new(
            schema(),
            vec![1.24, 11.51, 13.76, 0.1],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        let r = b.rounded_to(0.5).unwrap();
        assert_eq!(r.values(), &[1.0, 11.5, 14.0, 0.0]);
    }

    #[test]
    fn rounding_rejects_bad_granularity() {
        let b = BonusVector::zeros(schema());
        assert!(b.rounded_to(0.0).is_err());
        assert!(b.rounded_to(f64::NAN).is_err());
    }

    #[test]
    fn scaling_is_linear_and_validated() {
        let b = BonusVector::new(
            schema(),
            vec![2.0, 10.0, 14.0, 12.0],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        let half = b.scaled(0.5).unwrap();
        assert_eq!(half.values(), &[1.0, 5.0, 7.0, 6.0]);
        let zero = b.scaled(0.0).unwrap();
        assert_eq!(zero.norm(), 0.0);
        assert!(b.scaled(-1.0).is_err());
    }

    #[test]
    fn caps_clamp_magnitudes() {
        let b = BonusVector::new(
            schema(),
            vec![2.0, 25.0, 14.0, 12.0],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        let caps = BonusCaps::uniform(4, 15.0).unwrap();
        let capped = b.capped(&caps).unwrap();
        assert_eq!(capped.values(), &[2.0, 15.0, 14.0, 12.0]);
        // Mismatched caps rejected.
        let caps2 = BonusCaps::uniform(2, 15.0).unwrap();
        assert!(b.capped(&caps2).is_err());
    }

    #[test]
    fn caps_work_for_negative_polarity() {
        let b = BonusVector::new(
            schema(),
            vec![-2.0, -25.0, 0.0, 0.0],
            BonusPolarity::NonPositive,
        )
        .unwrap();
        let caps = BonusCaps::uniform(4, 10.0).unwrap();
        let capped = b.capped(&caps).unwrap();
        assert_eq!(capped.values(), &[-2.0, -10.0, 0.0, 0.0]);
    }

    #[test]
    fn caps_validation() {
        assert!(BonusCaps::uniform(3, -1.0).is_err());
        assert!(BonusCaps::per_dimension(vec![]).is_err());
        assert!(BonusCaps::per_dimension(vec![1.0, f64::NAN]).is_err());
        let caps = BonusCaps::per_dimension(vec![1.0, 2.0]).unwrap();
        assert_eq!(caps.values(), &[1.0, 2.0]);
        assert_eq!(caps.clamp(1, 5.0), 2.0);
        assert_eq!(caps.clamp(1, -5.0), -2.0);
    }

    #[test]
    fn norm_matches_euclidean_norm() {
        let b = BonusVector::new(
            schema(),
            vec![3.0, 4.0, 0.0, 0.0],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        assert!((b.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn explain_mentions_every_nonzero_attribute() {
        let b = BonusVector::from_named(
            schema(),
            &[("ell", 11.5), ("eni", 12.0)],
            BonusPolarity::NonNegative,
        )
        .unwrap();
        let text = b.explain();
        assert!(text.contains("ell"));
        assert!(text.contains("+11.50"));
        assert!(
            text.contains("multiplied"),
            "continuous attributes explain the multiplication"
        );
        assert!(text.contains("no adjustment"));
    }

    #[test]
    fn display_is_compact() {
        let b =
            BonusVector::from_named(schema(), &[("ell", 1.0)], BonusPolarity::NonNegative).unwrap();
        let s = b.to_string();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("ell: 1.00"));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let r = BonusVector::new(schema(), vec![1.0, 2.0], BonusPolarity::NonNegative);
        assert!(matches!(r, Err(FairError::DimensionMismatch { .. })));
    }
}
