//! Deterministic fault injection for robustness testing.
//!
//! Production distributed systems fail in ways unit tests rarely exercise:
//! stalled peers, dropped connections, half-written responses, corrupted
//! payloads, crash-looping replicas. This module gives the workspace one
//! shared, deterministic way to provoke those failures at **named fault
//! points** — a store's shard decode, the serve layer's request path — so the
//! retry/timeout/re-dispatch machinery above them is testable in-process and
//! in CI.
//!
//! A [`FaultPlan`] is a list of [`FaultSpec`]s, each naming a fault point, an
//! optional context filter, a [`FaultMode`], and an activation budget. Plans
//! parse from the `FAIR_FAULT` environment variable with the grammar
//!
//! ```text
//! FAIR_FAULT = spec (";" spec)*
//! spec       = point ["@" ctx] ":" mode
//! mode       = "delay" ":" millis [":" count]
//!            | ("drop" | "close-mid-body" | "corrupt" | "500" | "panic") [":" count]
//! ```
//!
//! * `point` — the fault point's name (`decode`, `serve`, …) or `*` for any.
//! * `ctx` — a substring filter on the checkpoint's context string (a request
//!   path, a store path + shard), so a fault can target one store or one
//!   route without touching unrelated traffic in the same process.
//! * `count` — how many times the spec fires before going inert (a "burst");
//!   omitted means unlimited.
//!
//! `FAIR_FAULT="serve@/partials:500:3"` answers the first three partial-reduce
//! requests with an injected 500; `FAIR_FAULT="decode@#shard1:panic:1"` makes
//! the first decode of shard 1 panic. Code under test consults
//! [`check`] (the process-global plan, initialised from the environment) or an
//! explicitly installed plan; when no spec matches, the checkpoint costs one
//! atomic load on a shared `Arc`.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// What an activated fault does at its checkpoint. The interpretation is the
/// checkpoint's: the store's decode path honours `Delay`/`Panic`, the serve
/// request path honours all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// Stall for the given duration before proceeding normally.
    Delay(Duration),
    /// Drop the connection / abandon the operation without a response.
    Drop,
    /// Send response headers plus a truncated body, then close.
    CloseMidBody,
    /// Deliver a response whose body bytes have been garbled.
    Corrupt,
    /// Answer with an injected HTTP 500.
    Status500,
    /// Panic at the checkpoint.
    Panic,
}

impl FaultMode {
    /// The grammar name of this mode.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Delay(_) => "delay",
            Self::Drop => "drop",
            Self::CloseMidBody => "close-mid-body",
            Self::Corrupt => "corrupt",
            Self::Status500 => "500",
            Self::Panic => "panic",
        }
    }
}

/// One parsed fault: where it fires, what it does, and how often.
#[derive(Debug)]
pub struct FaultSpec {
    /// Fault-point name, or `*` to match every point.
    pub point: String,
    /// Context substring filter (`None` matches every context).
    pub ctx: Option<String>,
    /// The failure to inject.
    pub mode: FaultMode,
    /// Remaining activations; `i64::MAX` means unlimited.
    budget: AtomicI64,
}

impl FaultSpec {
    fn matches(&self, point: &str, ctx: &str) -> bool {
        (self.point == "*" || self.point == point)
            && self.ctx.as_ref().is_none_or(|c| ctx.contains(c.as_str()))
    }

    /// Consume one activation; `false` once the burst budget is spent.
    fn consume(&self) -> bool {
        let mut current = self.budget.load(Ordering::Relaxed);
        loop {
            if current == i64::MAX {
                return true; // unlimited: no decrement, no contention
            }
            if current <= 0 {
                return false;
            }
            match self.budget.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => current = seen,
            }
        }
    }
}

/// A set of fault specs consulted at named checkpoints. An empty plan (the
/// default) injects nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The plan that injects nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan has no specs (checkpoints are then free).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Parse a plan from the `FAIR_FAULT` grammar (see the module docs).
    ///
    /// # Errors
    /// Returns a description of the first malformed spec.
    pub fn parse(input: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for raw in input.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            specs.push(parse_spec(raw)?);
        }
        Ok(Self { specs })
    }

    /// The plan the `FAIR_FAULT` environment variable describes; the empty
    /// plan when unset. A malformed value is reported on stderr and treated
    /// as empty — fault injection must never take a production process down
    /// by itself.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("FAIR_FAULT") {
            Err(_) => Self::none(),
            Ok(value) => FaultPlan::parse(&value).unwrap_or_else(|e| {
                crate::obs::warn("fault", &format!("ignoring malformed FAIR_FAULT: {e}"));
                Self::none()
            }),
        }
    }

    /// Consult the plan at a fault point. Returns the mode to inject when a
    /// matching spec with remaining budget exists (consuming one activation),
    /// `None` otherwise.
    #[must_use]
    pub fn check(&self, point: &str, ctx: &str) -> Option<FaultMode> {
        self.specs
            .iter()
            .find(|s| s.matches(point, ctx) && s.consume())
            .map(|s| s.mode.clone())
    }
}

fn parse_spec(raw: &str) -> Result<FaultSpec, String> {
    let (target, rest) = raw
        .split_once(':')
        .ok_or_else(|| format!("`{raw}`: expected `point:mode`"))?;
    let (point, ctx) = match target.split_once('@') {
        Some((p, c)) => (p, Some(c.to_string())),
        None => (target, None),
    };
    if point.is_empty() {
        return Err(format!("`{raw}`: empty fault point"));
    }
    let mut fields = rest.split(':');
    let mode_name = fields.next().unwrap_or("");
    let parse_count = |field: Option<&str>| -> Result<i64, String> {
        match field {
            None => Ok(i64::MAX),
            Some(c) => c
                .parse::<i64>()
                .ok()
                .filter(|&c| c > 0)
                .ok_or_else(|| format!("`{raw}`: count must be a positive integer")),
        }
    };
    let (mode, budget) = match mode_name {
        "delay" => {
            let millis = fields
                .next()
                .and_then(|m| m.parse::<u64>().ok())
                .ok_or_else(|| format!("`{raw}`: delay needs a millisecond parameter"))?;
            (
                FaultMode::Delay(Duration::from_millis(millis)),
                parse_count(fields.next())?,
            )
        }
        "drop" => (FaultMode::Drop, parse_count(fields.next())?),
        "close-mid-body" => (FaultMode::CloseMidBody, parse_count(fields.next())?),
        "corrupt" => (FaultMode::Corrupt, parse_count(fields.next())?),
        "500" => (FaultMode::Status500, parse_count(fields.next())?),
        "panic" => (FaultMode::Panic, parse_count(fields.next())?),
        other => return Err(format!("`{raw}`: unknown fault mode `{other}`")),
    };
    if fields.next().is_some() {
        return Err(format!("`{raw}`: trailing fields after the count"));
    }
    Ok(FaultSpec {
        point: point.to_string(),
        ctx,
        mode,
        budget: AtomicI64::new(budget),
    })
}

fn global_cell() -> &'static RwLock<Arc<FaultPlan>> {
    static GLOBAL: OnceLock<RwLock<Arc<FaultPlan>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(FaultPlan::from_env())))
}

/// The process-global plan: `FAIR_FAULT` at first use, or whatever
/// [`install`] replaced it with.
#[must_use]
pub fn global() -> Arc<FaultPlan> {
    global_cell()
        .read()
        .expect("fault plan lock poisoned")
        .clone()
}

/// Replace the process-global plan (tests targeting code that consults
/// [`check`], e.g. the store decode path). Scope specs with `@ctx` filters so
/// concurrently running tests cannot trip each other's faults.
pub fn install(plan: FaultPlan) {
    *global_cell().write().expect("fault plan lock poisoned") = Arc::new(plan);
}

/// Consult the process-global plan at a fault point. Activations are
/// observable: each one bumps `fair_fault_injections_total{point,mode}` and
/// emits a tagged `fault.inject` event, so fault-matrix tests (and a
/// production operator reading `/metrics`) can see exactly which injected
/// failures fired where.
#[must_use]
pub fn check(point: &str, ctx: &str) -> Option<FaultMode> {
    let plan = global();
    if plan.is_empty() {
        return None;
    }
    let mode = plan.check(point, ctx)?;
    crate::obs::counter(
        "fair_fault_injections_total",
        &[("point", point), ("mode", mode.name())],
    )
    .inc();
    crate::obs::Event::new("fault.inject")
        .field("point", point)
        .field("ctx", ctx)
        .field("mode", mode.name())
        .emit();
    Some(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_mode_with_ctx_and_count() {
        let plan = FaultPlan::parse(
            "decode@#shard1:panic:1; serve@/partials:delay:25:3; *:drop; \
             serve:close-mid-body:2; serve:corrupt; serve:500:4",
        )
        .unwrap();
        assert_eq!(plan.specs.len(), 6);
        assert_eq!(plan.specs[0].point, "decode");
        assert_eq!(plan.specs[0].ctx.as_deref(), Some("#shard1"));
        assert_eq!(plan.specs[0].mode, FaultMode::Panic);
        assert_eq!(
            plan.specs[1].mode,
            FaultMode::Delay(Duration::from_millis(25))
        );
        assert_eq!(plan.specs[2].point, "*");
        assert_eq!(plan.specs[2].ctx, None);
        assert_eq!(plan.specs[5].mode.name(), "500");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "decode",           // no mode
            ":panic",           // empty point
            "decode:jitter",    // unknown mode
            "decode:delay",     // delay without millis
            "decode:delay:abc", // non-numeric millis
            "decode:drop:0",    // zero count
            "decode:drop:-2",   // negative count
            "decode:drop:1:9",  // trailing field
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn matching_respects_point_and_ctx_substring() {
        let plan = FaultPlan::parse("serve@/stores/a/partials:500").unwrap();
        assert_eq!(
            plan.check("serve", "/stores/a/partials"),
            Some(FaultMode::Status500)
        );
        assert_eq!(plan.check("serve", "/stores/b/partials"), None);
        assert_eq!(plan.check("decode", "/stores/a/partials"), None);
        let any = FaultPlan::parse("*:drop").unwrap();
        assert_eq!(any.check("anything", "anywhere"), Some(FaultMode::Drop));
    }

    #[test]
    fn burst_counts_exhaust_and_unlimited_specs_do_not() {
        let plan = FaultPlan::parse("p:500:2").unwrap();
        assert!(plan.check("p", "x").is_some());
        assert!(plan.check("p", "x").is_some());
        assert!(plan.check("p", "x").is_none(), "burst of 2 is spent");
        let unlimited = FaultPlan::parse("p:500").unwrap();
        for _ in 0..100 {
            assert!(unlimited.check("p", "x").is_some());
        }
    }

    #[test]
    fn first_matching_spec_wins_and_exhausted_specs_fall_through() {
        let plan = FaultPlan::parse("p:500:1; p:drop").unwrap();
        assert_eq!(plan.check("p", "x"), Some(FaultMode::Status500));
        assert_eq!(plan.check("p", "x"), Some(FaultMode::Drop), "falls through");
    }

    #[test]
    fn empty_and_whitespace_plans_are_empty() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ;; ").unwrap().is_empty());
        assert!(FaultPlan::none().check("p", "x").is_none());
    }
}
