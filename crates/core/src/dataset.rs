//! Dataset container: a schema plus the collection of objects to be ranked.
//!
//! Storage is **columnar** (structure-of-arrays): all feature vectors live in
//! one contiguous row-major matrix, all fairness vectors in another, with ids
//! and labels in parallel arrays. The DCA hot loop — effective-score
//! computation, centroids, selection metrics — therefore streams over dense
//! `f64` slices instead of chasing one heap allocation per object, which is
//! what makes the per-step cost truly sample-bounded in practice
//! (Section IV-D). Rows are exposed through the zero-copy
//! [`ObjectView`](crate::object::ObjectView); the owned
//! [`DataObject`](crate::object::DataObject) remains the construction-time
//! input type.

use crate::attributes::SchemaRef;
use crate::error::{FairError, Result};
use crate::object::{DataObject, ObjectId, ObjectView};
use rand::seq::index::{sample_into, IndexBuffer};
use rand::Rng;
use std::borrow::Cow;

/// A collection of ranked objects sharing one [`crate::Schema`], stored
/// column-wise.
///
/// The dataset is the paper's set `O`. It offers the primitives every metric
/// and algorithm needs: fairness centroids (the `D_O` term of Definition 3),
/// uniform random samples (the `S` of Algorithm 1), and subset views.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: SchemaRef,
    ids: Vec<ObjectId>,
    /// Row-major `len × num_features` matrix of ranking features.
    features: Vec<f64>,
    /// Row-major `len × num_fairness` matrix of fairness attributes.
    fairness: Vec<f64>,
    labels: Vec<Option<bool>>,
}

impl Dataset {
    /// Create a dataset from a schema and objects.
    ///
    /// # Errors
    /// Returns an error if any object's vectors do not match the schema
    /// dimensionality. (Value-domain validation is the responsibility of the
    /// object constructors.)
    pub fn new(schema: SchemaRef, objects: Vec<DataObject>) -> Result<Self> {
        let mut dataset = Self::with_capacity(schema, objects.len());
        for o in objects {
            dataset.push(o)?;
        }
        Ok(dataset)
    }

    /// Create an empty dataset with the given schema.
    #[must_use]
    pub fn empty(schema: SchemaRef) -> Self {
        Self::with_capacity(schema, 0)
    }

    /// Assemble a dataset directly from its columns — the decode path of
    /// storage backends that persist the columnar layout as-is (e.g. the
    /// `fair-store` shard files). Lengths are validated against the schema;
    /// the *values* are trusted exactly like
    /// [`DataObject::new_unchecked`](crate::object::DataObject::new_unchecked)
    /// trusts its caller (integrity is the storage layer's checksum job).
    ///
    /// # Errors
    /// Returns a dimension error when any column's length is inconsistent
    /// with `ids.len()` rows under the schema.
    pub fn from_columns(
        schema: SchemaRef,
        ids: Vec<ObjectId>,
        features: Vec<f64>,
        fairness: Vec<f64>,
        labels: Vec<Option<bool>>,
    ) -> Result<Self> {
        let n = ids.len();
        if features.len() != n * schema.num_features() {
            return Err(FairError::DimensionMismatch {
                what: "feature matrix",
                expected: n * schema.num_features(),
                actual: features.len(),
            });
        }
        if fairness.len() != n * schema.num_fairness() {
            return Err(FairError::DimensionMismatch {
                what: "fairness matrix",
                expected: n * schema.num_fairness(),
                actual: fairness.len(),
            });
        }
        if labels.len() != n {
            return Err(FairError::DimensionMismatch {
                what: "label column",
                expected: n,
                actual: labels.len(),
            });
        }
        Ok(Self {
            schema,
            ids,
            features,
            fairness,
            labels,
        })
    }

    /// Create an empty dataset with room for `capacity` objects.
    #[must_use]
    pub fn with_capacity(schema: SchemaRef, capacity: usize) -> Self {
        let nf = schema.num_features();
        let na = schema.num_fairness();
        Self {
            schema,
            ids: Vec::with_capacity(capacity),
            features: Vec::with_capacity(capacity * nf),
            fairness: Vec::with_capacity(capacity * na),
            labels: Vec::with_capacity(capacity),
        }
    }

    /// The shared schema.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the dataset holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The contiguous row-major `len × num_features` feature matrix.
    #[must_use]
    pub fn features_matrix(&self) -> &[f64] {
        &self.features
    }

    /// The contiguous row-major `len × num_fairness` fairness matrix.
    #[must_use]
    pub fn fairness_matrix(&self) -> &[f64] {
        &self.fairness
    }

    /// The object ids, in insertion order.
    #[must_use]
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// The labels, in insertion order.
    #[must_use]
    pub fn labels(&self) -> &[Option<bool>] {
        &self.labels
    }

    /// The feature row of object `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn feature_row(&self, i: usize) -> &[f64] {
        let w = self.schema.num_features();
        &self.features[i * w..i * w + w]
    }

    /// The fairness row of object `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn fairness_row(&self, i: usize) -> &[f64] {
        let w = self.schema.num_fairness();
        &self.fairness[i * w..i * w + w]
    }

    /// Zero-copy view of the object at index `i` (insertion order).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> ObjectView<'_> {
        ObjectView::new(
            self.ids[i],
            self.feature_row(i),
            self.fairness_row(i),
            self.labels[i],
        )
    }

    /// Iterate over all objects, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectView<'_>> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Append an object (copying its vectors into the column store).
    ///
    /// # Errors
    /// Returns an error if the object's vectors do not match the schema.
    pub fn push(&mut self, object: DataObject) -> Result<()> {
        if object.features().len() != self.schema.num_features() {
            return Err(FairError::DimensionMismatch {
                what: "feature vector",
                expected: self.schema.num_features(),
                actual: object.features().len(),
            });
        }
        if object.fairness().len() != self.schema.num_fairness() {
            return Err(FairError::DimensionMismatch {
                what: "fairness vector",
                expected: self.schema.num_fairness(),
                actual: object.fairness().len(),
            });
        }
        self.ids.push(object.id());
        self.features.extend_from_slice(object.features());
        self.fairness.extend_from_slice(object.fairness());
        self.labels.push(object.label());
        Ok(())
    }

    /// Remove every object, retaining the allocated capacity — the gather
    /// buffer reset of the sharded-sampling DCA loop.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.features.clear();
        self.fairness.clear();
        self.labels.clear();
    }

    /// Copy a row of another (schema-compatible) dataset into this one.
    pub(crate) fn push_row(&mut self, view: ObjectView<'_>) {
        debug_assert_eq!(view.features().len(), self.schema.num_features());
        debug_assert_eq!(view.fairness().len(), self.schema.num_fairness());
        self.ids.push(view.id());
        self.features.extend_from_slice(view.features());
        self.fairness.extend_from_slice(view.fairness());
        self.labels.push(view.label());
    }

    /// Look up an object by id (linear scan; datasets are typically iterated,
    /// not point-queried).
    #[must_use]
    pub fn get_by_id(&self, id: ObjectId) -> Option<ObjectView<'_>> {
        self.ids
            .iter()
            .position(|&i| i == id)
            .map(|pos| self.row(pos))
    }

    /// Replace the label of object `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn set_label(&mut self, i: usize, label: Option<bool>) {
        self.labels[i] = label;
    }

    /// Centroid of the fairness attributes over the whole dataset — the
    /// `D_O` term of Definition 3.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset.
    pub fn fairness_centroid(&self) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.fairness_centroid_into(&mut out)?;
        Ok(out)
    }

    /// [`Dataset::fairness_centroid`] writing into a caller-provided buffer.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset.
    pub fn fairness_centroid_into(&self, out: &mut Vec<f64>) -> Result<()> {
        if self.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        let dims = self.schema.num_fairness();
        if dims == 0 {
            out.clear();
            return Ok(());
        }
        // One dense pass over the fairness matrix; the kernel's row order is
        // the same as a gathered walk over 0..len, so views agree bit-wise.
        crate::kernel::col_sums_into(&self.fairness, dims, out);
        let n = self.len() as f64;
        for a in out.iter_mut() {
            *a /= n;
        }
        Ok(())
    }

    /// Centroid of the fairness attributes over a subset of object indices —
    /// the `D_k` term of Definition 3 when the indices are a top-k selection.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] when `indices` is empty.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn fairness_centroid_of(&self, indices: &[usize]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        centroid_rows_into(
            self.schema.num_fairness(),
            indices.iter().map(|&i| self.fairness_row(i)),
            &mut out,
        )?;
        Ok(out)
    }

    /// Fraction of objects belonging to the (binary) group at fairness index
    /// `dim`, i.e. with value `>= 0.5`.
    #[must_use]
    pub fn group_frequency(&self, dim: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let w = self.schema.num_fairness();
        if dim >= w {
            return 0.0;
        }
        let count = crate::kernel::count_ge_half(&self.fairness, w, dim);
        count as f64 / self.len() as f64
    }

    /// Frequency of the *rarest* fairness group — the `r` of the paper's
    /// sample-size rule `O(max(1/k, 1/r))` (Section IV-D).
    #[must_use]
    pub fn rarest_group_frequency(&self) -> f64 {
        (0..self.schema.num_fairness())
            .map(|d| self.group_frequency(d))
            .filter(|f| *f > 0.0)
            .fold(1.0_f64, f64::min)
    }

    /// Draw a uniform random sample (without replacement) of `size` objects.
    /// When `size >= len()` the whole dataset is returned (in index order).
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset and
    /// [`FairError::InvalidConfig`] when `size == 0`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, size: usize) -> Result<SampleView<'_>> {
        let mut buf = IndexBuffer::new();
        self.sample_indices_into(rng, size, &mut buf)?;
        Ok(SampleView {
            dataset: self,
            indices: Cow::Owned(buf.into_vec()),
        })
    }

    /// Allocation-free variant of [`Dataset::sample`]: draw the sampled
    /// indices into a reusable [`IndexBuffer`]. Combine with
    /// [`Dataset::view_of`] to obtain a borrowed [`SampleView`]; this is the
    /// DCA hot-loop path.
    ///
    /// The index sequence is identical to [`Dataset::sample`] for the same RNG
    /// state, so sampled experiments are reproducible across both entry
    /// points.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset and
    /// [`FairError::InvalidConfig`] when `size == 0`.
    pub fn sample_indices_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        size: usize,
        buf: &mut IndexBuffer,
    ) -> Result<()> {
        if self.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        if size == 0 {
            return Err(FairError::InvalidConfig {
                reason: "sample size must be positive".into(),
            });
        }
        if size >= self.len() {
            buf.fill_sequential(self.len());
        } else {
            sample_into(rng, self.len(), size, buf);
        }
        Ok(())
    }

    /// Borrow the whole dataset as a [`SampleView`] (used by Full DCA, which
    /// never samples).
    #[must_use]
    pub fn full_view(&self) -> SampleView<'_> {
        SampleView {
            dataset: self,
            indices: Cow::Owned((0..self.len()).collect()),
        }
    }

    /// Borrow a view over externally owned indices without copying them —
    /// the allocation-free counterpart of [`SampleView::from_indices`].
    ///
    /// # Panics
    /// Panics (in debug builds) if any index is out of bounds; out-of-bounds
    /// indices surface as row-access panics otherwise.
    #[must_use]
    pub fn view_of<'a>(&'a self, indices: &'a [usize]) -> SampleView<'a> {
        debug_assert!(indices.iter().all(|&i| i < self.len()));
        SampleView {
            dataset: self,
            indices: Cow::Borrowed(indices),
        }
    }

    /// Build a new dataset containing only the objects selected by `predicate`
    /// (e.g. one school district). Ids are preserved.
    #[must_use]
    pub fn filter(&self, mut predicate: impl FnMut(ObjectView<'_>) -> bool) -> Dataset {
        let mut out = Self::with_capacity(self.schema.clone(), 0);
        for i in 0..self.len() {
            let view = self.row(i);
            if predicate(view) {
                out.push_row(view);
            }
        }
        out
    }

    /// Build a new dataset containing the objects at the given indices, in the
    /// given order. Ids are preserved.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Self::with_capacity(self.schema.clone(), indices.len());
        for &i in indices {
            out.push_row(self.row(i));
        }
        out
    }

    /// Whether every object carries a ground-truth outcome label.
    #[must_use]
    pub fn fully_labelled(&self) -> bool {
        !self.is_empty() && self.labels.iter().all(Option::is_some)
    }
}

/// A borrowed view over a subset of a dataset's objects (a sample, a district,
/// or the full dataset). All metrics and DCA steps operate on views so that
/// sampled and full evaluation share one code path.
///
/// The index list is a [`Cow`]: experiment code owns its indices
/// ([`SampleView::from_indices`], [`Dataset::sample`]) while the DCA hot loop
/// borrows a reusable buffer ([`Dataset::view_of`]) so that no per-step
/// allocation occurs.
#[derive(Debug, Clone)]
pub struct SampleView<'a> {
    dataset: &'a Dataset,
    indices: Cow<'a, [usize]>,
}

impl<'a> SampleView<'a> {
    /// Construct a view from explicit indices into `dataset`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn from_indices(dataset: &'a Dataset, indices: Vec<usize>) -> Self {
        for &i in &indices {
            assert!(
                i < dataset.len(),
                "index {i} out of bounds for dataset of {}",
                dataset.len()
            );
        }
        Self {
            dataset,
            indices: Cow::Owned(indices),
        }
    }

    /// The underlying dataset.
    #[must_use]
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The schema of the underlying dataset.
    #[must_use]
    pub fn schema(&self) -> &'a SchemaRef {
        self.dataset.schema()
    }

    /// Indices (into the dataset) of the viewed objects.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of objects in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate over the viewed objects.
    pub fn iter(&self) -> impl Iterator<Item = ObjectView<'a>> + '_ {
        self.indices.iter().map(move |&i| self.dataset.row(i))
    }

    /// The `i`-th object of the view.
    #[must_use]
    pub fn object(&self, i: usize) -> ObjectView<'a> {
        self.dataset.row(self.indices[i])
    }

    /// Fairness centroid over the whole view (`D_O` computed on a sample —
    /// Lemma 4.2's estimator).
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty view.
    pub fn fairness_centroid(&self) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.fairness_centroid_into(&mut out)?;
        Ok(out)
    }

    /// [`SampleView::fairness_centroid`] writing into a caller-provided
    /// buffer.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty view.
    pub fn fairness_centroid_into(&self, out: &mut Vec<f64>) -> Result<()> {
        centroid_rows_into(
            self.dataset.schema().num_fairness(),
            self.indices.iter().map(|&i| self.dataset.fairness_row(i)),
            out,
        )
    }

    /// Fairness centroid over a subset of *view positions* (not dataset
    /// indices) — used for the selected top-k of a sample (Lemma 4.4).
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] when `positions` is empty.
    pub fn fairness_centroid_of(&self, positions: &[usize]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.fairness_centroid_of_into(positions, &mut out)?;
        Ok(out)
    }

    /// [`SampleView::fairness_centroid_of`] writing into a caller-provided
    /// buffer.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] when `positions` is empty.
    pub fn fairness_centroid_of_into(&self, positions: &[usize], out: &mut Vec<f64>) -> Result<()> {
        centroid_rows_into(
            self.dataset.schema().num_fairness(),
            positions
                .iter()
                .map(|&p| self.dataset.fairness_row(self.indices[p])),
            out,
        )
    }
}

/// Mean of an iterator of equally sized fairness rows, written into `out` —
/// accumulated by [`crate::kernel::col_sums_rows_into`], so gathered
/// centroids share the canonical kernel order with the dense path.
fn centroid_rows_into<'a>(
    dims: usize,
    rows: impl Iterator<Item = &'a [f64]>,
    out: &mut Vec<f64>,
) -> Result<()> {
    let n = if dims == 0 {
        out.clear();
        rows.count()
    } else {
        crate::kernel::col_sums_rows_into(dims, rows, out)
    };
    if n == 0 {
        return Err(FairError::EmptyDataset);
    }
    for a in out.iter_mut() {
        *a /= n as f64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> SchemaRef {
        Schema::from_names(&["score"], &["a", "b"], &[]).unwrap()
    }

    fn make_dataset() -> Dataset {
        let s = schema();
        let objects = vec![
            DataObject::new_unchecked(0, vec![1.0], vec![1.0, 0.0], Some(true)),
            DataObject::new_unchecked(1, vec![2.0], vec![0.0, 1.0], Some(false)),
            DataObject::new_unchecked(2, vec![3.0], vec![1.0, 1.0], Some(true)),
            DataObject::new_unchecked(3, vec![4.0], vec![0.0, 0.0], Some(false)),
        ];
        Dataset::new(s, objects).unwrap()
    }

    #[test]
    fn centroid_is_mean_of_fairness_vectors() {
        let d = make_dataset();
        let c = d.fairness_centroid().unwrap();
        assert_eq!(c, vec![0.5, 0.5]);
    }

    #[test]
    fn centroid_of_subset() {
        let d = make_dataset();
        let c = d.fairness_centroid_of(&[0, 2]).unwrap();
        assert_eq!(c, vec![1.0, 0.5]);
    }

    #[test]
    fn empty_centroid_is_error() {
        let d = Dataset::empty(schema());
        assert!(matches!(
            d.fairness_centroid(),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn columnar_storage_exposes_contiguous_rows() {
        let d = make_dataset();
        assert_eq!(d.features_matrix(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.fairness_matrix().len(), 8);
        assert_eq!(d.feature_row(2), &[3.0]);
        assert_eq!(d.fairness_row(2), &[1.0, 1.0]);
        let row = d.row(1);
        assert_eq!(row.id(), ObjectId(1));
        assert_eq!(row.features(), &[2.0]);
        assert_eq!(row.fairness(), &[0.0, 1.0]);
        assert_eq!(row.label(), Some(false));
        assert_eq!(d.iter().count(), 4);
    }

    #[test]
    fn group_frequency_and_rarest() {
        let d = make_dataset();
        assert!((d.group_frequency(0) - 0.5).abs() < 1e-12);
        assert!((d.group_frequency(1) - 0.5).abs() < 1e-12);
        assert!((d.rarest_group_frequency() - 0.5).abs() < 1e-12);
        assert_eq!(d.group_frequency(99), 0.0);
    }

    #[test]
    fn sample_without_replacement_has_unique_indices() {
        let d = make_dataset();
        let mut rng = StdRng::seed_from_u64(42);
        let view = d.sample(&mut rng, 3).unwrap();
        assert_eq!(view.len(), 3);
        let mut idx = view.indices().to_vec();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 3, "indices must be unique");
    }

    #[test]
    fn sample_into_matches_owning_sample_for_equal_seeds() {
        let d = {
            let s = schema();
            let objects = (0..200_u64)
                .map(|i| DataObject::new_unchecked(i, vec![i as f64], vec![0.0, 1.0], None))
                .collect();
            Dataset::new(s, objects).unwrap()
        };
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut buf = IndexBuffer::new();
        for size in [3, 20, 150, 500] {
            let owned = d.sample(&mut rng_a, size).unwrap();
            d.sample_indices_into(&mut rng_b, size, &mut buf).unwrap();
            assert_eq!(owned.indices(), buf.as_slice(), "size {size}");
            let borrowed = d.view_of(buf.as_slice());
            assert_eq!(borrowed.len(), owned.len());
        }
    }

    #[test]
    fn oversized_sample_returns_whole_dataset() {
        let d = make_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let view = d.sample(&mut rng, 100).unwrap();
        assert_eq!(view.len(), d.len());
    }

    #[test]
    fn zero_sample_size_is_error() {
        let d = make_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.sample(&mut rng, 0).is_err());
    }

    #[test]
    fn sample_from_empty_dataset_is_error() {
        let d = Dataset::empty(schema());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            d.sample(&mut rng, 5),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn view_centroid_matches_dataset_for_full_view() {
        let d = make_dataset();
        let v = d.full_view();
        assert_eq!(
            v.fairness_centroid().unwrap(),
            d.fairness_centroid().unwrap()
        );
        assert_eq!(v.len(), d.len());
    }

    #[test]
    fn view_positions_are_view_relative() {
        let d = make_dataset();
        let v = SampleView::from_indices(&d, vec![3, 0]);
        // Position 0 of the view is dataset object 3.
        assert_eq!(v.object(0).id(), ObjectId(3));
        let c = v.fairness_centroid_of(&[0]).unwrap();
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn filter_preserves_ids_and_schema() {
        let d = make_dataset();
        let filtered = d.filter(|o| o.label() == Some(true));
        assert_eq!(filtered.len(), 2);
        assert!(filtered.get_by_id(ObjectId(0)).is_some());
        assert!(filtered.get_by_id(ObjectId(1)).is_none());
    }

    #[test]
    fn subset_gathers_rows_in_order() {
        let d = make_dataset();
        let s = d.subset(&[2, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0).id(), ObjectId(2));
        assert_eq!(s.row(1).id(), ObjectId(0));
        assert_eq!(s.feature_row(0), d.feature_row(2));
    }

    #[test]
    fn push_validates_dimensions() {
        let mut d = make_dataset();
        let bad = DataObject::new_unchecked(9, vec![1.0, 2.0], vec![0.0, 1.0], None);
        assert!(d.push(bad).is_err());
        let good = DataObject::new_unchecked(9, vec![1.0], vec![0.0, 1.0], None);
        assert!(d.push(good).is_ok());
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn fully_labelled_detection() {
        let d = make_dataset();
        assert!(d.fully_labelled());
        let mut d2 = d.clone();
        d2.push(DataObject::new_unchecked(
            10,
            vec![1.0],
            vec![0.0, 0.0],
            None,
        ))
        .unwrap();
        assert!(!d2.fully_labelled());
        d2.set_label(4, Some(true));
        assert!(d2.fully_labelled());
        assert!(!Dataset::empty(schema()).fully_labelled());
    }

    #[test]
    fn dataset_rejects_mismatched_objects_at_construction() {
        let s = schema();
        let bad = vec![DataObject::new_unchecked(0, vec![1.0], vec![1.0], None)];
        assert!(Dataset::new(s, bad).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_from_bad_indices_panics() {
        let d = make_dataset();
        let _ = SampleView::from_indices(&d, vec![99]);
    }
}
