//! Dataset container: a schema plus the collection of objects to be ranked.

use crate::attributes::SchemaRef;
use crate::error::{FairError, Result};
use crate::object::{DataObject, ObjectId};
use rand::seq::index::sample as index_sample;
use rand::Rng;

/// A collection of [`DataObject`]s sharing one [`crate::Schema`].
///
/// The dataset is the paper's set `O`. It offers the primitives every metric
/// and algorithm needs: fairness centroids (the `D_O` term of Definition 3),
/// uniform random samples (the `S` of Algorithm 1), and subset views.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: SchemaRef,
    objects: Vec<DataObject>,
}

impl Dataset {
    /// Create a dataset from a schema and objects.
    ///
    /// # Errors
    /// Returns an error if any object's vectors do not match the schema
    /// dimensionality. (Value-domain validation is the responsibility of the
    /// object constructors.)
    pub fn new(schema: SchemaRef, objects: Vec<DataObject>) -> Result<Self> {
        for o in &objects {
            if o.features().len() != schema.num_features() {
                return Err(FairError::DimensionMismatch {
                    what: "feature vector",
                    expected: schema.num_features(),
                    actual: o.features().len(),
                });
            }
            if o.fairness().len() != schema.num_fairness() {
                return Err(FairError::DimensionMismatch {
                    what: "fairness vector",
                    expected: schema.num_fairness(),
                    actual: o.fairness().len(),
                });
            }
        }
        Ok(Self { schema, objects })
    }

    /// Create an empty dataset with the given schema.
    #[must_use]
    pub fn empty(schema: SchemaRef) -> Self {
        Self {
            schema,
            objects: Vec::new(),
        }
    }

    /// The shared schema.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// All objects, in insertion order.
    #[must_use]
    pub fn objects(&self) -> &[DataObject] {
        &self.objects
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the dataset holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Append an object.
    ///
    /// # Errors
    /// Returns an error if the object's vectors do not match the schema.
    pub fn push(&mut self, object: DataObject) -> Result<()> {
        if object.features().len() != self.schema.num_features() {
            return Err(FairError::DimensionMismatch {
                what: "feature vector",
                expected: self.schema.num_features(),
                actual: object.features().len(),
            });
        }
        if object.fairness().len() != self.schema.num_fairness() {
            return Err(FairError::DimensionMismatch {
                what: "fairness vector",
                expected: self.schema.num_fairness(),
                actual: object.fairness().len(),
            });
        }
        self.objects.push(object);
        Ok(())
    }

    /// Look up an object by id (linear scan; datasets are typically iterated,
    /// not point-queried).
    #[must_use]
    pub fn get_by_id(&self, id: ObjectId) -> Option<&DataObject> {
        self.objects.iter().find(|o| o.id() == id)
    }

    /// Centroid of the fairness attributes over the whole dataset — the
    /// `D_O` term of Definition 3.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset.
    pub fn fairness_centroid(&self) -> Result<Vec<f64>> {
        centroid_of(&self.schema, self.objects.iter())
    }

    /// Centroid of the fairness attributes over a subset of object indices —
    /// the `D_k` term of Definition 3 when the indices are a top-k selection.
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] when `indices` is empty.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn fairness_centroid_of(&self, indices: &[usize]) -> Result<Vec<f64>> {
        centroid_of(&self.schema, indices.iter().map(|&i| &self.objects[i]))
    }

    /// Fraction of objects belonging to the (binary) group at fairness index
    /// `dim`, i.e. with value `>= 0.5`.
    #[must_use]
    pub fn group_frequency(&self, dim: usize) -> f64 {
        if self.objects.is_empty() {
            return 0.0;
        }
        let count = self.objects.iter().filter(|o| o.in_group(dim)).count();
        count as f64 / self.objects.len() as f64
    }

    /// Frequency of the *rarest* fairness group — the `r` of the paper's
    /// sample-size rule `O(max(1/k, 1/r))` (Section IV-D).
    #[must_use]
    pub fn rarest_group_frequency(&self) -> f64 {
        (0..self.schema.num_fairness())
            .map(|d| self.group_frequency(d))
            .filter(|f| *f > 0.0)
            .fold(1.0_f64, f64::min)
    }

    /// Draw a uniform random sample (without replacement) of `size` objects.
    /// When `size >= len()` the whole dataset is returned (in index order).
    ///
    /// # Errors
    /// Returns [`FairError::EmptyDataset`] on an empty dataset and
    /// [`FairError::InvalidConfig`] when `size == 0`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, size: usize) -> Result<SampleView<'_>> {
        if self.objects.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        if size == 0 {
            return Err(FairError::InvalidConfig {
                reason: "sample size must be positive".into(),
            });
        }
        let indices: Vec<usize> = if size >= self.objects.len() {
            (0..self.objects.len()).collect()
        } else {
            index_sample(rng, self.objects.len(), size).into_vec()
        };
        Ok(SampleView {
            dataset: self,
            indices,
        })
    }

    /// Borrow the whole dataset as a [`SampleView`] (used by Full DCA, which
    /// never samples).
    #[must_use]
    pub fn full_view(&self) -> SampleView<'_> {
        SampleView {
            dataset: self,
            indices: (0..self.objects.len()).collect(),
        }
    }

    /// Build a new dataset containing only the objects selected by `predicate`
    /// (e.g. one school district). Ids are preserved.
    #[must_use]
    pub fn filter(&self, mut predicate: impl FnMut(&DataObject) -> bool) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            objects: self
                .objects
                .iter()
                .filter(|o| predicate(o))
                .cloned()
                .collect(),
        }
    }

    /// Build a new dataset containing the objects at the given indices, in the
    /// given order. Ids are preserved.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            schema: self.schema.clone(),
            objects: indices.iter().map(|&i| self.objects[i].clone()).collect(),
        }
    }

    /// Whether every object carries a ground-truth outcome label.
    #[must_use]
    pub fn fully_labelled(&self) -> bool {
        !self.objects.is_empty() && self.objects.iter().all(|o| o.label().is_some())
    }
}

/// A borrowed view over a subset of a dataset's objects (a sample, a district,
/// or the full dataset). All metrics and DCA steps operate on views so that
/// sampled and full evaluation share one code path.
#[derive(Debug, Clone)]
pub struct SampleView<'a> {
    dataset: &'a Dataset,
    indices: Vec<usize>,
}

impl<'a> SampleView<'a> {
    /// Construct a view from explicit indices into `dataset`.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn from_indices(dataset: &'a Dataset, indices: Vec<usize>) -> Self {
        for &i in &indices {
            assert!(
                i < dataset.len(),
                "index {i} out of bounds for dataset of {}",
                dataset.len()
            );
        }
        Self { dataset, indices }
    }

    /// The underlying dataset.
    #[must_use]
    pub fn dataset(&self) -> &Dataset {
        self.dataset
    }

    /// The schema of the underlying dataset.
    #[must_use]
    pub fn schema(&self) -> &SchemaRef {
        self.dataset.schema()
    }

    /// Indices (into the dataset) of the viewed objects.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of objects in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate over the viewed objects.
    pub fn iter(&self) -> impl Iterator<Item = &DataObject> + '_ {
        self.indices
            .iter()
            .map(move |&i| &self.dataset.objects()[i])
    }

    /// The `i`-th object of the view.
    #[must_use]
    pub fn object(&self, i: usize) -> &DataObject {
        &self.dataset.objects()[self.indices[i]]
    }

    /// Fairness centroid over the whole view (`D_O` computed on a sample —
    /// Lemma 4.2's estimator).
    pub fn fairness_centroid(&self) -> Result<Vec<f64>> {
        centroid_of(self.dataset.schema(), self.iter())
    }

    /// Fairness centroid over a subset of *view positions* (not dataset
    /// indices) — used for the selected top-k of a sample (Lemma 4.4).
    pub fn fairness_centroid_of(&self, positions: &[usize]) -> Result<Vec<f64>> {
        centroid_of(
            self.dataset.schema(),
            positions.iter().map(|&p| self.object(p)),
        )
    }
}

/// Mean fairness vector of an object iterator.
fn centroid_of<'a>(
    schema: &SchemaRef,
    objects: impl Iterator<Item = &'a DataObject>,
) -> Result<Vec<f64>> {
    let mut acc = vec![0.0; schema.num_fairness()];
    let mut n = 0_usize;
    for o in objects {
        for (a, v) in acc.iter_mut().zip(o.fairness()) {
            *a += v;
        }
        n += 1;
    }
    if n == 0 {
        return Err(FairError::EmptyDataset);
    }
    for a in &mut acc {
        *a /= n as f64;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> SchemaRef {
        Schema::from_names(&["score"], &["a", "b"], &[]).unwrap()
    }

    fn make_dataset() -> Dataset {
        let s = schema();
        let objects = vec![
            DataObject::new_unchecked(0, vec![1.0], vec![1.0, 0.0], Some(true)),
            DataObject::new_unchecked(1, vec![2.0], vec![0.0, 1.0], Some(false)),
            DataObject::new_unchecked(2, vec![3.0], vec![1.0, 1.0], Some(true)),
            DataObject::new_unchecked(3, vec![4.0], vec![0.0, 0.0], Some(false)),
        ];
        Dataset::new(s, objects).unwrap()
    }

    #[test]
    fn centroid_is_mean_of_fairness_vectors() {
        let d = make_dataset();
        let c = d.fairness_centroid().unwrap();
        assert_eq!(c, vec![0.5, 0.5]);
    }

    #[test]
    fn centroid_of_subset() {
        let d = make_dataset();
        let c = d.fairness_centroid_of(&[0, 2]).unwrap();
        assert_eq!(c, vec![1.0, 0.5]);
    }

    #[test]
    fn empty_centroid_is_error() {
        let d = Dataset::empty(schema());
        assert!(matches!(
            d.fairness_centroid(),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn group_frequency_and_rarest() {
        let d = make_dataset();
        assert!((d.group_frequency(0) - 0.5).abs() < 1e-12);
        assert!((d.group_frequency(1) - 0.5).abs() < 1e-12);
        assert!((d.rarest_group_frequency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_without_replacement_has_unique_indices() {
        let d = make_dataset();
        let mut rng = StdRng::seed_from_u64(42);
        let view = d.sample(&mut rng, 3).unwrap();
        assert_eq!(view.len(), 3);
        let mut idx = view.indices().to_vec();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 3, "indices must be unique");
    }

    #[test]
    fn oversized_sample_returns_whole_dataset() {
        let d = make_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let view = d.sample(&mut rng, 100).unwrap();
        assert_eq!(view.len(), d.len());
    }

    #[test]
    fn zero_sample_size_is_error() {
        let d = make_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.sample(&mut rng, 0).is_err());
    }

    #[test]
    fn sample_from_empty_dataset_is_error() {
        let d = Dataset::empty(schema());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            d.sample(&mut rng, 5),
            Err(FairError::EmptyDataset)
        ));
    }

    #[test]
    fn view_centroid_matches_dataset_for_full_view() {
        let d = make_dataset();
        let v = d.full_view();
        assert_eq!(
            v.fairness_centroid().unwrap(),
            d.fairness_centroid().unwrap()
        );
        assert_eq!(v.len(), d.len());
    }

    #[test]
    fn view_positions_are_view_relative() {
        let d = make_dataset();
        let v = SampleView::from_indices(&d, vec![3, 0]);
        // Position 0 of the view is dataset object 3.
        assert_eq!(v.object(0).id(), ObjectId(3));
        let c = v.fairness_centroid_of(&[0]).unwrap();
        assert_eq!(c, vec![0.0, 0.0]);
    }

    #[test]
    fn filter_preserves_ids_and_schema() {
        let d = make_dataset();
        let filtered = d.filter(|o| o.label() == Some(true));
        assert_eq!(filtered.len(), 2);
        assert!(filtered.get_by_id(ObjectId(0)).is_some());
        assert!(filtered.get_by_id(ObjectId(1)).is_none());
    }

    #[test]
    fn push_validates_dimensions() {
        let mut d = make_dataset();
        let bad = DataObject::new_unchecked(9, vec![1.0, 2.0], vec![0.0, 1.0], None);
        assert!(d.push(bad).is_err());
        let good = DataObject::new_unchecked(9, vec![1.0], vec![0.0, 1.0], None);
        assert!(d.push(good).is_ok());
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn fully_labelled_detection() {
        let d = make_dataset();
        assert!(d.fully_labelled());
        let mut d2 = d.clone();
        d2.push(DataObject::new_unchecked(
            10,
            vec![1.0],
            vec![0.0, 0.0],
            None,
        ))
        .unwrap();
        assert!(!d2.fully_labelled());
        assert!(!Dataset::empty(schema()).fully_labelled());
    }

    #[test]
    fn dataset_rejects_mismatched_objects_at_construction() {
        let s = schema();
        let bad = vec![DataObject::new_unchecked(0, vec![1.0], vec![1.0], None)];
        assert!(Dataset::new(s, bad).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_from_bad_indices_panics() {
        let d = make_dataset();
        let _ = SampleView::from_indices(&d, vec![99]);
    }
}
