//! Chunked, autovectorizer-friendly floating-point kernels — the one place
//! every scoring and accumulation hot loop in the workspace bottoms out.
//!
//! ## The canonical 4-lane accumulation order
//!
//! Every reduction over `n` elements (a dot product over one row, or a
//! column sum over `n` rows) uses **one** fixed operation order:
//!
//! 1. lane `j ∈ {0,1,2,3}` accumulates elements `4i + j` over the complete
//!    4-blocks, left to right (`[f64; 4]` accumulators — the shape LLVM
//!    turns into packed SIMD without `unsafe` or nightly),
//! 2. lanes combine as `(l0 + l1) + (l2 + l3)`,
//! 3. the `n % 4` tail elements are added sequentially after the combine.
//!
//! For `n < 4` no complete block exists, so the order degenerates to the
//! plain sequential left-to-right sum — bit-for-bit the scalar reference.
//! Every production path — serial [`crate::dataset::Dataset`], the sharded
//! engine, paged stores, the [`crate::metrics::sharded::MetricPlan`] fused
//! sweep, and the fleet [`crate::dca::disparity_partials`] kernel — routes
//! through these functions, so the cross-path bit-parity suites hold by
//! construction: identical inputs meet identical operation sequences.
//!
//! ## The `FAIR_KERNEL` escape hatch
//!
//! `FAIR_KERNEL=scalar` selects the pre-vectorization reference loops
//! (plain sequential `iter().sum()` order), kept alive as the proptest
//! oracle and as a bisection aid; any other value (or none) selects the
//! chunked kernels. The choice is read once and cached; benchmarks flip it
//! in-process with [`force`]. Each dispatched entry point also has a
//! `*_with` twin taking the [`Kernel`] explicitly, so tests exercise both
//! families without mutating process-global state.
//!
//! Element-wise accumulations ([`add_row`]) and integer counts
//! ([`count_ge_half`]) have no reassociation to speak of — each output
//! element sees the same operand sequence in either mode — so they have a
//! single implementation shared by both settings.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family the process is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The canonical 4-lane chunked kernels (the production default).
    Chunked,
    /// The sequential reference loops (`FAIR_KERNEL=scalar`).
    Scalar,
}

/// 0 = undecided, 1 = chunked, 2 = scalar.
static MODE: AtomicU8 = AtomicU8::new(0);

/// The kernel family selected by the `FAIR_KERNEL` environment variable:
/// `scalar` picks the reference loops, anything else (or unset) the chunked
/// kernels.
#[must_use]
pub fn from_env() -> Kernel {
    match std::env::var("FAIR_KERNEL").ok().as_deref() {
        Some("scalar") => Kernel::Scalar,
        _ => Kernel::Chunked,
    }
}

/// The active kernel family. First use reads `FAIR_KERNEL`; the decision is
/// cached for the life of the process (see [`force`]).
#[inline]
#[must_use]
pub fn active() -> Kernel {
    match MODE.load(Ordering::Relaxed) {
        1 => Kernel::Chunked,
        2 => Kernel::Scalar,
        _ => {
            let k = from_env();
            force(k);
            k
        }
    }
}

/// Override the active kernel family for the whole process — the in-process
/// switch benchmarks use to measure both families in one run. Tests should
/// prefer the `*_with` entry points; a test that must force the process
/// mode should restore the previous value when done.
pub fn force(kernel: Kernel) {
    let tag = match kernel {
        Kernel::Chunked => 1,
        Kernel::Scalar => 2,
    };
    MODE.store(tag, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Dot products.
// ---------------------------------------------------------------------

/// Dot product in the canonical 4-lane order. Operands multiply as
/// `a[i] * b[i]` — the same operand order as the reference loop, so the two
/// families differ only in summation association (and not at all for
/// `n < 4`). Accumulators seed with `-0.0` — the bitwise identity of IEEE
/// addition and the seed `iter().sum::<f64>()` uses — so an empty dot is
/// `-0.0` in both families and `n < 4` degenerates to the reference
/// bit-for-bit even through `-0.0`-valued products.
#[inline]
#[must_use]
pub fn dot_chunked(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [-0.0_f64; 4];
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (x, y) in (&mut ac).zip(&mut bc) {
        for j in 0..4 {
            lanes[j] += x[j] * y[j];
        }
    }
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        sum += x * y;
    }
    sum
}

/// Dot product in the sequential reference order — exactly
/// `a.iter().zip(b).map(|(x, y)| x * y).sum()`, the pre-vectorization loop.
#[inline]
#[must_use]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product under an explicit kernel family.
#[inline]
#[must_use]
pub fn dot_with(a: &[f64], b: &[f64], kernel: Kernel) -> f64 {
    match kernel {
        Kernel::Chunked => dot_chunked(a, b),
        Kernel::Scalar => dot_scalar(a, b),
    }
}

/// Dot product under the active kernel family.
#[inline]
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_with(a, b, active())
}

// ---------------------------------------------------------------------
// Row-blocked linear scoring (the effective-score hot path).
// ---------------------------------------------------------------------

/// Canonical per-row dot with a compile-time row width, so the 4-rows-at-a-
/// time blocks below unroll into straight-line code LLVM packs into SIMD.
/// Bit-for-bit [`dot_chunked`] at every width.
#[inline(always)]
fn dot_row<const D: usize>(row: &[f64], w: &[f64; D]) -> f64 {
    let row: &[f64; D] = row[..D].try_into().expect("row width");
    if D >= 4 {
        let mut lanes = [-0.0_f64; 4];
        let blocks = D / 4;
        for i in 0..blocks {
            for j in 0..4 {
                lanes[j] += row[4 * i + j] * w[4 * i + j];
            }
        }
        let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for d in 4 * blocks..D {
            sum += row[d] * w[d];
        }
        sum
    } else {
        let mut sum = -0.0;
        for d in 0..D {
            sum += row[d] * w[d];
        }
        sum
    }
}

/// `out[r] op= dot(row_r, w)` over a dense row-major matrix, 4 rows per
/// block. Cross-row blocking is bit-neutral (row results are independent);
/// each row's dot is the canonical order.
macro_rules! rows_fixed {
    ($name:ident, $op:tt) => {
        #[inline]
        fn $name<const D: usize>(matrix: &[f64], w: &[f64; D], out: &mut [f64]) {
            let mut blocks = matrix.chunks_exact(4 * D);
            let mut r = 0;
            for block in &mut blocks {
                for j in 0..4 {
                    out[r + j] $op dot_row::<D>(&block[j * D..(j + 1) * D], w);
                }
                r += 4;
            }
            for row in blocks.remainder().chunks_exact(D) {
                out[r] $op dot_row::<D>(row, w);
                r += 1;
            }
        }
    };
}

rows_fixed!(dot_rows_fixed, =);
rows_fixed!(add_dot_rows_fixed, +=);

macro_rules! rows_dispatch {
    ($matrix:ident, $dims:ident, $w:ident, $out:ident, $fixed:ident, $op:tt) => {
        match $dims {
            1 => $fixed::<1>($matrix, $w.try_into().expect("width"), $out),
            2 => $fixed::<2>($matrix, $w.try_into().expect("width"), $out),
            3 => $fixed::<3>($matrix, $w.try_into().expect("width"), $out),
            4 => $fixed::<4>($matrix, $w.try_into().expect("width"), $out),
            8 => $fixed::<8>($matrix, $w.try_into().expect("width"), $out),
            _ => {
                for (o, row) in $out.iter_mut().zip($matrix.chunks_exact($dims)) {
                    *o $op dot_chunked(row, $w);
                }
            }
        }
    };
}

/// [`dot_rows_into`] under an explicit kernel family.
///
/// # Panics
/// Panics if `dims == 0`, `weights.len() != dims`, or the matrix length is
/// not a multiple of `dims`.
pub fn dot_rows_into_with(
    matrix: &[f64],
    dims: usize,
    weights: &[f64],
    out: &mut Vec<f64>,
    kernel: Kernel,
) {
    assert!(dims > 0, "row width must be positive");
    assert_eq!(weights.len(), dims, "one weight per column required");
    assert_eq!(matrix.len() % dims, 0, "matrix must be whole rows");
    let rows = matrix.len() / dims;
    out.clear();
    out.resize(rows, 0.0);
    let out = out.as_mut_slice();
    match kernel {
        Kernel::Chunked => rows_dispatch!(matrix, dims, weights, out, dot_rows_fixed, =),
        Kernel::Scalar => {
            for (o, row) in out.iter_mut().zip(matrix.chunks_exact(dims)) {
                *o = dot_scalar(row, weights);
            }
        }
    }
}

/// Write `dot(row_r, weights)` for every row of a dense row-major
/// `rows × dims` matrix into `out` (resized to the row count) — the linear-
/// ranker base-score pass.
///
/// # Panics
/// As [`dot_rows_into_with`].
pub fn dot_rows_into(matrix: &[f64], dims: usize, weights: &[f64], out: &mut Vec<f64>) {
    dot_rows_into_with(matrix, dims, weights, out, active());
}

/// [`add_dot_rows_into`] under an explicit kernel family.
///
/// # Panics
/// Panics if the matrix shape disagrees with `out.len() × dims` or
/// `weights.len() != dims`.
pub fn add_dot_rows_into_with(
    matrix: &[f64],
    dims: usize,
    weights: &[f64],
    out: &mut [f64],
    kernel: Kernel,
) {
    assert_eq!(weights.len(), dims, "one weight per column required");
    assert_eq!(matrix.len(), out.len() * dims, "matrix must be whole rows");
    if dims == 0 {
        // A fairness-free schema: the reference loop adds the empty sum
        // (`-0.0`) to every base score, which is a bitwise no-op.
        return;
    }
    match kernel {
        Kernel::Chunked => rows_dispatch!(matrix, dims, weights, out, add_dot_rows_fixed, +=),
        Kernel::Scalar => {
            for (o, row) in out.iter_mut().zip(matrix.chunks_exact(dims)) {
                *o += dot_scalar(row, weights);
            }
        }
    }
}

/// `out[r] += dot(row_r, weights)` for every row of a dense row-major
/// matrix — the bonus-increment pass (`f_b = f + A_f · B`).
///
/// # Panics
/// As [`add_dot_rows_into_with`].
pub fn add_dot_rows_into(matrix: &[f64], dims: usize, weights: &[f64], out: &mut [f64]) {
    add_dot_rows_into_with(matrix, dims, weights, out, active());
}

/// [`gathered_linear_scores_into`] under an explicit kernel family.
///
/// # Panics
/// Panics if `nf == 0`, a weight length disagrees with its width, or an
/// index is out of bounds.
#[allow(clippy::too_many_arguments)]
pub fn gathered_linear_scores_into_with(
    features: &[f64],
    nf: usize,
    fw: &[f64],
    fairness: &[f64],
    na: usize,
    aw: &[f64],
    indices: &[usize],
    out: &mut Vec<f64>,
    kernel: Kernel,
) {
    assert!(nf > 0, "feature width must be positive");
    assert_eq!(fw.len(), nf, "one weight per feature required");
    assert_eq!(aw.len(), na, "one bonus per fairness dimension required");
    out.clear();
    out.resize(indices.len(), 0.0);
    let out = out.as_mut_slice();
    match kernel {
        Kernel::Chunked => {
            macro_rules! gather {
                ($NF:literal, $NA:literal) => {
                    gathered_fixed::<$NF, $NA>(features, fw, fairness, aw, indices, out)
                };
            }
            match (nf, na) {
                (1, 1) => gather!(1, 1),
                (1, 2) => gather!(1, 2),
                (1, 4) => gather!(1, 4),
                (2, 1) => gather!(2, 1),
                (2, 2) => gather!(2, 2),
                (2, 4) => gather!(2, 4),
                (4, 4) => gather!(4, 4),
                _ => {
                    for (o, &i) in out.iter_mut().zip(indices) {
                        let base = dot_chunked(&features[i * nf..(i + 1) * nf], fw);
                        let increment = dot_chunked(&fairness[i * na..(i + 1) * na], aw);
                        *o = base + increment;
                    }
                }
            }
        }
        Kernel::Scalar => {
            for (o, &i) in out.iter_mut().zip(indices) {
                let base = dot_scalar(&features[i * nf..(i + 1) * nf], fw);
                let increment = dot_scalar(&fairness[i * na..(i + 1) * na], aw);
                *o = base + increment;
            }
        }
    }
}

/// `out[r] = dot(features[idx_r], fw) + dot(fairness[idx_r], aw)` for a
/// gathered index list — the sampled (Core DCA) scoring path. Four
/// independent row gathers per block keep the memory system busy on large
/// cohorts; per-row arithmetic is exactly [`dot`] + [`dot`] + one add, so
/// the result is bit-for-bit the dense/per-row paths' on the same rows.
///
/// # Panics
/// As [`gathered_linear_scores_into_with`].
#[allow(clippy::too_many_arguments)]
pub fn gathered_linear_scores_into(
    features: &[f64],
    nf: usize,
    fw: &[f64],
    fairness: &[f64],
    na: usize,
    aw: &[f64],
    indices: &[usize],
    out: &mut Vec<f64>,
) {
    gathered_linear_scores_into_with(features, nf, fw, fairness, na, aw, indices, out, active());
}

/// Four gathered rows per iteration at compile-time widths: the loads of a
/// block are independent, so cache misses on a large cohort overlap instead
/// of serializing row by row.
#[inline]
fn gathered_fixed<const NF: usize, const NA: usize>(
    features: &[f64],
    fw: &[f64],
    fairness: &[f64],
    aw: &[f64],
    indices: &[usize],
    out: &mut [f64],
) {
    let fw: &[f64; NF] = fw.try_into().expect("width");
    let aw: &[f64; NA] = aw.try_into().expect("width");
    let score = |i: usize| -> f64 {
        dot_row::<NF>(&features[i * NF..(i + 1) * NF], fw)
            + dot_row::<NA>(&fairness[i * NA..(i + 1) * NA], aw)
    };
    let mut blocks = indices.chunks_exact(4);
    let mut r = 0;
    for block in &mut blocks {
        let s0 = score(block[0]);
        let s1 = score(block[1]);
        let s2 = score(block[2]);
        let s3 = score(block[3]);
        out[r] = s0;
        out[r + 1] = s1;
        out[r + 2] = s2;
        out[r + 3] = s3;
        r += 4;
    }
    for &i in blocks.remainder() {
        out[r] = score(i);
        r += 1;
    }
}

// ---------------------------------------------------------------------
// Column sums (centroid accumulators).
// ---------------------------------------------------------------------

/// Canonical chunked column sums over a dense row-major matrix: per column,
/// lane `j` accumulates rows `4i + j`, lanes combine `(l0+l1)+(l2+l3)`, the
/// `rows % 4` tail rows add sequentially.
#[inline]
fn col_sums_fixed<const D: usize>(matrix: &[f64], out: &mut [f64]) {
    let mut lanes = [[0.0_f64; D]; 4];
    let mut blocks = matrix.chunks_exact(4 * D);
    for block in &mut blocks {
        for j in 0..4 {
            for d in 0..D {
                lanes[j][d] += block[j * D + d];
            }
        }
    }
    for d in 0..D {
        out[d] = (lanes[0][d] + lanes[1][d]) + (lanes[2][d] + lanes[3][d]);
    }
    for row in blocks.remainder().chunks_exact(D) {
        for d in 0..D {
            out[d] += row[d];
        }
    }
}

/// Runtime-width version of [`col_sums_fixed`] — the same abstract order
/// (the per-column value is associated identically), for widths outside the
/// specialized set.
fn col_sums_generic(matrix: &[f64], dims: usize, out: &mut [f64]) {
    let mut lanes = vec![0.0_f64; 4 * dims];
    let mut blocks = matrix.chunks_exact(4 * dims);
    for block in &mut blocks {
        for (lane, row) in lanes.chunks_exact_mut(dims).zip(block.chunks_exact(dims)) {
            for (a, v) in lane.iter_mut().zip(row) {
                *a += v;
            }
        }
    }
    for d in 0..dims {
        out[d] = (lanes[d] + lanes[dims + d]) + (lanes[2 * dims + d] + lanes[3 * dims + d]);
    }
    for row in blocks.remainder().chunks_exact(dims) {
        for (a, v) in out.iter_mut().zip(row) {
            *a += v;
        }
    }
}

/// [`col_sums_into`] under an explicit kernel family.
///
/// # Panics
/// Panics if `dims == 0` or the matrix length is not a multiple of `dims`.
pub fn col_sums_into_with(matrix: &[f64], dims: usize, out: &mut Vec<f64>, kernel: Kernel) {
    assert!(dims > 0, "row width must be positive");
    assert_eq!(matrix.len() % dims, 0, "matrix must be whole rows");
    out.clear();
    out.resize(dims, 0.0);
    let out = out.as_mut_slice();
    match kernel {
        Kernel::Chunked => match dims {
            1 => col_sums_fixed::<1>(matrix, out),
            2 => col_sums_fixed::<2>(matrix, out),
            3 => col_sums_fixed::<3>(matrix, out),
            4 => col_sums_fixed::<4>(matrix, out),
            8 => col_sums_fixed::<8>(matrix, out),
            _ => col_sums_generic(matrix, dims, out),
        },
        Kernel::Scalar => {
            for row in matrix.chunks_exact(dims) {
                for (a, v) in out.iter_mut().zip(row) {
                    *a += v;
                }
            }
        }
    }
}

/// Column sums of a dense row-major `rows × dims` matrix, written into
/// `out` (resized to `dims`) — the fairness-centroid accumulator before the
/// single division.
///
/// # Panics
/// As [`col_sums_into_with`].
pub fn col_sums_into(matrix: &[f64], dims: usize, out: &mut Vec<f64>) {
    col_sums_into_with(matrix, dims, out, active());
}

/// [`col_sums_rows_into`] under an explicit kernel family.
///
/// # Panics
/// Panics if `dims == 0` or a row is narrower than `dims`.
pub fn col_sums_rows_into_with<'a>(
    dims: usize,
    rows: impl Iterator<Item = &'a [f64]>,
    out: &mut Vec<f64>,
    kernel: Kernel,
) -> usize {
    assert!(dims > 0, "row width must be positive");
    out.clear();
    out.resize(dims, 0.0);
    let out = out.as_mut_slice();
    let mut n = 0_usize;
    match kernel {
        Kernel::Chunked => {
            let mut lanes = vec![0.0_f64; 4 * dims];
            let mut block: [&[f64]; 4] = [&[]; 4];
            let mut fill = 0_usize;
            for row in rows {
                block[fill] = &row[..dims];
                fill += 1;
                n += 1;
                if fill == 4 {
                    for (lane, row) in lanes.chunks_exact_mut(dims).zip(block) {
                        for (a, v) in lane.iter_mut().zip(row) {
                            *a += v;
                        }
                    }
                    fill = 0;
                }
            }
            for d in 0..dims {
                out[d] = (lanes[d] + lanes[dims + d]) + (lanes[2 * dims + d] + lanes[3 * dims + d]);
            }
            for row in block.iter().take(fill) {
                for (a, v) in out.iter_mut().zip(*row) {
                    *a += v;
                }
            }
        }
        Kernel::Scalar => {
            for row in rows {
                for (a, v) in out.iter_mut().zip(&row[..dims]) {
                    *a += v;
                }
                n += 1;
            }
        }
    }
    n
}

/// Column sums over an arbitrary sequence of equally wide rows (a gathered
/// sample, a rank-ordered selection) — the same canonical 4-lane row order
/// as [`col_sums_into`], so a gathered walk over rows `0..n` is bit-for-bit
/// the dense sum. Returns the number of rows consumed.
///
/// # Panics
/// As [`col_sums_rows_into_with`].
pub fn col_sums_rows_into<'a>(
    dims: usize,
    rows: impl Iterator<Item = &'a [f64]>,
    out: &mut Vec<f64>,
) -> usize {
    col_sums_rows_into_with(dims, rows, out, active())
}

// ---------------------------------------------------------------------
// Order-free helpers (single implementation for both families).
// ---------------------------------------------------------------------

/// `acc[d] += row[d]` element-wise. Each output element sees the same
/// operand sequence regardless of family, so there is nothing to
/// reassociate — one implementation serves both settings.
#[inline]
pub fn add_row(acc: &mut [f64], row: &[f64]) {
    for (a, v) in acc.iter_mut().zip(row) {
        *a += v;
    }
}

/// Count rows whose column `dim` is `>= 0.5` (binary group membership) over
/// a dense row-major matrix — an exact integer reduction, 4 lanes wide. The
/// count is association-free, so both families share this implementation.
///
/// # Panics
/// Panics if `dim >= dims`.
#[must_use]
pub fn count_ge_half(matrix: &[f64], dims: usize, dim: usize) -> usize {
    assert!(dim < dims, "column out of bounds");
    let mut lanes = [0_usize; 4];
    let mut blocks = matrix.chunks_exact(4 * dims);
    for block in &mut blocks {
        for j in 0..4 {
            lanes[j] += usize::from(block[j * dims + dim] >= 0.5);
        }
    }
    let mut count = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for row in blocks.remainder().chunks_exact(dims) {
        count += usize::from(row[dim] >= 0.5);
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: f64) -> u64 {
        v.to_bits()
    }

    fn all_bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn chunked_dot_equals_scalar_for_short_rows() {
        // n < 4 degenerates to the sequential order: bit-for-bit, even for
        // non-dyadic values.
        for n in 0..4 {
            let a: Vec<f64> = (0..n).map(|i| 0.1 + i as f64 * 0.3).collect();
            let b: Vec<f64> = (0..n).map(|i| 1.7 - i as f64 * 0.2).collect();
            assert_eq!(bits(dot_chunked(&a, &b)), bits(dot_scalar(&a, &b)), "{n}");
        }
    }

    #[test]
    fn chunked_dot_uses_the_documented_lane_order() {
        let c = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        let ones = [1.0; 7];
        let expected = ((c[0] + c[1]) + (c[2] + c[3])) + c[4] + c[5] + c[6];
        assert_eq!(bits(dot_chunked(&c, &ones)), bits(expected));
        // Two full blocks: lane j accumulates elements 4i + j first.
        let d: Vec<f64> = (0..8).map(|i| 0.1 * (i + 1) as f64).collect();
        let ones8 = [1.0; 8];
        let lanes = [d[0] + d[4], d[1] + d[5], d[2] + d[6], d[3] + d[7]];
        let expected8 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        assert_eq!(bits(dot_chunked(&d, &ones8)), bits(expected8));
    }

    #[test]
    fn dot_truncates_to_shorter_operand_like_zip() {
        assert_eq!(dot_chunked(&[1.0, 2.0, 3.0], &[10.0]), 10.0);
        assert_eq!(dot_scalar(&[1.0, 2.0, 3.0], &[10.0]), 10.0);
    }

    #[test]
    fn dot_rows_matches_per_row_dot_bitwise() {
        for dims in [1, 2, 3, 4, 5, 8, 11] {
            let rows = 13;
            let matrix: Vec<f64> = (0..rows * dims).map(|i| (i as f64).sin() * 3.0).collect();
            let w: Vec<f64> = (0..dims).map(|i| 0.25 + i as f64 * 0.5).collect();
            let mut out = Vec::new();
            dot_rows_into_with(&matrix, dims, &w, &mut out, Kernel::Chunked);
            for (r, row) in matrix.chunks_exact(dims).enumerate() {
                assert_eq!(bits(out[r]), bits(dot_chunked(row, &w)), "dims {dims}");
            }
            let mut acc = out.clone();
            add_dot_rows_into_with(&matrix, dims, &w, &mut acc, Kernel::Chunked);
            for (r, row) in matrix.chunks_exact(dims).enumerate() {
                assert_eq!(bits(acc[r]), bits(out[r] + dot_chunked(row, &w)));
            }
            dot_rows_into_with(&matrix, dims, &w, &mut out, Kernel::Scalar);
            for (r, row) in matrix.chunks_exact(dims).enumerate() {
                assert_eq!(bits(out[r]), bits(dot_scalar(row, &w)));
            }
        }
    }

    #[test]
    fn gathered_scores_match_dense_rows_bitwise() {
        let (nf, na, n) = (2, 4, 29);
        let features: Vec<f64> = (0..n * nf).map(|i| (i as f64 * 0.7).cos()).collect();
        let fairness: Vec<f64> = (0..n * na)
            .map(|i| f64::from(u8::from(i % 3 == 0)))
            .collect();
        let fw = [0.55, 0.45];
        let aw = [1.0, 10.0, 12.0, 12.0];
        for kernel in [Kernel::Chunked, Kernel::Scalar] {
            let indices: Vec<usize> = (0..n).collect();
            let mut gathered = Vec::new();
            gathered_linear_scores_into_with(
                &features,
                nf,
                &fw,
                &fairness,
                na,
                &aw,
                &indices,
                &mut gathered,
                kernel,
            );
            let mut dense = Vec::new();
            dot_rows_into_with(&features, nf, &fw, &mut dense, kernel);
            add_dot_rows_into_with(&fairness, na, &aw, &mut dense, kernel);
            assert_eq!(all_bits(&gathered), all_bits(&dense), "{kernel:?}");
            // A shuffled gather is the dense value at each gathered row.
            let shuffled: Vec<usize> = (0..n).map(|i| (i * 7) % n).collect();
            gathered_linear_scores_into_with(
                &features,
                nf,
                &fw,
                &fairness,
                na,
                &aw,
                &shuffled,
                &mut gathered,
                kernel,
            );
            for (o, &i) in gathered.iter().zip(&shuffled) {
                assert_eq!(bits(*o), bits(dense[i]), "{kernel:?}");
            }
        }
    }

    #[test]
    fn col_sums_match_the_documented_order() {
        let dims = 2;
        let rows = 7;
        let matrix: Vec<f64> = (0..rows * dims).map(|i| 0.1 * i as f64).collect();
        let mut out = Vec::new();
        col_sums_into_with(&matrix, dims, &mut out, Kernel::Chunked);
        for d in 0..dims {
            let v = |r: usize| matrix[r * dims + d];
            let expected = ((v(0) + v(1)) + (v(2) + v(3))) + v(4) + v(5) + v(6);
            assert_eq!(bits(out[d]), bits(expected), "dim {d}");
        }
        // The gathered walk over 0..rows is the dense sum, bit for bit.
        let mut gathered = Vec::new();
        let n = col_sums_rows_into_with(
            dims,
            matrix.chunks_exact(dims),
            &mut gathered,
            Kernel::Chunked,
        );
        assert_eq!(n, rows);
        assert_eq!(all_bits(&gathered), all_bits(&out));
        // And the generic-width path agrees with the specialized one.
        let mut generic = vec![0.0; dims];
        col_sums_generic(&matrix, dims, &mut generic);
        assert_eq!(all_bits(&generic), all_bits(&out));
    }

    #[test]
    fn scalar_col_sums_are_the_reference_loop() {
        let dims = 3;
        let matrix: Vec<f64> = (0..dims * 9).map(|i| (i as f64).sqrt()).collect();
        let mut out = Vec::new();
        col_sums_into_with(&matrix, dims, &mut out, Kernel::Scalar);
        let mut expected = vec![0.0_f64; dims];
        for row in matrix.chunks_exact(dims) {
            for (a, v) in expected.iter_mut().zip(row) {
                *a += v;
            }
        }
        assert_eq!(all_bits(&out), all_bits(&expected));
        let mut rows = Vec::new();
        let n = col_sums_rows_into_with(dims, matrix.chunks_exact(dims), &mut rows, Kernel::Scalar);
        assert_eq!(n, 9);
        assert_eq!(all_bits(&rows), all_bits(&expected));
    }

    #[test]
    fn count_ge_half_handles_every_tail() {
        for rows in 0..9_usize {
            let dims = 3;
            let matrix: Vec<f64> = (0..rows * dims)
                .map(|i| f64::from(u8::from(i % 2 == 0)))
                .collect();
            let expected = (0..rows).filter(|r| (r * dims) % 2 == 0).count();
            assert_eq!(count_ge_half(&matrix, dims, 0), expected, "rows {rows}");
        }
    }

    #[test]
    fn nan_rows_propagate_identically_in_both_families() {
        // A single standard NaN among dyadic values: the payload survives
        // any association, so chunked == scalar bit-for-bit.
        let mut a = vec![0.5, 0.25, f64::NAN, 1.0, 2.0, 0.5, 4.0];
        let b = vec![1.0; 7];
        assert_eq!(bits(dot_chunked(&a, &b)), bits(dot_scalar(&a, &b)));
        a[2] = 1.5;
        a[5] = f64::NAN;
        assert_eq!(bits(dot_chunked(&a, &b)), bits(dot_scalar(&a, &b)));
    }

    #[test]
    fn env_selection_resolves_and_caches() {
        let k = from_env();
        assert!(matches!(k, Kernel::Chunked | Kernel::Scalar));
        force(k);
        assert_eq!(active(), k);
    }
}
