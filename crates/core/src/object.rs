//! The ranked object: a record with ranking features, fairness attributes and
//! an optional ground-truth outcome label.

use crate::attributes::SchemaRef;
use crate::error::Result;

/// Stable identifier for an object within its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A borrowed, zero-copy view of one object — either a row of a columnar
/// [`crate::Dataset`] or a standalone [`DataObject`] (via
/// [`DataObject::as_view`]).
///
/// `ObjectView` is the type every ranking function and metric consumes. It is
/// `Copy` (two pointers-with-length plus an id and a label), so passing it by
/// value is free, and its accessors mirror [`DataObject`] exactly: code that
/// used to take `&DataObject` migrates by taking `ObjectView<'_>` instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectView<'a> {
    id: ObjectId,
    features: &'a [f64],
    fairness: &'a [f64],
    label: Option<bool>,
}

impl<'a> ObjectView<'a> {
    /// Assemble a view from its parts (datasets use this to expose rows;
    /// applications normally obtain views from [`crate::Dataset::row`]).
    #[must_use]
    pub fn new(
        id: ObjectId,
        features: &'a [f64],
        fairness: &'a [f64],
        label: Option<bool>,
    ) -> Self {
        Self {
            id,
            features,
            fairness,
            label,
        }
    }

    /// Object identifier.
    #[must_use]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Ranking-feature values, ordered per the schema.
    #[must_use]
    pub fn features(&self) -> &'a [f64] {
        self.features
    }

    /// Fairness-attribute values, ordered per the schema.
    #[must_use]
    pub fn fairness(&self) -> &'a [f64] {
        self.fairness
    }

    /// Ground-truth outcome label, if known.
    #[must_use]
    pub fn label(&self) -> Option<bool> {
        self.label
    }

    /// Whether the object belongs to the (binary) fairness group at `index`,
    /// i.e. has value `>= 0.5` there. For continuous attributes this is a
    /// "high-need" indicator.
    #[must_use]
    pub fn in_group(&self, index: usize) -> bool {
        self.fairness.get(index).copied().unwrap_or(0.0) >= 0.5
    }

    /// The bonus-adjusted score increment for this object: the dot product of
    /// its fairness vector with the bonus vector (Definition 2, `A_f · B`).
    ///
    /// # Panics
    /// Panics if `bonus.len()` differs from the fairness dimensionality.
    #[must_use]
    pub fn bonus_increment(&self, bonus: &[f64]) -> f64 {
        assert_eq!(
            bonus.len(),
            self.fairness.len(),
            "bonus vector dimensionality mismatch"
        );
        crate::kernel::dot(self.fairness, bonus)
    }

    /// Copy the viewed row into an owned [`DataObject`].
    #[must_use]
    pub fn to_object(&self) -> DataObject {
        DataObject {
            id: self.id,
            features: self.features.to_vec(),
            fairness: self.fairness.to_vec(),
            label: self.label,
        }
    }
}

/// One object to be ranked: a student application, a defendant record, …
///
/// * `features` are the inputs to the score-based ranking function (Def. 1),
///   ordered according to [`crate::Schema::features`];
/// * `fairness` are the protected-attribute values, ordered according to
///   [`crate::Schema::fairness`], binary values in {0,1} and continuous values
///   in `[0,1]`;
/// * `label` is an optional ground-truth outcome (e.g. 2-year recidivism) used
///   only by equalized-odds style objectives such as the false-positive-rate
///   difference of Section VI-C5.
#[derive(Debug, Clone, PartialEq)]
pub struct DataObject {
    id: ObjectId,
    features: Vec<f64>,
    fairness: Vec<f64>,
    label: Option<bool>,
}

impl DataObject {
    /// Build an object, validating both vectors against the schema.
    pub fn new(
        schema: &SchemaRef,
        id: u64,
        features: Vec<f64>,
        fairness: Vec<f64>,
        label: Option<bool>,
    ) -> Result<Self> {
        schema.validate_features(&features)?;
        schema.validate_fairness(&fairness)?;
        Ok(Self {
            id: ObjectId(id),
            features,
            fairness,
            label,
        })
    }

    /// Build an object without validation. Intended for generators that have
    /// already validated their output; invalid values will surface as metric
    /// errors later rather than memory unsafety.
    #[must_use]
    pub fn new_unchecked(
        id: u64,
        features: Vec<f64>,
        fairness: Vec<f64>,
        label: Option<bool>,
    ) -> Self {
        Self {
            id: ObjectId(id),
            features,
            fairness,
            label,
        }
    }

    /// Object identifier.
    #[must_use]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// Ranking-feature values, ordered per the schema.
    #[must_use]
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// Fairness-attribute values, ordered per the schema.
    #[must_use]
    pub fn fairness(&self) -> &[f64] {
        &self.fairness
    }

    /// Ground-truth outcome label, if known.
    #[must_use]
    pub fn label(&self) -> Option<bool> {
        self.label
    }

    /// Whether the object belongs to the (binary) fairness group at `index`,
    /// i.e. has value `>= 0.5` there. For continuous attributes this is a
    /// "high-need" indicator.
    #[must_use]
    pub fn in_group(&self, index: usize) -> bool {
        self.fairness.get(index).copied().unwrap_or(0.0) >= 0.5
    }

    /// The bonus-adjusted score increment for this object: the dot product of
    /// its fairness vector with the bonus vector (Definition 2, `A_f · B`).
    ///
    /// # Panics
    /// Panics if `bonus.len()` differs from the fairness dimensionality.
    #[must_use]
    pub fn bonus_increment(&self, bonus: &[f64]) -> f64 {
        assert_eq!(
            bonus.len(),
            self.fairness.len(),
            "bonus vector dimensionality mismatch"
        );
        crate::kernel::dot(&self.fairness, bonus)
    }

    /// Replace the label (used by dataset builders that attach outcomes after
    /// generation).
    pub fn set_label(&mut self, label: Option<bool>) {
        self.label = label;
    }

    /// Borrow this object as an [`ObjectView`] — the type rankers and metrics
    /// consume.
    #[must_use]
    pub fn as_view(&self) -> ObjectView<'_> {
        ObjectView {
            id: self.id,
            features: &self.features,
            fairness: &self.fairness,
            label: self.label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;

    fn schema() -> SchemaRef {
        Schema::from_names(&["gpa", "test"], &["low_income", "ell"], &["eni"]).unwrap()
    }

    #[test]
    fn construction_validates_against_schema() {
        let s = schema();
        let ok = DataObject::new(&s, 1, vec![3.5, 0.9], vec![1.0, 0.0, 0.4], None);
        assert!(ok.is_ok());
        let bad_feat = DataObject::new(&s, 2, vec![3.5], vec![1.0, 0.0, 0.4], None);
        assert!(bad_feat.is_err());
        let bad_fair = DataObject::new(&s, 3, vec![3.5, 0.9], vec![0.7, 0.0, 0.4], None);
        assert!(bad_fair.is_err(), "0.7 is not a valid binary value");
    }

    #[test]
    fn accessors_round_trip() {
        let s = schema();
        let o = DataObject::new(&s, 7, vec![3.0, 0.5], vec![1.0, 1.0, 0.2], Some(true)).unwrap();
        assert_eq!(o.id(), ObjectId(7));
        assert_eq!(o.features(), &[3.0, 0.5]);
        assert_eq!(o.fairness(), &[1.0, 1.0, 0.2]);
        assert_eq!(o.label(), Some(true));
        assert_eq!(o.id().to_string(), "#7");
    }

    #[test]
    fn bonus_increment_is_dot_product() {
        let o = DataObject::new_unchecked(1, vec![], vec![1.0, 0.0, 0.5], None);
        // 1*2 + 0*10 + 0.5*4 = 4
        assert!((o.bonus_increment(&[2.0, 10.0, 4.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn in_group_thresholds_at_half() {
        let o = DataObject::new_unchecked(1, vec![], vec![1.0, 0.0, 0.6], None);
        assert!(o.in_group(0));
        assert!(!o.in_group(1));
        assert!(o.in_group(2));
        assert!(!o.in_group(99), "out-of-range index is simply not-a-member");
    }

    #[test]
    fn set_label_updates() {
        let mut o = DataObject::new_unchecked(1, vec![], vec![0.0], None);
        o.set_label(Some(false));
        assert_eq!(o.label(), Some(false));
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn bonus_increment_rejects_wrong_length() {
        let o = DataObject::new_unchecked(1, vec![], vec![1.0, 0.0], None);
        let _ = o.bonus_increment(&[1.0]);
    }

    #[test]
    fn view_mirrors_object_and_round_trips() {
        let o = DataObject::new_unchecked(9, vec![1.0, 2.0], vec![1.0, 0.0, 0.7], Some(true));
        let v = o.as_view();
        assert_eq!(v.id(), o.id());
        assert_eq!(v.features(), o.features());
        assert_eq!(v.fairness(), o.fairness());
        assert_eq!(v.label(), o.label());
        assert_eq!(v.in_group(0), o.in_group(0));
        assert_eq!(v.in_group(2), o.in_group(2));
        assert!(
            (v.bonus_increment(&[1.0, 2.0, 3.0]) - o.bonus_increment(&[1.0, 2.0, 3.0])).abs()
                < 1e-15
        );
        assert_eq!(v.to_object(), o);
    }
}
