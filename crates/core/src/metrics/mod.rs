//! Fairness and utility metrics.
//!
//! Every fairness metric in this module is *vector-valued*: one entry per
//! fairness attribute, each bounded in `[-1, 1]`, with `0` meaning fair, a
//! negative value meaning the group is under-represented among the selected
//! objects and a positive value meaning it is over-represented. This is the
//! contract DCA requires of any metric it optimizes (Section VI-C5: "the
//! minimization metric must be represented as the norm of a vector, and it
//! must provide bounds between -1, 1").
//!
//! | Module | Paper reference |
//! |--------|-----------------|
//! | [`disparity`] | Definition 3, the primary metric |
//! | [`log_discounted`] | Section IV-E, unknown selection sizes |
//! | [`disparate_impact`] | Section VI-C5, scaled DI variant |
//! | [`fpr`] | Section VI-C5, equalized-odds / false-positive-rate difference |
//! | [`exposure`] | Section VI-C4, exposure and the DDP constraint |
//! | [`ndcg`] | Section VI-A2, utility of the corrected ranking |

pub mod disparate_impact;
pub mod disparity;
pub mod exposure;
pub mod fpr;
pub mod log_discounted;
pub mod ndcg;
pub mod sharded;

pub use disparate_impact::{
    disparate_impact_at_k, scaled_disparate_impact_at_k, scaled_disparate_impact_at_k_into,
};
pub use disparity::{
    disparity_at_k, disparity_at_k_into, disparity_of_selection, disparity_of_selection_into,
    DisparityVector,
};
pub use exposure::{ddp_for_binary_attributes, exposure_of_group, group_average_exposure};
pub use fpr::{fpr_difference_at_k, fpr_difference_at_k_into, group_fpr_at_k};
pub use log_discounted::{
    log_discounted_disparity, log_discounted_disparity_into, LogDiscountConfig,
};
pub use ndcg::{dcg, ndcg_at_k};

/// L2 norm of a metric vector — the scalar the paper reports as "Norm".
#[must_use]
pub fn norm(values: &[f64]) -> f64 {
    values.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    #[test]
    fn norm_is_euclidean() {
        assert!((super::norm(&[0.3, 0.4]) - 0.5).abs() < 1e-12);
        assert_eq!(super::norm(&[]), 0.0);
    }
}
