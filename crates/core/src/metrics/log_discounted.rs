//! Logarithmically discounted disparity (Section IV-E).
//!
//! When the selection size `k` is not known in advance (e.g. school matching,
//! where "it is not known in advance how far down its list a school will
//! accept students"), DCA minimizes a weighted average of the disparity over
//! many selection sizes, discounting larger selections logarithmically:
//!
//! ```text
//!   (1/Z) * Σ_{i ∈ {step, 2·step, …, max}}  D_i / log2(i + 1)
//! ```
//!
//! where `D_i` is the disparity of the top-`i` objects and `Z` is the maximum
//! possible value (the sum of the weights), so that each dimension of the
//! result stays within `[-1, 1]`.

use crate::dataset::SampleView;
use crate::error::{FairError, Result};

use crate::ranking::topk::RankedSelection;

/// Configuration of the log-discounted disparity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogDiscountConfig {
    /// Evaluate the disparity every `step` ranked objects (the paper uses
    /// checkpoints at every 10 objects: `i ∈ 10, 20, 30, …`).
    pub step: usize,
    /// Only consider checkpoints covering at most this fraction of the
    /// ranking. The paper's school experiments use `0.5` ("users might only be
    /// interested in the top half of the ranking").
    pub max_fraction: f64,
}

impl Default for LogDiscountConfig {
    fn default() -> Self {
        Self {
            step: 10,
            max_fraction: 0.5,
        }
    }
}

impl LogDiscountConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns an error if `step == 0` or `max_fraction` is outside `(0, 1]`.
    pub fn validate(&self) -> Result<()> {
        if self.step == 0 {
            return Err(FairError::InvalidConfig {
                reason: "log-discount step must be positive".into(),
            });
        }
        if !(self.max_fraction > 0.0 && self.max_fraction <= 1.0) {
            return Err(FairError::InvalidSelectionFraction {
                k: self.max_fraction,
            });
        }
        Ok(())
    }

    /// The checkpoint selection sizes for a ranking of `n` objects.
    #[must_use]
    pub fn checkpoints(&self, n: usize) -> Vec<usize> {
        let max = ((n as f64) * self.max_fraction).floor() as usize;
        let mut out = Vec::new();
        let mut i = self.step;
        while i <= max {
            out.push(i);
            i += self.step;
        }
        // Always have at least one checkpoint on tiny rankings so the metric
        // is defined whenever the ranking is non-empty.
        if out.is_empty() && n > 0 {
            out.push(max.max(1).min(n));
        }
        out
    }
}

/// Compute the logarithmically discounted disparity vector of a ranking.
///
/// # Errors
/// Returns an error on an empty view or invalid configuration.
pub fn log_discounted_disparity(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    config: &LogDiscountConfig,
) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    log_discounted_disparity_into(view, ranking, config, &mut out)?;
    Ok(out)
}

/// [`log_discounted_disparity`] writing into a caller-provided buffer.
///
/// The checkpoints are strictly increasing prefixes of one ranked order, so
/// the per-checkpoint selection centroids are computed with a single running
/// prefix sum over the ranking — `O(n · dims)` total instead of the
/// `O(n²/step · dims)` of re-summing every prefix from scratch. The running
/// sum performs the exact same additions in the exact same order as the
/// from-scratch sums, so the result is bit-for-bit identical.
///
/// # Errors
/// Returns an error on an empty view or invalid configuration.
pub fn log_discounted_disparity_into(
    view: &SampleView<'_>,
    ranking: &RankedSelection,
    config: &LogDiscountConfig,
    out: &mut Vec<f64>,
) -> Result<()> {
    config.validate()?;
    if view.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    let checkpoints = config.checkpoints(ranking.len());
    let dims = view.schema().num_fairness();
    out.clear();
    out.resize(dims, 0.0);
    let all = view.fairness_centroid()?;
    let mut running = vec![0.0; dims];
    let mut consumed = 0_usize;
    let mut z = 0.0;
    for &count in &checkpoints {
        debug_assert!(count >= consumed, "checkpoints must be increasing");
        let weight = 1.0 / ((count as f64) + 1.0).log2();
        for &p in &ranking.top(count)[consumed..] {
            let row = view.object(p).fairness();
            for (a, v) in running.iter_mut().zip(row) {
                *a += v;
            }
        }
        consumed = count;
        if count == 0 {
            return Err(FairError::EmptyDataset);
        }
        for ((o, r), a) in out.iter_mut().zip(&running).zip(&all) {
            *o += weight * (r / count as f64 - a);
        }
        z += weight;
    }
    if z > 0.0 {
        for a in out.iter_mut() {
            *a /= z;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::{effective_scores, WeightedSumRanker};

    fn dataset(n: u64, member_every: u64) -> Dataset {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                let member = i % member_every == 0;
                // Non-members score higher, so members cluster at the bottom.
                let score = if member { i as f64 } else { 1000.0 + i as f64 };
                DataObject::new_unchecked(i, vec![score], vec![f64::from(u8::from(member))], None)
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn rank(d: &Dataset, bonus: f64) -> (crate::dataset::SampleView<'_>, RankedSelection) {
        let view = d.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores = effective_scores(&view, &ranker, &[bonus]);
        (view.clone(), RankedSelection::from_scores(scores))
    }

    #[test]
    fn checkpoints_every_step_up_to_max_fraction() {
        let c = LogDiscountConfig {
            step: 10,
            max_fraction: 0.5,
        };
        assert_eq!(c.checkpoints(100), vec![10, 20, 30, 40, 50]);
        assert_eq!(c.checkpoints(25), vec![10]);
        // Tiny rankings still get one checkpoint.
        assert_eq!(c.checkpoints(5), vec![2]);
        assert_eq!(c.checkpoints(1), vec![1]);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(LogDiscountConfig {
            step: 0,
            max_fraction: 0.5
        }
        .validate()
        .is_err());
        assert!(LogDiscountConfig {
            step: 10,
            max_fraction: 0.0
        }
        .validate()
        .is_err());
        assert!(LogDiscountConfig {
            step: 10,
            max_fraction: 1.5
        }
        .validate()
        .is_err());
        assert!(LogDiscountConfig::default().validate().is_ok());
    }

    #[test]
    fn discounted_disparity_is_negative_when_group_ranks_last() {
        let d = dataset(200, 4); // 25% members, all at the bottom
        let (view, ranking) = rank(&d, 0.0);
        let disp =
            log_discounted_disparity(&view, &ranking, &LogDiscountConfig::default()).unwrap();
        assert!(
            disp[0] < -0.1,
            "members are absent from every prefix: {}",
            disp[0]
        );
        assert!(disp[0] >= -1.0);
    }

    #[test]
    fn discounted_disparity_bounded_in_unit_interval() {
        let d = dataset(200, 4);
        for bonus in [0.0, 500.0, 5000.0] {
            let (view, ranking) = rank(&d, bonus);
            let disp =
                log_discounted_disparity(&view, &ranking, &LogDiscountConfig::default()).unwrap();
            assert!(
                disp.iter().all(|v| (-1.0..=1.0).contains(v)),
                "bonus {bonus}: {disp:?}"
            );
        }
    }

    #[test]
    fn large_bonus_flips_the_sign() {
        let d = dataset(200, 4);
        let (view, ranking) = rank(&d, 10_000.0);
        let disp =
            log_discounted_disparity(&view, &ranking, &LogDiscountConfig::default()).unwrap();
        assert!(
            disp[0] > 0.1,
            "members now dominate every prefix: {}",
            disp[0]
        );
    }

    #[test]
    fn early_prefixes_weigh_more_than_late_ones() {
        // Two rankings with identical disparity at the last checkpoint but
        // different disparity at the first checkpoint must differ, and the one
        // that is unfair early must be worse (more negative).
        let d = dataset(40, 2); // 50% members
        let view = d.full_view();
        // Ranking A: members at the very end.
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let scores_a = effective_scores(&view, &ranker, &[0.0]);
        let ranking_a = RankedSelection::from_scores(scores_a);
        // Ranking B: members at the very top (huge bonus).
        let scores_b = effective_scores(&view, &ranker, &[100_000.0]);
        let ranking_b = RankedSelection::from_scores(scores_b);
        let cfg = LogDiscountConfig {
            step: 5,
            max_fraction: 1.0,
        };
        let a = log_discounted_disparity(&view, &ranking_a, &cfg).unwrap()[0];
        let b = log_discounted_disparity(&view, &ranking_b, &cfg).unwrap()[0];
        assert!(a < 0.0 && b > 0.0);
        // Both evaluate to 0 at the full-selection checkpoint, so the
        // magnitude comes from the discounted earlier checkpoints.
        assert!(a.abs() > 0.05 && b.abs() > 0.05);
    }

    /// The incremental prefix-sum implementation must agree bit-for-bit with
    /// a from-scratch evaluation of every checkpoint (the pre-optimization
    /// semantics).
    #[test]
    fn incremental_prefix_sums_match_naive_reference_bit_for_bit() {
        use crate::metrics::disparity::disparity_of_selection;
        let d = dataset(317, 3);
        for bonus in [0.0, 42.0, 5_000.0] {
            let (view, ranking) = rank(&d, bonus);
            for cfg in [
                LogDiscountConfig::default(),
                LogDiscountConfig {
                    step: 7,
                    max_fraction: 1.0,
                },
                LogDiscountConfig {
                    step: 1,
                    max_fraction: 0.3,
                },
            ] {
                let fast = log_discounted_disparity(&view, &ranking, &cfg).unwrap();
                // Naive reference: re-sum every prefix from scratch.
                let dims = view.schema().num_fairness();
                let mut acc = vec![0.0; dims];
                let mut z = 0.0;
                for count in cfg.checkpoints(ranking.len()) {
                    let weight = 1.0 / ((count as f64) + 1.0).log2();
                    let disp = disparity_of_selection(&view, ranking.top(count)).unwrap();
                    for (a, v) in acc.iter_mut().zip(&disp) {
                        *a += weight * v;
                    }
                    z += weight;
                }
                for a in &mut acc {
                    *a /= z;
                }
                let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
                let naive_bits: Vec<u64> = acc.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fast_bits, naive_bits, "step {} bonus {bonus}", cfg.step);
            }
        }
    }

    #[test]
    fn empty_view_is_error() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let d = Dataset::empty(schema);
        let view = d.full_view();
        let ranking = RankedSelection::from_scores(vec![]);
        assert!(log_discounted_disparity(&view, &ranking, &LogDiscountConfig::default()).is_err());
    }
}
