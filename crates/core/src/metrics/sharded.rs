//! Whole-cohort metric evaluation on the shard-wise parallel engine.
//!
//! Every function here is the sharded counterpart of a serial metric in this
//! module's siblings, decomposed into **per-shard kernels plus an ordered
//! combine** on the [`ShardSource`] engine — so the same code path serves
//! the in-memory [`crate::shard::ShardedDataset`] and the out-of-core
//! `fair_store::ShardStore`:
//!
//! 1. *score* — per-shard scoring kernels (embarrassingly parallel,
//!    bit-for-bit the serial scores),
//! 2. *select* — per-shard partial top-`m` merged under the serial strict
//!    total order ([`crate::ranking::sharded::top_m`]), so the selected set
//!    and order are exactly the full sort's,
//! 3. *measure* — integer count reductions (exact for every shard size) or
//!    per-shard partial sums combined in shard order (bit-for-bit for
//!    binary/dyadic fairness values, reassociation-ulp-deterministic
//!    otherwise); selection centroids are accumulated serially in rank order,
//!    exactly as the serial metrics do.
//!
//! Unlike the serial metrics, which take a pre-built
//! [`RankedSelection`](crate::ranking::RankedSelection), these functions are
//! end-to-end: they take the ranker and bonus vector and perform scoring,
//! selection and measurement through the engine, because on large cohorts the
//! full sort the serial callers pre-pay is precisely the cost being removed.

use crate::dca::scratch::EvalScratch;
use crate::error::{FairError, Result};
use crate::metrics::LogDiscountConfig;
use crate::ranking::sharded::{selected_at_k, top_m};
use crate::ranking::topk::selection_size;
use crate::ranking::Ranker;
use crate::shard::ShardSource;

/// Scratch buffers reused across sharded metric evaluations (scores,
/// selection, mask, and the paged-source column retention of
/// [`MetricPlan`]), so repeated evaluation — the sharded full-DCA loop —
/// avoids re-allocating cohort-sized vectors.
#[derive(Debug, Clone, Default)]
pub struct ShardedEvalScratch {
    /// Effective scores, global row order.
    pub(crate) scores: Vec<f64>,
    /// Base (zero-bonus) scores, global row order — filled only when the
    /// plan includes nDCG.
    pub(crate) base: Vec<f64>,
    /// Global top-k selection mask.
    pub(crate) mask: Vec<bool>,
    /// `(shard, rank)` pairs of the selection, sorted by shard — the
    /// shard-sequential gather plan.
    pub(crate) order: Vec<(usize, usize)>,
    /// Gathered fairness rows of the selection, in rank order.
    pub(crate) gathered: Vec<f64>,
    /// Fairness rows of the whole cohort, retained **per shard** during a
    /// paged-source sweep so measurement never re-pages a shard. The
    /// per-shard buffers are moved out of the sweep results as-is — never
    /// concatenated — and indexed through [`Retained`].
    pub(crate) fairness: Vec<Vec<f64>>,
    /// Labels retained per shard during a paged-source sweep (FPR metrics
    /// only).
    pub(crate) labels: Vec<Vec<Option<bool>>>,
}

/// Row lookup over the per-shard columns a paged-source sweep retained:
/// global row `p` lives in shard `p / shard_size` at row `p % shard_size`.
/// Avoiding the flat concatenation saves a second cohort-sized copy of the
/// fairness matrix per evaluation.
struct Retained<'a> {
    fairness: &'a [Vec<f64>],
    labels: &'a [Vec<Option<bool>>],
    shard_size: usize,
    dims: usize,
}

impl Retained<'_> {
    fn row(&self, p: usize) -> &[f64] {
        let off = (p % self.shard_size) * self.dims;
        &self.fairness[p / self.shard_size][off..off + self.dims]
    }
}

impl ShardedEvalScratch {
    /// Empty scratch; buffers grow on first use and are retained.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Copy the fairness rows at `positions` (global indices) into the dense
/// `positions.len() × num_fairness` buffer `gathered`, **visiting each shard
/// exactly once** ([`crate::shard::for_each_shard_run`]) — positions land in
/// rank order, which hops shards arbitrarily, so a caching out-of-core
/// source would otherwise re-page a shard per row. Only the copy is
/// regrouped; `gathered` is laid out in the given position order, so callers
/// accumulate in exactly the serial order (bit-for-bit) while the storage
/// layer sees a shard-sequential access pattern. `order` and `gathered` are
/// caller-owned so the DCA hot loop reuses them across steps.
fn gather_fairness_rows_into<S: ShardSource + ?Sized>(
    data: &S,
    positions: &[usize],
    order: &mut Vec<(usize, usize)>,
    gathered: &mut Vec<f64>,
) {
    let dims = data.schema().num_fairness();
    gathered.clear();
    gathered.resize(positions.len() * dims, 0.0);
    // (shard, rank) pairs sorted by shard: one with_shard per distinct shard.
    order.clear();
    order.extend(
        positions
            .iter()
            .enumerate()
            .map(|(rank, &p)| (p / data.shard_size(), rank)),
    );
    order.sort_unstable();
    crate::shard::for_each_shard_run(
        data,
        order,
        |t| t.0,
        |view, run| {
            let d = view.data();
            for &(_, rank) in run {
                let local = positions[rank] - view.offset();
                gathered[rank * dims..(rank + 1) * dims].copy_from_slice(d.fairness_row(local));
            }
        },
    );
}

// ---------------------------------------------------------------------
// The audit planner: every requested metric in one paged sweep.
// ---------------------------------------------------------------------

/// The closed set of whole-cohort audit metrics a [`MetricPlan`] can
/// evaluate. Names are the wire names the audit service accepts — a closed
/// static lookup, so no dynamic metric name ever needs to be materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricKind {
    /// Selection-centroid disparity at `k` ([`disparity_at_k`]).
    Disparity,
    /// nDCG of the adjusted ranking against the original ([`ndcg_at_k`]).
    Ndcg,
    /// Logarithmically discounted disparity ([`log_discounted_disparity`]).
    LogDiscounted,
    /// FPR-difference vector at `k` ([`fpr_difference_at_k`]).
    FprDifference,
    /// Signed scaled disparate impact at `k`
    /// ([`scaled_disparate_impact_at_k`]).
    DisparateImpact,
}

impl MetricKind {
    /// Every metric, in canonical order.
    pub const ALL: [Self; 5] = [
        Self::Disparity,
        Self::Ndcg,
        Self::LogDiscounted,
        Self::FprDifference,
        Self::DisparateImpact,
    ];

    /// The static wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Disparity => "disparity",
            Self::Ndcg => "ndcg",
            Self::LogDiscounted => "log_discounted",
            Self::FprDifference => "fpr_difference",
            Self::DisparateImpact => "disparate_impact",
        }
    }

    /// Parse a wire name; `None` for anything outside the closed set.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.name() == name)
    }
}

/// One evaluated metric: per-fairness-dimension vector or scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A single number (nDCG).
    Scalar(f64),
    /// One value per fairness dimension.
    Vector(Vec<f64>),
}

impl MetricValue {
    /// The scalar payload, if this is a scalar metric.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Self::Scalar(v) => Some(*v),
            Self::Vector(_) => None,
        }
    }

    /// The vector payload, if this is a vector metric.
    #[must_use]
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Self::Scalar(_) => None,
            Self::Vector(v) => Some(v),
        }
    }
}

/// The result of one plan evaluation: `(kind, value)` pairs in plan order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricReport {
    values: Vec<(MetricKind, MetricValue)>,
}

impl MetricReport {
    /// The evaluated `(kind, value)` pairs, in plan order.
    #[must_use]
    pub fn values(&self) -> &[(MetricKind, MetricValue)] {
        &self.values
    }

    /// The value for `kind`, if the plan included it.
    #[must_use]
    pub fn get(&self, kind: MetricKind) -> Option<&MetricValue> {
        self.values.iter().find(|(k, _)| *k == kind).map(|(_, v)| v)
    }

    /// Consume the report, yielding the `(kind, value)` pairs in plan order.
    #[must_use]
    pub fn into_values(self) -> Vec<(MetricKind, MetricValue)> {
        self.values
    }

    /// Remove and return the value for `kind`.
    fn take(&mut self, kind: MetricKind) -> Option<MetricValue> {
        let at = self.values.iter().position(|(k, _)| *k == kind)?;
        Some(self.values.remove(at).1)
    }
}

/// An audit plan: the set of metrics to evaluate together at one `k`.
///
/// Evaluation runs **one** [`ShardSource::map_shards`] sweep for the whole
/// request: the per-shard kernel computes every column-derived quantity any
/// requested metric needs (base and effective scores, population fairness
/// sums) and — on paged sources ([`ShardSource::paged`]) — retains the
/// fairness/label columns, so the storage layer pages each shard exactly
/// once no matter how many metrics are requested. Selection then runs on the
/// score vectors alone (pure layout arithmetic, nothing paged), and each
/// metric's measurement phase reuses the shared selection and retained
/// columns. Every value is bit-for-bit identical to the corresponding
/// standalone sharded metric function — which are themselves thin
/// single-metric plans.
#[derive(Debug, Clone)]
pub struct MetricPlan {
    kinds: Vec<MetricKind>,
    k: f64,
    log: LogDiscountConfig,
}

/// Per-shard result of the combined scoring sweep.
struct ShardSweep {
    scores: Vec<f64>,
    base: Vec<f64>,
    fair_sums: Vec<f64>,
    fairness: Vec<f64>,
    labels: Vec<Option<bool>>,
}

impl MetricPlan {
    /// Plan the given metrics at selection fraction `k`, deduplicated while
    /// preserving first-occurrence order. The log-discount configuration
    /// defaults to [`LogDiscountConfig::default`]; see
    /// [`Self::with_log_config`].
    #[must_use]
    pub fn new(kinds: &[MetricKind], k: f64) -> Self {
        let mut dedup = Vec::with_capacity(kinds.len().min(MetricKind::ALL.len()));
        for &kind in kinds {
            if !dedup.contains(&kind) {
                dedup.push(kind);
            }
        }
        Self {
            kinds: dedup,
            k,
            log: LogDiscountConfig::default(),
        }
    }

    /// Replace the log-discount configuration used by
    /// [`MetricKind::LogDiscounted`].
    #[must_use]
    pub fn with_log_config(mut self, config: LogDiscountConfig) -> Self {
        self.log = config;
        self
    }

    /// The planned metrics, deduplicated, in first-occurrence order.
    #[must_use]
    pub fn kinds(&self) -> &[MetricKind] {
        &self.kinds
    }

    /// Evaluate the plan with fresh scratch buffers.
    ///
    /// # Errors
    /// Returns an error on an empty dataset, an invalid `k` (only when a
    /// selection metric is planned), an invalid log-discount configuration
    /// (only when the log metric is planned), or missing labels (only when
    /// the FPR metric is planned).
    pub fn evaluate<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
    ) -> Result<MetricReport> {
        self.evaluate_with(data, ranker, bonus, &mut ShardedEvalScratch::new())
    }

    /// [`Self::evaluate`] reusing caller-provided scratch buffers.
    ///
    /// # Errors
    /// As [`Self::evaluate`].
    ///
    /// # Panics
    /// Panics if `bonus.len()` differs from the schema's fairness
    /// dimensionality (the scoring-kernel contract).
    pub fn evaluate_with<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
        &self,
        data: &S,
        ranker: &R,
        bonus: &[f64],
        scratch: &mut ShardedEvalScratch,
    ) -> Result<MetricReport> {
        let has = |kind| self.kinds.contains(&kind);
        let want_disparity = has(MetricKind::Disparity);
        let want_ndcg = has(MetricKind::Ndcg);
        let want_log = has(MetricKind::LogDiscounted);
        let want_fpr = has(MetricKind::FprDifference);
        let want_di = has(MetricKind::DisparateImpact);
        // Validation, in the standalone metrics' order: the log config
        // before the empty check, `k` only when a selection metric needs it.
        if want_log {
            self.log.validate()?;
        }
        if self.kinds.is_empty() {
            return Ok(MetricReport { values: Vec::new() });
        }
        if data.is_empty() {
            return Err(FairError::EmptyDataset);
        }
        let need_counts = want_fpr || want_di;
        let need_selected = want_disparity || want_ndcg || need_counts;
        let count = if need_selected {
            selection_size(data.len(), self.k)?
        } else {
            0
        };
        let checkpoints = if want_log {
            self.log.checkpoints(data.len())
        } else {
            Vec::new()
        };
        let log_last = checkpoints.last().copied().unwrap_or(0);

        let dims = data.schema().num_fairness();
        let need_pop = want_disparity || want_log;
        let need_fairness = want_disparity || want_log || need_counts;
        // Paged sources retain the measurement columns during the sweep so
        // nothing below re-pages a shard; in-memory sources re-walk shards
        // for free and skip the copies. Both paths are bit-identical.
        let retain = data.paged() && need_fairness;
        let retain_labels = data.paged() && want_fpr;

        assert_eq!(bonus.len(), dims, "bonus vector dimensionality mismatch");

        // --- Phase 1: the one combined sweep. Each per-row kernel below is
        // exactly its standalone counterpart (`base_scores`,
        // `adjust_base_scores`, `effective_scores`, `fairness_centroid`), so
        // every derived quantity is bit-for-bit the standalone one.
        let nf = data.schema().num_features();
        let linear = ranker
            .linear_weights()
            .filter(|w| !w.is_empty() && w.len() == nf);
        let per_shard = data.map_shards(|shard| {
            let d = shard.data();
            let n = d.len();
            // One fused pass: the base score and the bonus increment are
            // computed per row exactly as the standalone kernels do
            // (`base + increment` in the same order), with the base column
            // kept only when the plan includes nDCG. Linear rankers run the
            // shard as blocked kernel passes; per-row arithmetic is the same
            // kernel::dot pair as the fallback, so both are bit-identical.
            let mut base = Vec::new();
            let mut scores = Vec::with_capacity(n);
            if let Some(w) = linear {
                if want_ndcg {
                    crate::kernel::dot_rows_into(d.features_matrix(), nf, w, &mut base);
                    scores.extend_from_slice(&base);
                } else {
                    crate::kernel::dot_rows_into(d.features_matrix(), nf, w, &mut scores);
                }
                crate::kernel::add_dot_rows_into(d.fairness_matrix(), dims, bonus, &mut scores);
            } else {
                if want_ndcg {
                    base.reserve(n);
                }
                scores.extend((0..n).map(|i| {
                    let b = match ranker.feature_score(d.feature_row(i)) {
                        Some(score) => score,
                        None => ranker.base_score(d.row(i)),
                    };
                    if want_ndcg {
                        base.push(b);
                    }
                    let increment = crate::kernel::dot(d.fairness_row(i), bonus);
                    b + increment
                }));
            }
            let mut fair_sums = Vec::new();
            if need_pop && dims > 0 {
                crate::kernel::col_sums_into(d.fairness_matrix(), dims, &mut fair_sums);
            }
            let mut fairness = Vec::new();
            if retain {
                // The SoA fairness matrix is contiguous and row-major: one
                // memcpy retains the whole shard.
                fairness.extend_from_slice(d.fairness_matrix());
            }
            let mut labels = Vec::new();
            if retain_labels {
                labels.extend_from_slice(d.labels());
            }
            ShardSweep {
                scores,
                base,
                fair_sums,
                fairness,
                labels,
            }
        });

        // Deterministic in-order combine.
        scratch.scores.clear();
        scratch.scores.reserve(data.len());
        scratch.base.clear();
        if want_ndcg {
            scratch.base.reserve(data.len());
        }
        scratch.fairness.clear();
        scratch.labels.clear();
        let mut pop_sums = vec![0.0_f64; dims];
        for shard in per_shard {
            scratch.scores.extend_from_slice(&shard.scores);
            if want_ndcg {
                scratch.base.extend_from_slice(&shard.base);
            }
            if need_pop {
                crate::kernel::add_row(&mut pop_sums, &shard.fair_sums);
            }
            if retain {
                scratch.fairness.push(shard.fairness);
            }
            if retain_labels {
                scratch.labels.push(shard.labels);
            }
        }
        // Exactly `fairness_centroid`: ordered sums divided once.
        let pop: Vec<f64> = pop_sums.iter().map(|s| s / data.len() as f64).collect();

        // --- Phase 2: shared selection — score vectors and shard layout
        // only, nothing paged. One top-`count` serves disparity, the rate
        // metrics, and nDCG's measured prefix (identical inputs, identical
        // canonical output).
        // The log-discounted prefix and the top-`count` selection are both
        // prefixes of the same canonical ranking (top_m of a larger count
        // starts with top_m of a smaller one, bit for bit), so one partial
        // selection at the larger cutoff serves both.
        let take = count.max(log_last);
        let ranked = if take > 0 {
            top_m(data, &scratch.scores, take)
        } else {
            Vec::new()
        };
        let selected = &ranked[..count];

        // --- Phase 3: per-metric measurement from the shared intermediates.
        let retained = Retained {
            fairness: &scratch.fairness,
            labels: &scratch.labels,
            shard_size: data.shard_size(),
            dims,
        };
        let mut counts: Option<GroupCounts> = None;
        if need_counts {
            scratch.mask.clear();
            scratch.mask.resize(data.len(), false);
            for &p in selected {
                scratch.mask[p] = true;
            }
            counts = Some(if retain {
                tally_retained(&retained, &scratch.mask, want_fpr)?
            } else {
                tally_counts(data, &scratch.mask, want_fpr)?
            });
        }

        let mut values = Vec::with_capacity(self.kinds.len());
        for &kind in &self.kinds {
            let value = match kind {
                MetricKind::Disparity => {
                    if selected.is_empty() {
                        return Err(FairError::EmptyDataset);
                    }
                    let mut out = vec![0.0; dims];
                    if dims > 0 {
                        if retain {
                            // Rank-order accumulation straight from the
                            // retained rows — the same kernel walk, over the
                            // same row sequence, as the gathered path below.
                            crate::kernel::col_sums_rows_into(
                                dims,
                                selected.iter().map(|&p| retained.row(p)),
                                &mut out,
                            );
                        } else {
                            gather_fairness_rows_into(
                                data,
                                selected,
                                &mut scratch.order,
                                &mut scratch.gathered,
                            );
                            crate::kernel::col_sums_rows_into(
                                dims,
                                scratch.gathered.chunks_exact(dims),
                                &mut out,
                            );
                        }
                        for a in out.iter_mut() {
                            *a /= selected.len() as f64;
                        }
                    }
                    for (s, a) in out.iter_mut().zip(&pop) {
                        *s -= a;
                    }
                    MetricValue::Vector(out)
                }
                MetricKind::Ndcg => {
                    // Same non-negativity shift as the serial metric,
                    // computed in the same left-to-right order.
                    let min = scratch.base.iter().copied().fold(f64::INFINITY, f64::min);
                    let shift = if min < 0.0 { -min } else { 0.0 };
                    let original = top_m(data, &scratch.base, count);
                    let ideal_weights: Vec<f64> =
                        original.iter().map(|&p| scratch.base[p] + shift).collect();
                    let measured_weights: Vec<f64> =
                        selected.iter().map(|&p| scratch.base[p] + shift).collect();
                    let ideal = crate::metrics::dcg(&ideal_weights);
                    MetricValue::Scalar(if ideal == 0.0 {
                        1.0
                    } else {
                        (crate::metrics::dcg(&measured_weights) / ideal).clamp(0.0, 1.0)
                    })
                }
                MetricKind::LogDiscounted => {
                    // The shared canonical ranking already extends to the
                    // last checkpoint.
                    let prefix = &ranked[..log_last];
                    if !retain {
                        // One shard-sequential gather for the whole ranked
                        // prefix, exactly like the standalone metric.
                        gather_fairness_rows_into(
                            data,
                            prefix,
                            &mut scratch.order,
                            &mut scratch.gathered,
                        );
                    }
                    let row = |rank: usize| -> &[f64] {
                        if retain {
                            retained.row(prefix[rank])
                        } else {
                            &scratch.gathered[rank * dims..(rank + 1) * dims]
                        }
                    };
                    let mut out = vec![0.0; dims];
                    let mut running = vec![0.0; dims];
                    let mut consumed = 0_usize;
                    let mut z = 0.0;
                    let mut empty = false;
                    for &cnt in &checkpoints {
                        debug_assert!(cnt >= consumed, "checkpoints must be increasing");
                        let weight = 1.0 / ((cnt as f64) + 1.0).log2();
                        for rank in consumed..cnt {
                            // Sequential prefix accumulation (element-wise,
                            // order-free) — parity with the serial metric.
                            crate::kernel::add_row(&mut running, row(rank));
                        }
                        consumed = cnt;
                        if cnt == 0 {
                            empty = true;
                            break;
                        }
                        for ((o, r), a) in out.iter_mut().zip(&running).zip(&pop) {
                            *o += weight * (r / cnt as f64 - a);
                        }
                        z += weight;
                    }
                    if empty {
                        return Err(FairError::EmptyDataset);
                    }
                    if z > 0.0 {
                        for a in out.iter_mut() {
                            *a /= z;
                        }
                    }
                    MetricValue::Vector(out)
                }
                MetricKind::FprDifference => {
                    let counts = counts.as_ref().expect("counts tallied");
                    let (per_group, overall) = fpr_rates(counts, dims);
                    MetricValue::Vector(per_group.into_iter().map(|f| f - overall).collect())
                }
                MetricKind::DisparateImpact => {
                    let counts = counts.as_ref().expect("counts tallied");
                    MetricValue::Vector(disparate_impact_from_counts(counts, dims))
                }
            };
            values.push((kind, value));
        }
        Ok(MetricReport { values })
    }
}

/// Disparity of the top-`k` selection (Definition 3): selection centroid
/// minus population centroid, the population side reduced shard-wise. A thin
/// single-metric [`MetricPlan`].
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn disparity_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    disparity_at_k_into(
        data,
        ranker,
        bonus,
        k,
        &mut ShardedEvalScratch::new(),
        &mut out,
    )?;
    Ok(out)
}

/// [`disparity_at_k`] reusing caller-provided scratch buffers.
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn disparity_at_k_into<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
    scratch: &mut ShardedEvalScratch,
    out: &mut Vec<f64>,
) -> Result<()> {
    let mut report =
        MetricPlan::new(&[MetricKind::Disparity], k).evaluate_with(data, ranker, bonus, scratch)?;
    match report.take(MetricKind::Disparity) {
        Some(MetricValue::Vector(v)) => {
            *out = v;
            Ok(())
        }
        _ => unreachable!("planned metric always reported"),
    }
}

/// nDCG@k of the bonus-adjusted ranking against the original (zero-bonus)
/// ranking — the sharded counterpart of [`crate::metrics::ndcg_at_k`], with
/// both top-`k` prefixes found by per-shard partial selection instead of full
/// sorts. A thin single-metric [`MetricPlan`].
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn ndcg_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<f64> {
    let report = MetricPlan::new(&[MetricKind::Ndcg], k).evaluate(data, ranker, bonus)?;
    match report.get(MetricKind::Ndcg) {
        Some(MetricValue::Scalar(v)) => Ok(*v),
        _ => unreachable!("planned metric always reported"),
    }
}

/// Logarithmically discounted disparity (Section IV-E) — scoring and
/// checkpoint-prefix selection run shard-wise; the running prefix sums walk
/// the merged ranked prefix in rank order, exactly like the serial metric. A
/// thin single-metric [`MetricPlan`] (the selection fraction is unused).
///
/// # Errors
/// Returns an error on an empty dataset or invalid configuration.
pub fn log_discounted_disparity<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    config: &LogDiscountConfig,
) -> Result<Vec<f64>> {
    let mut report = MetricPlan::new(&[MetricKind::LogDiscounted], 1.0)
        .with_log_config(*config)
        .evaluate(data, ranker, bonus)?;
    match report.take(MetricKind::LogDiscounted) {
        Some(MetricValue::Vector(v)) => Ok(v),
        _ => unreachable!("planned metric always reported"),
    }
}

/// Per-shard selection/label counts for the rate-based metrics, reduced by
/// exact integer addition.
#[derive(Clone, Default)]
struct GroupCounts {
    group_neg: Vec<usize>,
    group_fp: Vec<usize>,
    total_neg: usize,
    total_fp: usize,
    member_total: Vec<usize>,
    member_selected: Vec<usize>,
    other_total: Vec<usize>,
    other_selected: Vec<usize>,
}

impl GroupCounts {
    fn new(dims: usize) -> Self {
        Self {
            group_neg: vec![0; dims],
            group_fp: vec![0; dims],
            member_total: vec![0; dims],
            member_selected: vec![0; dims],
            other_total: vec![0; dims],
            other_selected: vec![0; dims],
            ..Self::default()
        }
    }

    fn merge(mut self, other: &Self) -> Self {
        for (a, b) in self.group_neg.iter_mut().zip(&other.group_neg) {
            *a += b;
        }
        for (a, b) in self.group_fp.iter_mut().zip(&other.group_fp) {
            *a += b;
        }
        for (a, b) in self.member_total.iter_mut().zip(&other.member_total) {
            *a += b;
        }
        for (a, b) in self.member_selected.iter_mut().zip(&other.member_selected) {
            *a += b;
        }
        for (a, b) in self.other_total.iter_mut().zip(&other.other_total) {
            *a += b;
        }
        for (a, b) in self.other_selected.iter_mut().zip(&other.other_selected) {
            *a += b;
        }
        self.total_neg += other.total_neg;
        self.total_fp += other.total_fp;
        self
    }
}

/// Tally per-group counts shard by shard against a global selection `mask`.
/// `need_labels` makes unlabelled rows an error (the FPR metrics).
fn tally_counts<S: ShardSource + ?Sized>(
    data: &S,
    mask: &[bool],
    need_labels: bool,
) -> Result<GroupCounts> {
    let dims = data.schema().num_fairness();
    let per_shard = data.map_shards(|shard| -> Result<GroupCounts> {
        let d = shard.data();
        let mut counts = GroupCounts::new(dims);
        for i in 0..d.len() {
            let object = d.row(i);
            let selected = mask[shard.global_index(i)];
            for dim in 0..dims {
                if object.in_group(dim) {
                    counts.member_total[dim] += 1;
                    if selected {
                        counts.member_selected[dim] += 1;
                    }
                } else {
                    counts.other_total[dim] += 1;
                    if selected {
                        counts.other_selected[dim] += 1;
                    }
                }
            }
            if need_labels {
                let label = object.label().ok_or(FairError::MissingLabels)?;
                if label {
                    continue;
                }
                counts.total_neg += 1;
                if selected {
                    counts.total_fp += 1;
                }
                for dim in 0..dims {
                    if object.in_group(dim) {
                        counts.group_neg[dim] += 1;
                        if selected {
                            counts.group_fp[dim] += 1;
                        }
                    }
                }
            }
        }
        Ok(counts)
    });
    // Ordered combine: the first (lowest-shard) error wins, deterministically.
    let mut total = GroupCounts::new(dims);
    for counts in per_shard {
        total = total.merge(&counts?);
    }
    Ok(total)
}

/// [`tally_counts`] over columns retained during a paged-source sweep: the
/// same per-row tallies, walked serially in global (= shard) order — integer
/// counts, so the result is exactly the shard-wise reduction's, and the
/// first missing label in shard order raises the same error.
fn tally_retained(
    retained: &Retained<'_>,
    mask: &[bool],
    need_labels: bool,
) -> Result<GroupCounts> {
    let dims = retained.dims;
    let mut counts = GroupCounts::new(dims);
    // Walk shard by shard (same global row order as the serial tally) so
    // the hot loop indexes each shard's buffer directly instead of doing
    // two divisions per row.
    let mut start = 0;
    let mut sidx = 0;
    while start < mask.len() {
        let rows = retained.shard_size.min(mask.len() - start);
        let fair = &retained.fairness[sidx];
        for r in 0..rows {
            let selected = mask[start + r];
            let row = &fair[r * dims..(r + 1) * dims];
            // `in_group`: fairness value at `dim` is `>= 0.5`.
            for (dim, value) in row.iter().enumerate() {
                if *value >= 0.5 {
                    counts.member_total[dim] += 1;
                    if selected {
                        counts.member_selected[dim] += 1;
                    }
                } else {
                    counts.other_total[dim] += 1;
                    if selected {
                        counts.other_selected[dim] += 1;
                    }
                }
            }
            if need_labels {
                let label = retained.labels[sidx][r].ok_or(FairError::MissingLabels)?;
                if label {
                    continue;
                }
                counts.total_neg += 1;
                if selected {
                    counts.total_fp += 1;
                }
                for (dim, value) in row.iter().enumerate() {
                    if *value >= 0.5 {
                        counts.group_neg[dim] += 1;
                        if selected {
                            counts.group_fp[dim] += 1;
                        }
                    }
                }
            }
        }
        start += rows;
        sidx += 1;
    }
    Ok(counts)
}

/// Per-group and overall false-positive rates from tallied counts.
fn fpr_rates(counts: &GroupCounts, dims: usize) -> (Vec<f64>, f64) {
    let overall = if counts.total_neg == 0 {
        0.0
    } else {
        counts.total_fp as f64 / counts.total_neg as f64
    };
    let per_group = (0..dims)
        .map(|d| {
            if counts.group_neg[d] == 0 {
                0.0
            } else {
                counts.group_fp[d] as f64 / counts.group_neg[d] as f64
            }
        })
        .collect();
    (per_group, overall)
}

/// Signed scaled disparate impact per dimension from tallied counts.
fn disparate_impact_from_counts(counts: &GroupCounts, dims: usize) -> Vec<f64> {
    (0..dims)
        .map(|d| {
            let (p1, p0) = if counts.member_total[d] == 0 || counts.other_total[d] == 0 {
                (0.0, 0.0)
            } else {
                (
                    counts.member_selected[d] as f64 / counts.member_total[d] as f64,
                    counts.other_selected[d] as f64 / counts.other_total[d] as f64,
                )
            };
            let di = if p1 <= 0.0 || p0 <= 0.0 {
                if p1 == p0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                (p1 / p0).min(p0 / p1)
            };
            let sign = if p1 >= p0 { 1.0 } else { -1.0 };
            sign * (1.0 - di)
        })
        .collect()
}

/// Build the global top-`k` selection mask into `scratch`, then tally
/// per-group counts shard by shard. `need_labels` makes unlabelled rows an
/// error (the FPR metrics).
fn selection_counts<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
    need_labels: bool,
    scratch: &mut ShardedEvalScratch,
) -> Result<GroupCounts> {
    if data.is_empty() {
        return Err(FairError::EmptyDataset);
    }
    crate::ranking::sharded::effective_scores_into(data, ranker, bonus, &mut scratch.scores);
    let selected = selected_at_k(data, &scratch.scores, k)?;
    scratch.mask.clear();
    scratch.mask.resize(data.len(), false);
    for &p in &selected {
        scratch.mask[p] = true;
    }
    tally_counts(data, &scratch.mask, need_labels)
}

/// Per-group and overall false-positive rates of the top-`k` selection — the
/// sharded counterpart of [`crate::metrics::group_fpr_at_k`].
///
/// # Errors
/// Returns an error on empty datasets, invalid `k`, or missing labels.
pub fn group_fpr_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<(Vec<f64>, f64)> {
    let counts = selection_counts(data, ranker, bonus, k, true, &mut ShardedEvalScratch::new())?;
    Ok(fpr_rates(&counts, data.schema().num_fairness()))
}

/// FPR-difference vector (`FPR_group − FPR_overall`) of the top-`k`
/// selection — the sharded counterpart of
/// [`crate::metrics::fpr_difference_at_k`]. A thin single-metric
/// [`MetricPlan`].
///
/// # Errors
/// Returns an error on empty datasets, invalid `k`, or missing labels.
pub fn fpr_difference_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let mut report =
        MetricPlan::new(&[MetricKind::FprDifference], k).evaluate(data, ranker, bonus)?;
    match report.take(MetricKind::FprDifference) {
        Some(MetricValue::Vector(v)) => Ok(v),
        _ => unreachable!("planned metric always reported"),
    }
}

/// Signed, scaled disparate impact of the top-`k` selection — the sharded
/// counterpart of [`crate::metrics::scaled_disparate_impact_at_k`]. A thin
/// single-metric [`MetricPlan`].
///
/// # Errors
/// Returns an error on an empty dataset or invalid `k`.
pub fn scaled_disparate_impact_at_k<S: ShardSource + ?Sized, R: Ranker + ?Sized>(
    data: &S,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let mut report =
        MetricPlan::new(&[MetricKind::DisparateImpact], k).evaluate(data, ranker, bonus)?;
    match report.take(MetricKind::DisparateImpact) {
        Some(MetricValue::Vector(v)) => Ok(v),
        _ => unreachable!("planned metric always reported"),
    }
}

/// The serial reference for a sharded evaluation: flatten and evaluate with
/// the single-`Dataset` metrics. Used by tests and the parity experiment;
/// exactly the pre-refactor code path.
///
/// # Errors
/// Returns an error on empty datasets or invalid `k`.
pub fn serial_disparity_at_k<R: Ranker + ?Sized>(
    dataset: &crate::dataset::Dataset,
    ranker: &R,
    bonus: &[f64],
    k: f64,
) -> Result<Vec<f64>> {
    let view = dataset.full_view();
    let mut scratch = EvalScratch::new();
    scratch.ranking.refill_with(None, |scores| {
        crate::ranking::effective_scores_into(&view, ranker, bonus, scores);
    });
    crate::metrics::disparity_at_k(&view, &scratch.ranking, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Schema;
    use crate::dataset::Dataset;
    use crate::object::DataObject;
    use crate::ranking::topk::RankedSelection;
    use crate::ranking::{SingleFeatureRanker, WeightedSumRanker};
    use crate::shard::ShardedDataset;

    /// A labelled cohort with binary fairness attributes (exact sums) and
    /// tied scores (exercises the deterministic tie-break).
    fn cohort(n: u64) -> Dataset {
        let schema = Schema::from_names(&["s"], &["a", "b"], &[]).unwrap();
        let objects = (0..n)
            .map(|i| {
                let member = i % 3 == 0;
                let other = i % 5 == 0;
                let score = f64::from(u32::try_from((i * 11) % 17).unwrap())
                    - if member { 4.0 } else { 0.0 };
                DataObject::new_unchecked(
                    i,
                    vec![score],
                    vec![f64::from(u8::from(member)), f64::from(u8::from(other))],
                    Some(i % 4 == 0),
                )
            })
            .collect();
        Dataset::new(schema, objects).unwrap()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn sharded_disparity_matches_serial_bitwise() {
        let flat = cohort(61);
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        for shard_size in [1, 7, 61, 4096] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            for k in [0.05, 0.2, 0.5, 1.0] {
                let serial = serial_disparity_at_k(&flat, &ranker, &[2.5, 0.5], k).unwrap();
                let sharded = disparity_at_k(&data, &ranker, &[2.5, 0.5], k).unwrap();
                assert_eq!(bits(&serial), bits(&sharded), "shard {shard_size} k {k}");
            }
        }
    }

    #[test]
    fn sharded_ndcg_matches_serial_bitwise() {
        let flat = cohort(61);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        for shard_size in [1, 7, 61, 4096] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            for bonus in [[0.0, 0.0], [3.0, 1.5]] {
                for k in [0.1, 0.3, 1.0] {
                    let ranking = RankedSelection::from_scores(crate::ranking::effective_scores(
                        &view, &ranker, &bonus,
                    ));
                    let serial = crate::metrics::ndcg_at_k(&view, &ranker, &ranking, k).unwrap();
                    let sharded = ndcg_at_k(&data, &ranker, &bonus, k).unwrap();
                    assert_eq!(
                        serial.to_bits(),
                        sharded.to_bits(),
                        "shard {shard_size} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_log_discounted_matches_serial_bitwise() {
        let flat = cohort(83);
        let view = flat.full_view();
        let ranker = WeightedSumRanker::new(vec![1.0]).unwrap();
        let cfg = LogDiscountConfig {
            step: 7,
            max_fraction: 0.6,
        };
        for shard_size in [1, 7, 83, 4096] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            let ranking = RankedSelection::from_scores(crate::ranking::effective_scores(
                &view,
                &ranker,
                &[1.0, 0.0],
            ));
            let serial = crate::metrics::log_discounted_disparity(&view, &ranking, &cfg).unwrap();
            let sharded = log_discounted_disparity(&data, &ranker, &[1.0, 0.0], &cfg).unwrap();
            assert_eq!(bits(&serial), bits(&sharded), "shard {shard_size}");
        }
    }

    #[test]
    fn sharded_fpr_and_di_match_serial_bitwise() {
        let flat = cohort(59);
        let view = flat.full_view();
        let ranker = SingleFeatureRanker::new(0);
        for shard_size in [1, 7, 59] {
            let data = ShardedDataset::from_dataset(&flat, shard_size).unwrap();
            for k in [0.2, 0.5] {
                let ranking = RankedSelection::from_scores(crate::ranking::effective_scores(
                    &view,
                    &ranker,
                    &[0.0, -1.0],
                ));
                let serial_fpr = crate::metrics::fpr_difference_at_k(&view, &ranking, k).unwrap();
                let sharded_fpr = fpr_difference_at_k(&data, &ranker, &[0.0, -1.0], k).unwrap();
                assert_eq!(bits(&serial_fpr), bits(&sharded_fpr), "fpr {shard_size}");
                let (serial_groups, serial_overall) =
                    crate::metrics::group_fpr_at_k(&view, &ranking, k).unwrap();
                let (sharded_groups, sharded_overall) =
                    group_fpr_at_k(&data, &ranker, &[0.0, -1.0], k).unwrap();
                assert_eq!(bits(&serial_groups), bits(&sharded_groups));
                assert_eq!(serial_overall.to_bits(), sharded_overall.to_bits());
                let serial_di =
                    crate::metrics::scaled_disparate_impact_at_k(&view, &ranking, k).unwrap();
                let sharded_di =
                    scaled_disparate_impact_at_k(&data, &ranker, &[0.0, -1.0], k).unwrap();
                assert_eq!(bits(&serial_di), bits(&sharded_di), "di {shard_size}");
            }
        }
    }

    #[test]
    fn missing_labels_error_propagates_from_shards() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let objects = (0..10_u64)
            .map(|i| {
                DataObject::new_unchecked(
                    i,
                    vec![i as f64],
                    vec![f64::from(u8::from(i % 2 == 0))],
                    // One unlabelled row in a late shard.
                    if i == 7 { None } else { Some(true) },
                )
            })
            .collect();
        let data = ShardedDataset::from_objects(schema, objects, 3).unwrap();
        let ranker = SingleFeatureRanker::new(0);
        assert!(matches!(
            fpr_difference_at_k(&data, &ranker, &[0.0], 0.5),
            Err(FairError::MissingLabels)
        ));
        // The label-free DI metric still works on the same data.
        assert!(scaled_disparate_impact_at_k(&data, &ranker, &[0.0], 0.5).is_ok());
    }

    #[test]
    fn empty_dataset_errors() {
        let schema = Schema::from_names(&["s"], &["g"], &[]).unwrap();
        let data = ShardedDataset::with_shard_size(schema, 4).unwrap();
        let ranker = SingleFeatureRanker::new(0);
        assert!(disparity_at_k(&data, &ranker, &[0.0], 0.5).is_err());
        assert!(ndcg_at_k(&data, &ranker, &[0.0], 0.5).is_err());
        assert!(
            log_discounted_disparity(&data, &ranker, &[0.0], &LogDiscountConfig::default())
                .is_err()
        );
        assert!(group_fpr_at_k(&data, &ranker, &[0.0], 0.5).is_err());
    }
}
